//! Segment bootstrap: the writer compacts its published shards into an
//! immutable content-addressed index artifact, and a late-joining frontend
//! imports that artifact instead of warming query-by-query — side by side
//! with a gossip-only joiner paying the classic cold start.
//!
//! Run with: `cargo run -p qb-examples --release --bin segment_bootstrap`

use qb_chain::AccountId;
use qb_common::SimDuration;
use qb_dweb::WebPage;
use qb_queenbee::{CacheConfig, GossipConfig, QueenBee, QueenBeeConfig, SegmentConfig};

fn main() {
    // A 3-frontend fleet with the segment path enabled: the writer
    // accumulates every published shard into a pending segment and
    // `compact_segments` merges + publishes them as one artifact.
    let mut config = QueenBeeConfig::small();
    config.cache = CacheConfig::enabled();
    config.gossip = GossipConfig::enabled(3);
    // Keep the gossip budgets tight so a joiner cannot warm its whole
    // cache from one bootstrap exchange — that cold-start gap is exactly
    // what the artifact import removes.
    config.gossip.hot_set_size = 8;
    config.gossip.max_fills_per_exchange = 2;
    config.segment = SegmentConfig::enabled();
    let mut qb = QueenBee::new(config).expect("valid config");

    let pages = [
        (
            "wiki/dweb",
            "the decentralized web is served by peer devices",
        ),
        (
            "wiki/bees",
            "worker bees maintain the distributed index for honey",
        ),
        (
            "wiki/segments",
            "immutable segments bootstrap frontends in bulk",
        ),
        (
            "wiki/dht",
            "kademlia routes every lookup in logarithmic hops",
        ),
        (
            "wiki/gossip",
            "epidemic gossip spreads cached shards between frontends",
        ),
        (
            "wiki/market",
            "the ad market pays creators bees and the treasury",
        ),
    ];
    for (i, (name, body)) in pages.iter().enumerate() {
        qb.publish(
            (10 + i) as u64,
            AccountId(1_000 + i as u64),
            &WebPage::new(*name, format!("Title {name}"), *body, vec![]),
        )
        .expect("publish");
    }
    qb.seal();
    qb.process_publish_events().expect("indexing");

    // 1. The writer compacts: pending shards -> merged artifact -> chunked
    //    storage DAG + DHT pointer. Every byte is charged to the network.
    let before = qb.net.stats().clone();
    let sref = qb
        .compact_segments()
        .expect("compaction")
        .expect("pending shards to compact");
    let published = qb.net.stats().delta_since(&before);
    println!(
        "writer compacted generation {}: {} terms, {} bytes in {} chunks \
         ({} bytes charged to the network)",
        sref.generation, sref.term_count, sref.total_len, sref.chunk_count, published.bytes
    );

    // 2. A republish after the artifact: the artifact's shards for this
    //    page are now one version stale — the joiner's import must not
    //    let them poison served results.
    qb.publish(
        17,
        AccountId(1_002),
        &WebPage::new(
            "wiki/segments",
            "Title wiki/segments v2",
            "immutable mergeable segments bootstrap cold frontends in bulk",
            vec![],
        ),
    )
    .expect("republish");
    qb.seal();
    qb.process_publish_events().expect("reindexing");

    // 3. Some fleet traffic, so the veterans are warm and gossiping.
    let queries = [
        "decentralized peers",
        "worker honey",
        "segments bulk",
        "gossip shards",
        "kademlia lookup",
    ];
    for round in 0..3 {
        for (i, q) in queries.iter().enumerate() {
            qb.advance_time(SimDuration::from_millis(100));
            qb.search_from((round + i) % 3, q).expect("warm-up");
        }
    }

    // 4. Two late joiners, side by side. The first bootstraps from the
    //    artifact: one DHT pointer lookup, one chunked fetch, one import
    //    through the version guard, one delta catch-up exchange.
    let (seg_joiner, report) = qb.fleet_join_with_segment().expect("segment join");
    println!(
        "\nsegment joiner (frontend {seg_joiner}): used_segment={} generation={} \
         fetched {} bytes in {} messages, import {:?}",
        report.used_segment,
        report.generation,
        report.fetch_bytes,
        report.fetch_messages,
        report.imported
    );
    // The second warms the gossip-only way: a bootstrap exchange ships the
    // neighbour's hot set, everything else is fetched on demand.
    let gossip_joiner = qb.fleet_join().expect("gossip join");

    println!("\nfirst query on each joiner (shard fetches = cold misses):");
    for (label, frontend) in [("segment", seg_joiner), ("gossip-only", gossip_joiner)] {
        let mut fetches = 0usize;
        for q in &queries {
            let out = qb.search_from(frontend, q).expect("probe");
            fetches += out.shards_fetched;
        }
        println!(
            "  {label:12} joiner: {fetches} DHT shard fetches over {} queries",
            queries.len()
        );
    }
    println!(
        "\nstale results served: {} (the version guard caught the republished page)",
        qb.freshness.stale_results
    );
    let seg = qb.segment_stats();
    println!(
        "segment stats: {} published ({} bytes), {} fetched ({} bytes), \
         import accepted/stale/dup/refused = {}/{}/{}/{}",
        seg.segments_published,
        seg.publish_bytes,
        seg.segments_fetched,
        seg.fetch_bytes,
        seg.shards_imported,
        seg.import_stale,
        seg.import_duplicates,
        seg.import_refused
    );
}
