//! The freshness race: pages keep updating while QueenBee (publish-driven)
//! and a crawler-driven baseline both try to keep their indexes current.
//!
//! Run with: `cargo run -p qb-examples --release --bin freshness_race`

use qb_baseline::{CentralizedConfig, CentralizedEngine, CrawlDoc};
use qb_chain::AccountId;
use qb_common::{DetRng, SimDuration, SimInstant};
use qb_queenbee::{QueenBee, QueenBeeConfig};
use qb_workload::{mutate_page, CorpusConfig, CorpusGenerator, UpdateStream};
use std::collections::HashMap;

fn main() {
    let corpus = CorpusGenerator::new(CorpusConfig {
        num_pages: 30,
        ..CorpusConfig::default()
    })
    .generate(&mut DetRng::new(21));

    let mut config = QueenBeeConfig::small();
    config.num_peers = 40;
    config.num_bees = 5;
    let mut qb = QueenBee::new(config).expect("config");
    for (i, page) in corpus.pages.iter().enumerate() {
        qb.publish((i % 30) as u64, AccountId(corpus.creators[i]), page)
            .unwrap();
    }
    qb.seal();
    qb.process_publish_events().unwrap();

    let mut central = CentralizedEngine::new(CentralizedConfig {
        crawl_interval: SimDuration::from_secs(3_600), // hourly crawl
        ..CentralizedConfig::default()
    });
    let mut current: HashMap<String, (u64, String)> = HashMap::new();
    let snapshot = |corpus: &qb_workload::Corpus, current: &HashMap<String, (u64, String)>| {
        corpus
            .pages
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let (v, text) = current.get(&p.name).cloned().unwrap_or((1, p.text()));
                CrawlDoc {
                    name: p.name.clone(),
                    version: v,
                    creator: corpus.creators[i],
                    text,
                }
            })
            .collect::<Vec<_>>()
    };
    central.crawl(&snapshot(&corpus, &current), SimInstant::ZERO);

    // Two simulated hours of popularity-biased edits.
    let stream = UpdateStream::new(&corpus, SimDuration::from_secs(180));
    let mut rng = DetRng::new(22);
    let updates = stream.generate(
        &mut rng,
        SimInstant::ZERO,
        SimInstant::ZERO + SimDuration::from_secs(7_200),
    );
    println!(
        "applying {} page updates over 2 simulated hours...\n",
        updates.len()
    );
    let mut pages: HashMap<String, qb_dweb::WebPage> = corpus
        .pages
        .iter()
        .map(|p| (p.name.clone(), p.clone()))
        .collect();
    let mut last = SimInstant::ZERO;
    for u in &updates {
        qb.advance_time(u.at.since(last));
        last = u.at;
        let name = corpus.pages[u.page_index].name.clone();
        let next = mutate_page(&pages[&name], u.seq, &mut rng);
        qb.publish(
            (u.page_index % 30) as u64,
            AccountId(corpus.creators[u.page_index]),
            &next,
        )
        .unwrap();
        qb.seal();
        qb.process_publish_events().unwrap();
        let version = qb
            .chain
            .publish_registry()
            .get(&name)
            .map(|r| r.version)
            .unwrap_or(1);
        current.insert(name.clone(), (version, next.text()));
        pages.insert(name, next);
        central.maybe_crawl(&snapshot(&corpus, &current), u.at);
    }

    // Ask both engines about the most recently updated pages.
    let mut qb_stale = 0usize;
    let mut central_stale = 0usize;
    let mut probes = 0usize;
    for u in updates.iter().rev().take(15) {
        let name = &corpus.pages[u.page_index].name;
        let (cur_version, text) = current[name].clone();
        // Query with a term only the newest version contains.
        let marker = text
            .split_whitespace()
            .find(|w| w.starts_with("versionmarker"))
            .unwrap_or("versionmarker1")
            .to_string();
        probes += 1;
        match qb.search(3, &marker) {
            Ok(out)
                if out
                    .results
                    .iter()
                    .any(|r| r.name == *name && r.version >= cur_version) => {}
            _ => qb_stale += 1,
        }
        match central.search(&marker, 5.0, last) {
            Ok((results, _))
                if results
                    .iter()
                    .any(|r| r.name == *name && r.version >= cur_version) => {}
            _ => central_stale += 1,
        }
    }
    println!(
        "probing the {} most recent updates by their newest unique term:",
        probes
    );
    println!(
        "  QueenBee  (publish-driven) : {:2}/{} probes stale",
        qb_stale, probes
    );
    println!(
        "  Centralized (hourly crawl) : {:2}/{} probes stale",
        central_stale, probes
    );
    println!("\ncrawling inevitably reduces freshness — the publish-driven index never lags.");
}
