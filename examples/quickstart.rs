//! Quickstart: the whole QueenBee architecture (Figure 1 of the paper) in one
//! short program — publish pages, let the worker bees index and rank them,
//! serve queries through the **pipelined query engine** (`SearchRequest` →
//! plan → overlapped fetch → score → `SearchResponse`), show an ad and
//! settle the click on-chain.
//!
//! Run with: `cargo run -p qb-examples --release --bin quickstart`
//!
//! For the repository-level view — the crate map, the life of a query
//! through the event-driven pipeline, and the determinism contract every
//! subsystem is held to — see `ARCHITECTURE.md` at the repo root (also
//! rendered as the `qb_queenbee::architecture` rustdoc module).

use qb_chain::AccountId;
use qb_dweb::WebPage;
use qb_index::Analyzer;
use qb_queenbee::{
    CacheConfig, CacheReport, PipelineConfig, QueenBee, QueenBeeConfig, RoutingPolicy,
    SearchRequest,
};
use qb_workload::AdSpec;

fn main() {
    // 1. Assemble the DWeb: peers, DHT, storage, blockchain and worker bees.
    //    The query-serving cache ships disabled; opt in via the config so
    //    repeated queries are answered from local tiers instead of the DHT.
    let mut config = QueenBeeConfig::small();
    config.cache = CacheConfig::enabled();
    let mut qb = QueenBee::new(config).expect("valid config");
    println!(
        "DWeb up: {} peers, {} worker bees, chain height {}",
        qb.net.len(),
        qb.bees().len(),
        qb.chain.stats().height
    );

    // 2. Content creators publish pages (no crawler will ever visit them —
    //    the publish transaction itself is what notifies the index).
    let alice = AccountId(1_000);
    let bob = AccountId(1_001);
    let pages = vec![
        (alice, 1u64, WebPage::new(
            "wiki/decentralized-web",
            "The Decentralized Web",
            "content is addressed by cryptographic hash replicated by peers and immune to tampering",
            vec!["wiki/queenbee".into()],
        )),
        (alice, 2, WebPage::new(
            "wiki/queenbee",
            "QueenBee",
            "queenbee is a decentralized search engine where worker bees maintain the index and earn honey",
            vec!["wiki/decentralized-web".into()],
        )),
        (bob, 3, WebPage::new(
            "shop/honey",
            "Artisanal honey",
            "buy artisanal honey straight from the worker bees best prices on the dweb",
            vec!["wiki/queenbee".into()],
        )),
    ];
    for (creator, peer, page) in &pages {
        let report = qb.publish(*peer, *creator, page).expect("publish");
        println!(
            "published {:28} accepted={} cid={}",
            page.name,
            report.accepted,
            report.object.map(|o| o.root.short()).unwrap_or_default()
        );
    }
    qb.seal();

    // 3. Worker bees pick up the publish events, build the distributed index
    //    and compute page ranks; they are paid in honey for every task.
    let handled = qb.process_publish_events().expect("indexing");
    let rank = qb.run_rank_round().expect("ranking");
    println!(
        "worker bees indexed {handled} pages, ran {} rank iterations (L1 error vs reference {:.1e})",
        rank.rounds, rank.l1_error_vs_reference
    );
    for bee in qb.bees() {
        println!(
            "  bee on peer {:2} earned {:5} nectar ({} tasks)",
            bee.peer,
            qb.chain.balance(bee.account),
            bee.tasks_rewarded
        );
    }

    // 4. An advertiser opens a pay-per-click campaign on the keyword "honey".
    qb.register_advertiser(&AdSpec {
        advertiser: 5_000,
        keywords: vec![Analyzer::stem("honey")],
        bid_per_click: 50,
        budget: 1_000,
    })
    .expect("campaign");

    // 5. A user searches. A query is a SearchRequest — query text plus
    //    explicit top-k, pagination, routing and freshness knobs — and the
    //    answer is a SearchResponse: the ranked page of hits plus a
    //    per-stage cost trace and per-term cache provenance.
    //
    //    Routing: use `RoutingPolicy::HashPeer(key)` unless you have a
    //    reason not to. In fleet mode it picks the serving frontend by
    //    rendezvous (HRW) hashing over the *live* membership plus
    //    power-of-two-choices on the gossip-advertised load EWMAs, so a
    //    crashed frontend's keyspace respreads across the whole surviving
    //    fleet and hot spots self-correct. `Direct(i)` pins a specific
    //    frontend (tests, debugging); `RingSuccessor(key)` keeps the old
    //    modulo + ring-walk geometry only so experiments (E12c/E17a) can
    //    measure the post-crash load spike HashPeer eliminates — don't
    //    route production traffic with it.
    let request = SearchRequest::new("artisanal honey")
        .top_k(5)
        .route(RoutingPolicy::HashPeer(5));
    let response = qb.search_request(request).expect("search");
    println!(
        "\nresults for 'artisanal honey' ({} of {} in {}):",
        response.hits.len(),
        response.total_matches,
        response.latency
    );
    for (i, r) in response.hits.iter().enumerate() {
        println!(
            "  {}. {:28} score={:.3} (version {})",
            i + 1,
            r.name,
            r.score,
            r.version
        );
    }
    println!(
        "  stage trace: stats {} | shard fetch {} | {} msgs | {} candidates scored",
        response.trace.stats,
        response.trace.shard_fetch,
        response.trace.messages,
        response.trace.candidates_scored
    );
    println!(
        "  term provenance: {:?}",
        response
            .terms
            .iter()
            .zip(&response.provenance)
            .collect::<Vec<_>>()
    );
    println!("  [ad shown: {:?}]", response.ad);

    // 6. The user clicks the ad: the advertiser is charged and the revenue is
    //    split between the result's creator, the serving bee and the treasury.
    let outcome = response.to_outcome();
    let before = qb.chain.balance(bob);
    qb.click_ad(&outcome).expect("click");
    println!(
        "\nad click settled on-chain: creator {:?} earned {} nectar (balance {} -> {})",
        bob,
        qb.chain.balance(bob) - before,
        before,
        qb.chain.balance(bob)
    );
    println!(
        "total honey supply unchanged: {}",
        qb.chain.accounts().total_supply() == qb.config().chain.genesis_supply
    );

    // 7. The pipelined engine: a whole query stream is cut into windows
    //    and driven through an explicit Planned → Fetching → Scoring → Done
    //    state machine. Up to `max_windows_in_flight` windows overlap —
    //    window N+1's distinct-shard fetches are issued while window N's
    //    are still in flight (under the simulated network's per-link
    //    in-flight limits) — and duplicate queries across the in-flight
    //    set are served from a version-tagged window memo instead of
    //    re-running intersect/score. Every fetch is an event-driven read
    //    machine over async DHT lookups, so per-hop RPCs from concurrent
    //    windows interleave on contended links.
    //
    //    Don't hand-tune `window_size`/`max_windows_in_flight` for load:
    //    start from `PipelineConfig::self_steering()` and treat the fixed
    //    values as the *initial* shape. The self-steering driver measures,
    //    at each window retirement, what share of the window's busy time
    //    the per-link limits charged as queueing; past
    //    `backoff_queue_percent` it backs off (grows the window for more
    //    dedup per issue, then sheds depth) and issues the predicted
    //    cheapest ready window first, and below `rampup_queue_percent` it
    //    restores the configured shape. On an unsaturated stream it does
    //    nothing — E13 asserts the makespan holds exactly — and on a
    //    starved uplink it beats the fixed shape (E13c). Responses stay
    //    in request order either way. The stream below repeats queries on
    //    purpose: watch the memo hits and the makespan.
    let stream: Vec<SearchRequest> = [
        "artisanal honey",
        "decentralized web",
        "artisanal honey", // duplicate: memo hit
        "worker bees honey",
        "decentralized web", // duplicate: memo hit
        "honey engine",
        "artisanal honey", // duplicate: memo hit
        "worker bees",
    ]
    .iter()
    .map(|q| SearchRequest::new(*q).route(RoutingPolicy::HashPeer(7)))
    .collect();
    let outcome = qb
        .search_pipelined(
            stream,
            PipelineConfig {
                window_size: 4,
                max_windows_in_flight: 2,
                ..PipelineConfig::self_steering()
            },
        )
        .expect("pipelined stream");
    println!(
        "\npipelined stream: {} queries in {} windows (peak {} in flight)",
        outcome.report.queries, outcome.report.windows, outcome.report.peak_windows_in_flight
    );
    for r in &outcome.responses {
        println!(
            "  {:24} {} hits, {} msgs, {} fetched, {} shared from window, cache hits {}",
            format!("'{}'", r.query),
            r.hits.len(),
            r.messages(),
            r.shards_fetched(),
            r.batch_shared(),
            r.shard_cache_hits() + r.negative_cache_hits() + r.result_cache_hit() as usize,
        );
    }
    println!(
        "  makespan {} | {} memo hits, {} partial-intersection reuses, {} real scorings | queue delay {}",
        outcome.report.makespan,
        outcome.report.memo_hits,
        outcome.report.memo_partial_hits,
        outcome.report.score_invocations,
        outcome.report.queue_delay,
    );
    println!(
        "  self-steering: {} back-offs, {} ramp-ups (an unsaturated stream should show 0/0)",
        outcome.report.adapt_backoffs, outcome.report.adapt_rampups,
    );
    // One-shot windows are still there: `qb.search_batch(requests)` runs a
    // single window back-to-back, and `search`/`search_from` serve one-off
    // queries through the same planner.

    // 8. The cache at work: replay the same queries and watch the hit rate.
    //    The earlier rounds warmed the tiers; every repeat is served locally
    //    with zero RPC messages.
    println!("\nrepeated-query loop (cache warm-up vs steady state):");
    let queries = [
        "artisanal honey",
        "decentralized web",
        "worker bees",
        "honey",
    ];
    for round in 1..=3 {
        let mut messages = 0;
        let mut hits = 0;
        for q in &queries {
            let out = qb.search(7, q).expect("search");
            messages += out.messages;
            hits += out.result_cache_hit as usize;
        }
        println!(
            "  round {round}: {hits}/{} result-cache hits, {messages} RPC messages",
            queries.len()
        );
    }
    let metrics = qb.cache_metrics().expect("cache enabled");
    println!("\ncache tier counters:");
    print!("{}", CacheReport(metrics));
    println!(
        "overall: {:.0}% of result lookups served from cache",
        100.0 * metrics.result.hit_rate()
    );

    // 9. Observing a query: the engine-wide tracer (`qb-trace`) ships off
    //    and is provably zero-impact — every recording site is a no-op
    //    until `set_tracing(true)`, and E15 asserts that traced runs are
    //    byte-identical to untraced ones. Switched on, every query becomes
    //    a deterministic span tree on the simulated clock; `critical_path`
    //    walks it backwards from the response and answers "where did the
    //    latency go?". The same tracer rides the open-loop harness:
    //    `qb_load::replay_traced` replays a flash-crowd arrival trace (the
    //    E14 workload) with tracing on and returns the span trees next to
    //    the LoadReport, so the slowest query's arrival → queue-wait →
    //    fetch critical path falls out of the data — see
    //    `examples/open_loop.rs` for exactly that, `examples/trace_query.rs`
    //    for a cold-vs-cached side-by-side, and `qb_trace::to_chrome_trace`
    //    for a chrome://tracing / Perfetto-loadable export.
    qb.set_tracing(true);
    let traced = qb
        .search_request(SearchRequest::new("artisanal honey").top_k(3))
        .expect("search");
    let spans = qb.take_trace();
    qb.set_tracing(false);
    let root = spans.named("query").next().expect("traced query tree");
    println!(
        "\ntraced query ({} spans, {} end to end) — critical path:",
        spans.len(),
        traced.latency
    );
    print!(
        "{}",
        qb_trace::render_path(&qb_trace::critical_path(&spans, root.id))
    );

    // 10. Bootstrapping a frontend from index artifacts: with
    //    `config.segment = SegmentConfig::enabled()` (it rides on the query
    //    cache) the writer path accumulates every published shard into a
    //    pending segment — an immutable, deterministically encoded,
    //    mergeable multi-term artifact with a per-term version vector.
    //    `qb.compact_segments()` merges the pending segments and publishes
    //    the artifact as a chunked content-addressed DAG in qb-storage plus
    //    a DHT pointer record (`qb.latest_segment()` returns the published
    //    `SegmentRef`), with every byte charged to NetStats. A late joiner
    //    then calls `qb.fleet_join_with_segment()` instead of
    //    `qb.fleet_join()`: one pointer lookup, one bulk artifact fetch,
    //    one import through the cache's version guard (stale shards from
    //    before a republish are refused, so zero stale serves), one delta
    //    catch-up exchange — instead of warming query-by-query from the
    //    DHT. E16 asserts the payoff: the segment joiner reaches 95% of
    //    steady-state hit rate with ≥50% fewer warm-up DHT shard fetches
    //    and strictly fewer bootstrap bytes than gossip-only warm-up. See
    //    `examples/segment_bootstrap.rs` for the side-by-side.

    // 11. Where to next: experiment E13 measures the pipelined engine at
    //    scale (≥30% lower makespan than back-to-back windows on a
    //    duplicate-heavy Zipf stream, byte-identical results);
    //    `examples/batch_search.rs` measures batched vs sequential
    //    execution (E11); `config.gossip = GossipConfig::enabled(n)` runs
    //    a fleet of n frontends whose caches warm each other over the
    //    qb-gossip overlay — see `examples/gossip_warmup.rs` and E10. The
    //    overlay is churn- and zone-aware: frontends join
    //    (`qb.fleet_join()`, warming from a live neighbour by anti-entropy
    //    instead of the DHT), leave or crash (`qb.fleet_leave(i, graceful)`)
    //    and restart (`qb.fleet_rejoin(i)`, bumping a SWIM-style
    //    incarnation epoch so delayed summaries can never confuse its
    //    liveness); `GossipConfig::enabled_zoned(n, zones)` +
    //    `NetConfig::zoned(..)` bias partner sampling toward the own
    //    latency zone; `digest_mode: DigestMode::Delta` (the default)
    //    ships delta digests + a cached bloom holdings filter instead of
    //    full hot sets — see `examples/fleet_churn.rs` and E12. In fleet
    //    mode, a batch window's freshly fetched shard keys ride the next
    //    gossip round as priority advertisements (batch-aware gossip,
    //    asserted in E13b).
    println!("\nnext: cargo run -p qb-examples --release --bin batch_search");
    println!("      cargo run -p qb-examples --release --bin fleet_churn");
    println!("      cargo run -p qb-examples --release --bin segment_bootstrap");
}
