//! Open-loop load: a flash crowd hits a 4-frontend fleet with admission
//! control. A qb-load trace generates Poisson arrivals at 60 q/s with a
//! 15x burst in the middle; the admission controller degrades `Fresh`
//! queries to `CacheOk` as queues build and sheds once the estimated
//! sojourn passes the SLO, so the fleet rides out the burst with bounded
//! queues instead of collapsing.
//!
//! Run with: `cargo run -p qb-examples --release --bin open_loop`

use qb_chain::AccountId;
use qb_common::{DetRng, SimDuration};
use qb_load::{replay, replay_traced, ArrivalTrace, RateShape, ReplayConfig, TraceConfig};
use qb_queenbee::{AdmissionConfig, CacheConfig, GossipConfig, QueenBee, QueenBeeConfig};
use qb_workload::{Corpus, CorpusConfig, CorpusGenerator};

fn build_fleet() -> QueenBee {
    let mut config = QueenBeeConfig::small();
    config.num_peers = 32;
    config.num_bees = 4;
    // WAN latencies: a Fresh query costs ~100ms of simulated round-trips,
    // so the fleet saturates at a few hundred q/s and the burst below is a
    // real overload rather than a blip.
    config.net = qb_simnet::NetConfig::default();
    config.cache = CacheConfig::enabled();
    config.gossip = GossipConfig::enabled(4);
    config.admission = AdmissionConfig::enabled();
    config.admission.queue_capacity = 32;
    config.admission.window_size = 8;
    config.admission.max_windows_in_flight = 2;
    config.admission.degrade_threshold = SimDuration::from_millis(250);
    config.admission.shed_threshold = SimDuration::from_millis(800);
    QueenBee::new(config).expect("valid config")
}

fn publish_corpus(qb: &mut QueenBee, corpus: &Corpus) {
    for (i, page) in corpus.pages.iter().enumerate() {
        let peer = (10 + i % 18) as u64;
        qb.publish(peer, AccountId(corpus.creators[i]), page)
            .expect("publish");
    }
    qb.seal();
    qb.process_publish_events().expect("indexing");
}

fn main() {
    let corpus = CorpusGenerator::new(CorpusConfig {
        num_pages: 24,
        vocab_size: 500,
        avg_doc_len: 60,
        ..CorpusConfig::default()
    })
    .generate(&mut DetRng::new(0x0FE));
    let mut qb = build_fleet();
    publish_corpus(&mut qb, &corpus);

    // A 6-second trace: 60 q/s background, a 15x flash crowd in the middle
    // two seconds, Zipf-popular queries from a 32-query pool.
    let trace_config = TraceConfig {
        seed: 0x0FE,
        duration: SimDuration::from_secs(6),
        base_qps: 60.0,
        shape: RateShape::FlashCrowd {
            at: SimDuration::from_secs(2),
            duration: SimDuration::from_secs(2),
            multiplier: 15.0,
        },
        pool_size: 32,
        ..TraceConfig::default()
    };
    let trace = ArrivalTrace::generate(&corpus, &trace_config);
    println!(
        "trace: {} arrivals over {} ({:.0} q/s mean, {:.0} q/s during the burst)",
        trace.len(),
        trace_config.duration,
        trace.offered_qps(),
        trace_config.base_qps * trace_config.shape.peak_multiplier(),
    );
    for window in 0..6 {
        let from = SimDuration::from_secs(window);
        let to = SimDuration::from_secs(window + 1);
        println!(
            "  second {window}: {:>4} arrivals",
            trace.arrivals_between(from, to)
        );
    }

    // Replay it open-loop: 90% of queries demand Fresh results, the rest
    // tolerate the caches. The admission controller may degrade Fresh to
    // CacheOk under pressure — that is the point.
    let report = replay(
        &mut qb,
        &trace,
        &ReplayConfig {
            fresh_fraction: 0.9,
            ..ReplayConfig::default()
        },
    )
    .expect("open-loop replay");

    println!("\n{report}");
    println!(
        "the controller degraded {} queries and shed {} ({:.1}%), keeping the \
         ingress queues at <= {} of {} slots",
        report.degraded,
        report.shed,
        100.0 * report.shed_rate(),
        report.peak_queue_depth,
        qb.config().admission.queue_capacity,
    );
    println!(
        "sojourn p50/p99/p999: {} / {} / {} — bounded through the burst",
        report.p50(),
        report.p99(),
        report.p999(),
    );

    // Observing the burst: replay the same flash crowd on a fresh fleet
    // with the structured tracer on (`qb_load::replay_traced` — provably
    // zero-impact, the report comes back byte-identical) and ask where the
    // slowest query's sojourn actually went. During the burst the answer
    // is queue wait at the ingress, not the fetch itself — the regime E15
    // asserts across the whole overload ladder.
    let mut traced_fleet = build_fleet();
    publish_corpus(&mut traced_fleet, &corpus);
    let (traced_report, spans) = replay_traced(
        &mut traced_fleet,
        &trace,
        &ReplayConfig {
            fresh_fraction: 0.9,
            ..ReplayConfig::default()
        },
    )
    .expect("traced replay");
    assert_eq!(report, traced_report, "tracing never perturbs the replay");
    let slowest = spans
        .named("query")
        .max_by_key(|s| (s.duration(), s.id))
        .expect("completed queries");
    println!(
        "\nslowest traced query ({} arrival to completion) — critical path:",
        slowest.duration()
    );
    print!(
        "{}",
        qb_trace::render_path(&qb_trace::critical_path(&spans, slowest.id))
    );
}
