//! Runs the QueenBee honey economy end to end — publish rewards, indexing and
//! ranking bounties, popularity rewards, advertiser campaigns and click
//! revenue sharing — and prints who ended up with the honey.
//!
//! Run with: `cargo run -p qb-examples --release --bin incentive_economy`

use qb_chain::AccountId;
use qb_common::DetRng;
use qb_queenbee::{gini_coefficient, QueenBee, QueenBeeConfig};
use qb_workload::{AdvertiserWorkload, CorpusConfig, CorpusGenerator, QueryWorkload};

fn main() {
    let corpus = CorpusGenerator::new(CorpusConfig {
        num_pages: 60,
        num_creators: 15,
        ..CorpusConfig::default()
    })
    .generate(&mut DetRng::new(11));

    let mut config = QueenBeeConfig::small();
    config.num_peers = 48;
    config.num_bees = 6;
    let mut qb = QueenBee::new(config).expect("config");

    for (i, page) in corpus.pages.iter().enumerate() {
        qb.publish((i % 40) as u64, AccountId(corpus.creators[i]), page)
            .unwrap();
    }
    qb.seal();
    qb.process_publish_events().unwrap();
    qb.run_rank_round().unwrap();

    // Advertisers join and users search + click for a while.
    let ads = AdvertiserWorkload::new(&corpus, 6);
    let mut rng = DetRng::new(12);
    for spec in ads.generate(&corpus, &mut rng) {
        qb.register_advertiser(&spec).unwrap();
    }
    let workload = QueryWorkload::new(&corpus);
    let mut clicks = 0u64;
    for (i, q) in workload
        .generate_batch(&corpus, &mut rng, 120)
        .iter()
        .enumerate()
    {
        if let Ok(out) = qb.search((i % 40) as u64, q) {
            if out.ad.is_some() && ads.user_clicks(&mut rng) && qb.click_ad(&out).unwrap_or(false) {
                clicks += 1;
            }
        }
    }
    qb.run_rank_round().unwrap();

    let roles = qb.honey_by_role();
    println!("honey economy after {clicks} paid ad clicks:");
    println!("  creators    : {:>12} nectar", roles.creators);
    println!("  worker bees : {:>12} nectar", roles.bees);
    println!(
        "  advertisers : {:>12} nectar (unspent budgets)",
        roles.advertisers
    );
    println!("  treasury    : {:>12} nectar", roles.treasury);
    println!(
        "  other       : {:>12} nectar (escrows, validators)",
        roles.other
    );
    println!(
        "  supply conserved: {}",
        qb.chain.accounts().total_supply() == qb.config().chain.genesis_supply
    );

    let creator_balances: Vec<u64> = qb
        .creator_accounts()
        .iter()
        .map(|a| qb.chain.balance(*a))
        .collect();
    println!("\nfairness:");
    println!(
        "  {} creators, Gini of creator honey = {:.2}",
        creator_balances.len(),
        gini_coefficient(&creator_balances)
    );
    let mut top: Vec<(String, f64)> = qb
        .chain
        .publish_registry()
        .pages()
        .map(|p| (p.name.clone(), qb.rank_of(&p.name)))
        .collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("  top ranked pages (popularity-reward candidates):");
    for (name, rank) in top.iter().take(5) {
        let creator = qb.chain.publish_registry().get(name).unwrap().creator;
        println!(
            "    {:28} rank={:.4}  creator {:?} balance {}",
            name,
            rank,
            creator,
            qb.chain.balance(creator)
        );
    }
    let ad_market = qb.chain.ad_market();
    println!(
        "\nad market: {} campaigns, total click revenue {} nectar",
        ad_market.len(),
        ad_market.total_revenue
    );
}
