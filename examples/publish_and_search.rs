//! Publish a synthetic web corpus and run an interactive-style query batch
//! against it, reporting latency percentiles and per-query results.
//!
//! Run with: `cargo run -p qb-examples --release --bin publish_and_search`

use qb_chain::AccountId;
use qb_common::DetRng;
use qb_queenbee::{QueenBee, QueenBeeConfig};
use qb_simnet::LatencyRecorder;
use qb_workload::{CorpusConfig, CorpusGenerator, QueryWorkload};

fn main() {
    let corpus = CorpusGenerator::new(CorpusConfig {
        num_pages: 80,
        vocab_size: 1_500,
        avg_doc_len: 70,
        ..CorpusConfig::default()
    })
    .generate(&mut DetRng::new(7));

    let mut config = QueenBeeConfig::small();
    config.num_peers = 48;
    config.num_bees = 6;
    let mut qb = QueenBee::new(config).expect("valid config");

    println!("publishing {} pages...", corpus.pages.len());
    for (i, page) in corpus.pages.iter().enumerate() {
        qb.publish((i % 40) as u64, AccountId(corpus.creators[i]), page)
            .expect("publish");
    }
    qb.seal();
    let handled = qb.process_publish_events().expect("index");
    qb.run_rank_round().expect("rank");
    println!("worker bees indexed {handled} pages and computed page ranks\n");

    let workload = QueryWorkload::new(&corpus);
    let mut rng = DetRng::new(99);
    let queries = workload.generate_batch(&corpus, &mut rng, 40);
    let mut latencies = LatencyRecorder::new();
    let mut answered = 0usize;
    for (i, q) in queries.iter().enumerate() {
        match qb.search((i % 40) as u64, q) {
            Ok(out) => {
                latencies.record(out.latency);
                if !out.results.is_empty() {
                    answered += 1;
                }
                if i < 5 {
                    println!(
                        "query '{q}': {} results, best = {:?}, {} msgs, {}",
                        out.results.len(),
                        out.results
                            .first()
                            .map(|r| r.name.clone())
                            .unwrap_or_default(),
                        out.messages,
                        out.latency
                    );
                }
            }
            Err(e) => println!("query '{q}' failed: {e}"),
        }
    }
    let s = latencies.summary();
    println!("\nanswered {answered}/{} queries", queries.len());
    println!(
        "latency: mean {:.1} ms, p50 {:.1} ms, p90 {:.1} ms, p99 {:.1} ms",
        s.mean_ms, s.p50_ms, s.p90_ms, s.p99_ms
    );
    println!(
        "network traffic so far: {} messages, {:.1} MiB",
        qb.net.stats().messages,
        qb.net.stats().bytes as f64 / (1024.0 * 1024.0)
    );
    println!(
        "result staleness observed: {:.1}%",
        qb.freshness.staleness_rate() * 100.0
    );
}
