// Library target for the qb-examples package; the walkthroughs are bins.
