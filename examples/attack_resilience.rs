//! Demonstrates the two attacks the paper anticipates — worker-bee collusion
//! and scraper sites — and how QueenBee's defenses (verification quorums,
//! stake slashing and duplicate detection) contain them.
//!
//! Run with: `cargo run -p qb-examples --release --bin attack_resilience`

use qb_chain::AccountId;
use qb_dweb::WebPage;
use qb_queenbee::{CollusionAttack, QueenBee, QueenBeeConfig, ScraperAttack};

fn page(name: &str, body: &str) -> WebPage {
    WebPage::new(name, format!("Title {name}"), body, vec![])
}

fn main() {
    // ---- Collusion attack -------------------------------------------------
    println!("### Collusion attack (25% of bees boost 'evil/spam') ###");
    let mut qb = QueenBee::new(QueenBeeConfig::small()).expect("config");
    qb.publish(
        1,
        AccountId(6_000),
        &page("evil/spam", "buy cheap spam now"),
    )
    .unwrap();
    qb.seal();
    let attack = CollusionAttack::new(0.25, vec!["evil/spam".into()]);
    qb.apply_collusion(&attack);
    for i in 0..8u64 {
        qb.publish(
            2 + i,
            AccountId(1_000 + i),
            &page(
                &format!("honest/{i}"),
                "genuinely useful article about beekeeping",
            ),
        )
        .unwrap();
    }
    qb.seal();
    qb.process_publish_events().unwrap();
    qb.run_rank_round().unwrap();
    let out = qb.search(3, "beekeeping").unwrap();
    let spam_on_top = out.results.iter().take(3).any(|r| r.name == "evil/spam");
    println!("  spam page in top-3 for 'beekeeping': {spam_on_top}");
    for bee in qb.bees() {
        if bee.is_colluding() {
            println!(
                "  colluding bee on peer {}: flagged {} times, remaining stake {}",
                bee.peer,
                bee.times_flagged,
                qb.chain.reward_pool().stake_of(bee.account)
            );
        }
    }

    // ---- Scraper attack ---------------------------------------------------
    println!("\n### Scraper-site attack (mirroring a popular page) ###");
    for dup_detection in [true, false] {
        let mut config = QueenBeeConfig::small();
        config.duplicate_detection = dup_detection;
        let mut qb = QueenBee::new(config).expect("config");
        let victim = page(
            "blog/viral",
            &(0..150)
                .map(|i| format!("originalword{} ", i % 40))
                .collect::<String>(),
        );
        qb.publish(1, AccountId(1_000), &victim).unwrap();
        qb.seal();
        qb.process_publish_events().unwrap();
        let attack = ScraperAttack::new(6_666, 1);
        let reports = qb.run_scraper_attack(&attack, &[victim]).unwrap();
        qb.process_publish_events().unwrap();
        println!(
            "  duplicate detection {:5}: mirror accepted = {:5}, scraper honey = {}",
            dup_detection,
            reports[0].accepted,
            qb.chain.balance(AccountId(6_666))
        );
    }

    // ---- DDoS / failures --------------------------------------------------
    println!("\n### Availability under failures ###");
    let mut qb = QueenBee::new(QueenBeeConfig::small()).expect("config");
    qb.publish(
        1,
        AccountId(1_000),
        &page("p/alive", "resilient content that survives outages"),
    )
    .unwrap();
    qb.seal();
    qb.process_publish_events().unwrap();
    for fraction in [0.0, 0.25, 0.5] {
        qb.net.heal_all();
        qb.net.fail_fraction(fraction, &[7]);
        let ok = qb
            .search(7, "resilient outages")
            .map(|o| !o.results.is_empty())
            .unwrap_or(false);
        println!(
            "  {:3.0}% of peers down -> query answered: {ok}",
            fraction * 100.0
        );
    }
}
