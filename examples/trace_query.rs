//! Observing a query: trace one cold `Fresh` query and one warm `CacheOk`
//! query on a zoned fleet and print their critical paths side by side.
//!
//! The engine-wide tracer (`qb-trace`) is off by default and provably
//! zero-impact; switched on it records a deterministic span tree per
//! query — admission, window, fetch, per-RPC network spans — on the
//! simulated clock. `critical_path` then walks the tree backwards from
//! the response and answers the operator question "where did the latency
//! go?": the cold query descends into a DHT shard fetch, while the warm
//! query is served out of the result cache in (simulated) microseconds.
//!
//! Run with: `cargo run -p qb-examples --release --bin trace_query`

use qb_chain::AccountId;
use qb_common::DetRng;
use qb_queenbee::{CacheConfig, Freshness, GossipConfig, QueenBee, QueenBeeConfig, SearchRequest};
use qb_trace::{attribution, critical_path, render_path, to_chrome_trace, Trace};
use qb_workload::{CorpusConfig, CorpusGenerator};

fn main() {
    // A 4-frontend fleet over WAN latency zones, with the query cache on.
    let mut config = QueenBeeConfig::small();
    config.num_peers = 32;
    config.num_bees = 4;
    config.net = qb_simnet::NetConfig::default();
    config.cache = CacheConfig::enabled();
    config.gossip = GossipConfig::enabled(4);
    let mut qb = QueenBee::new(config).expect("valid config");

    let corpus = CorpusGenerator::new(CorpusConfig {
        num_pages: 24,
        vocab_size: 500,
        avg_doc_len: 60,
        ..CorpusConfig::default()
    })
    .generate(&mut DetRng::new(0x7ACE));
    for (i, page) in corpus.pages.iter().enumerate() {
        let peer = (10 + i % 18) as u64;
        qb.publish(peer, AccountId(corpus.creators[i]), page)
            .expect("publish");
    }
    qb.seal();
    qb.process_publish_events().expect("indexing");

    qb.set_tracing(true);
    let term = corpus.pages[0]
        .title
        .split_whitespace()
        .next()
        .expect("titled page");

    // Query 1: cold and Fresh — must fetch its term shards over the DHT.
    let cold = qb
        .search_request(
            SearchRequest::new(term)
                .top_k(5)
                .freshness(Freshness::Fresh),
        )
        .expect("search");
    let cold_trace = qb.take_trace();

    // Query 2: the same text, CacheOk — served from the warmed result cache.
    let warm = qb
        .search_request(
            SearchRequest::new(term)
                .top_k(5)
                .freshness(Freshness::CacheOk),
        )
        .expect("search");
    let warm_trace = qb.take_trace();

    println!("query: {term:?}\n");
    print_side(&cold_trace, "cold / Fresh", cold.latency);
    print_side(&warm_trace, "warm / CacheOk", warm.latency);
    assert!(
        warm.latency < cold.latency,
        "the cached query must be faster"
    );

    // The Chrome-trace export loads in chrome://tracing or Perfetto.
    let export = to_chrome_trace(&cold_trace);
    println!(
        "(chrome-trace export of the cold query: {} bytes, {} spans)",
        export.len(),
        cold_trace.len()
    );
}

/// Print one query's critical path and its per-stage attribution, plus
/// the serving window's path (where the DHT hops and per-RPC network
/// spans live) when the query had to touch the network.
fn print_side(trace: &Trace, label: &str, latency: qb_common::SimDuration) {
    let query = trace.named("query").next().expect("query span tree");
    println!("--- {label}: {latency} end to end ---");
    println!("{}", render_path(&critical_path(trace, query.id)));
    println!("attribution (critical-path self time):");
    for (stage, d) in attribution(trace, query.id) {
        if d > qb_common::SimDuration::ZERO {
            println!("  {stage:<12} {d}");
        }
    }
    if let Some(window) = trace
        .named("window")
        .find(|w| w.duration() > qb_common::SimDuration::ZERO)
    {
        println!("window critical path (DHT + network spans):");
        println!("{}", render_path(&critical_path(trace, window.id)));
    }
    println!();
}
