//! Batched multi-query execution: the same Zipf(1.0) query stream served
//! one query at a time and in batch windows, on identical engines with the
//! cache disabled — so every saving shown here comes from cross-query work
//! sharing inside the windows, not from repeats over time.
//!
//! A batch window plans all its requests first, fetches each distinct
//! missing term shard through the DHT **once**, and fans the shard out to
//! every query that needs it. Under Zipf skew the hot head terms are shared
//! by most of the window, so aggregate DHT traffic collapses while every
//! result list stays byte-identical to sequential execution (experiment E11
//! asserts exactly this in CI).
//!
//! Run with: `cargo run -p qb-examples --release --bin batch_search`

use qb_chain::AccountId;
use qb_common::{DetRng, SimDuration};
use qb_queenbee::{QueenBee, QueenBeeConfig, RoutingPolicy, SearchRequest, TermProvenance};
use qb_workload::{Corpus, CorpusConfig, CorpusGenerator, QueryWorkload, ZipfSampler};

const WINDOW: usize = 32;
const STREAM: usize = 320;
const POOL: usize = 80;

fn build_engine(corpus: &Corpus) -> QueenBee {
    let mut config = QueenBeeConfig::small();
    config.num_peers = 64;
    config.num_bees = 6;
    config.seed = 0xBA7C;
    let mut qb = QueenBee::new(config).expect("valid config");
    for (i, page) in corpus.pages.iter().enumerate() {
        qb.publish((i % 50) as u64, AccountId(corpus.creators[i]), page)
            .expect("publish");
    }
    qb.seal();
    qb.process_publish_events().expect("index");
    qb
}

fn main() {
    let corpus = CorpusGenerator::new(CorpusConfig {
        num_pages: 60,
        vocab_size: 800,
        avg_doc_len: 70,
        ..CorpusConfig::default()
    })
    .generate(&mut DetRng::new(0xBA7C));
    let workload = QueryWorkload::new(&corpus);
    let pool = workload.generate_batch(&corpus, &mut DetRng::new(1), POOL);
    let zipf = ZipfSampler::new(pool.len(), 1.0);
    let stream: Vec<usize> = {
        let mut rng = DetRng::new(2);
        (0..STREAM).map(|_| zipf.sample(&mut rng)).collect()
    };
    println!(
        "stream: {STREAM} Zipf(1.0) queries over a {POOL}-query pool, window {WINDOW}, cache off\n"
    );

    // Sequential: one request per call — every query pays its own fetches.
    let mut qb = build_engine(&corpus);
    let mut seq_hits: Vec<Vec<qb_index::ScoredDoc>> = Vec::new();
    let (mut seq_msgs, mut seq_fetches) = (0u64, 0usize);
    let mut seq_latency = SimDuration::ZERO;
    for (i, &q) in stream.iter().enumerate() {
        qb.advance_time(SimDuration::from_millis(50));
        let resp = qb
            .search_request(
                SearchRequest::new(pool[q].as_str())
                    .route(RoutingPolicy::HashPeer((i % 50) as u64)),
            )
            .expect("query");
        seq_msgs += resp.messages();
        seq_fetches += resp.shards_fetched();
        seq_latency += resp.latency;
        seq_hits.push(resp.hits);
    }

    // Batched: the identical stream in windows of concurrent queries.
    let mut qb = build_engine(&corpus);
    let mut batch_hits: Vec<Vec<qb_index::ScoredDoc>> = Vec::new();
    let (mut batch_msgs, mut batch_fetches, mut shared) = (0u64, 0usize, 0usize);
    let mut batch_latency = SimDuration::ZERO;
    let mut example_printed = false;
    for (w, window) in stream.chunks(WINDOW).enumerate() {
        qb.advance_time(SimDuration::from_millis(50));
        let requests: Vec<SearchRequest> = window
            .iter()
            .enumerate()
            .map(|(j, &q)| {
                SearchRequest::new(pool[q].as_str())
                    .route(RoutingPolicy::HashPeer(((w * WINDOW + j) % 50) as u64))
            })
            .collect();
        let responses = qb.search_batch(requests).expect("batch window");
        if !example_printed {
            // Show how one window shares its fetches.
            let fetches: usize = responses.iter().map(|r| r.shards_fetched()).sum();
            let reused: usize = responses.iter().map(|r| r.batch_shared()).sum();
            println!(
                "first window: {} queries resolved {} distinct DHT fetches, reused {} shards",
                responses.len(),
                fetches,
                reused
            );
            let sample = responses
                .iter()
                .find(|r| r.batch_shared() > 0)
                .unwrap_or(&responses[0]);
            println!(
                "  e.g. '{}': {:?}\n",
                sample.query,
                sample
                    .terms
                    .iter()
                    .zip(&sample.provenance)
                    .map(|(t, p)| {
                        let tag = match p {
                            TermProvenance::DhtFetch => "fetched",
                            TermProvenance::BatchShared => "shared",
                            TermProvenance::ResultCache
                            | TermProvenance::ShardCache
                            | TermProvenance::NegativeCache
                            | TermProvenance::StaleCache { .. } => "cached",
                        };
                        (t.as_str(), tag)
                    })
                    .collect::<Vec<_>>()
            );
            example_printed = true;
        }
        for resp in responses {
            batch_msgs += resp.messages();
            batch_fetches += resp.shards_fetched();
            shared += resp.batch_shared();
            batch_latency += resp.latency;
            batch_hits.push(resp.hits);
        }
    }

    let identical = seq_hits == batch_hits;
    println!("                          sequential      batched");
    println!(
        "rpc messages            {seq_msgs:>12} {batch_msgs:>12}   (-{:.1}%)",
        100.0 * (1.0 - batch_msgs as f64 / seq_msgs.max(1) as f64)
    );
    println!(
        "dht shard fetches       {seq_fetches:>12} {batch_fetches:>12}   (-{:.1}%)",
        100.0 * (1.0 - batch_fetches as f64 / seq_fetches.max(1) as f64)
    );
    println!("shards shared in-window {:>12} {shared:>12}", 0);
    println!(
        "total simulated latency {:>12} {:>12}",
        seq_latency.to_string(),
        batch_latency.to_string()
    );
    println!("\nresult lists byte-identical across both runs: {identical}");
    assert!(identical, "batching must never change a result");
}
