//! Gossip warm-up: a 3-frontend fleet where one frontend's traffic warms
//! everyone else through the qb-gossip overlay — plus warm-start
//! persistence across a simulated restart.
//!
//! Run with: `cargo run -p qb-examples --release --bin gossip_warmup`

use qb_chain::AccountId;
use qb_common::SimDuration;
use qb_dweb::WebPage;
use qb_queenbee::{CacheConfig, GossipConfig, QueenBee, QueenBeeConfig};

fn build_fleet() -> QueenBee {
    // Fleet mode: 3 query frontends on peers 0..3, each with a private
    // query-serving cache, exchanging hot-shard digests and fills.
    let mut config = QueenBeeConfig::small();
    config.cache = CacheConfig::enabled();
    config.gossip = GossipConfig::enabled(3);
    QueenBee::new(config).expect("valid config")
}

fn publish_corpus(qb: &mut QueenBee) {
    let pages = [
        (
            "wiki/dweb",
            "the decentralized web is served by peer devices",
        ),
        (
            "wiki/bees",
            "worker bees maintain the distributed index for honey",
        ),
        (
            "wiki/gossip",
            "epidemic gossip spreads cached shards between frontends",
        ),
        (
            "wiki/dht",
            "kademlia routes every lookup in logarithmic hops",
        ),
    ];
    for (i, (name, body)) in pages.iter().enumerate() {
        qb.publish(
            (10 + i) as u64,
            AccountId(1_000 + i as u64),
            &WebPage::new(*name, format!("Title {name}"), *body, vec![]),
        )
        .expect("publish");
    }
    qb.seal();
    qb.process_publish_events().expect("indexing");
}

fn main() {
    let mut qb = build_fleet();
    publish_corpus(&mut qb);
    println!(
        "fleet up: {} frontends, {} peers, gossip every {}",
        qb.num_frontends(),
        qb.net.len(),
        qb.config().gossip.round_interval
    );

    // 1. Only frontend 0 sees traffic: it pays the DHT cold-start cost.
    let queries = ["decentralized peers", "worker honey", "gossip shards"];
    println!("\nfrontend 0 takes the cold-start hit:");
    for q in &queries {
        let out = qb.search_from(0, q).expect("search");
        println!(
            "  '{q}': {} shard fetches, {} RPC messages, {}",
            out.shards_fetched, out.messages, out.latency
        );
        qb.advance_time(SimDuration::from_millis(250)); // gossip rounds fire
    }

    // 2. Frontends 1 and 2 never queried anything — yet they are warm.
    for frontend in 1..3 {
        println!("\nfrontend {frontend} was warmed by gossip alone:");
        for q in &queries {
            let out = qb.search_from(frontend, q).expect("search");
            println!(
                "  '{q}': {} shard fetches, {} shard-cache hits, {}",
                out.shards_fetched, out.shard_cache_hits, out.latency
            );
        }
    }

    let stats = qb.gossip_stats().expect("gossip enabled");
    println!("\n{stats}");

    // 3. Warm-start persistence: snapshot frontend 1's hot set and pre-fill
    //    a freshly restarted deployment with it.
    let snapshot = qb.export_hot_set(1, 32).expect("export");
    println!(
        "warm-start snapshot of frontend 1: {} bytes",
        snapshot.len()
    );
    let mut restarted = build_fleet();
    publish_corpus(&mut restarted);
    let admitted = restarted.import_hot_set(0, &snapshot).expect("import");
    println!("restarted fleet imported {admitted} shards into frontend 0:");
    for q in &queries {
        let out = restarted.search_from(0, q).expect("search");
        println!(
            "  '{q}': {} shard fetches ({} shard-cache hits) on the first query",
            out.shards_fetched, out.shard_cache_hits
        );
    }
    println!(
        "\nstale results served across both fleets: {} + {} (the version guard held)",
        qb.freshness.stale_results, restarted.freshness.stale_results
    );
}
