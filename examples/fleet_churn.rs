//! Fleet churn walkthrough: a zoned frontend fleet under crashes, restarts
//! and joins.
//!
//! Demonstrates the churn-aware gossip overlay end to end:
//! 1. a 6-frontend fleet spread over 2 latency zones warms up on a query
//!    stream (delta digests + holdings filters keep the gossip cheap),
//! 2. a frontend crashes; the survivors detect the silence via heartbeats
//!    and evict it from their sample sets while hashed routing walks
//!    around the dead slot,
//! 3. the crashed frontend restarts and a brand-new frontend joins — both
//!    warm their caches from a live neighbour by bootstrap anti-entropy,
//!    never from the DHT — and serve hot queries cache-hot immediately,
//! 4. a republish raced by all of this never serves a stale result.
//!
//! Run with: `cargo run -p qb-examples --release --bin fleet_churn`

use qb_chain::AccountId;
use qb_common::SimDuration;
use qb_dweb::WebPage;
use qb_queenbee::{CacheConfig, GossipConfig, QueenBee, QueenBeeConfig};
use qb_simnet::NetConfig;

fn main() {
    let mut config = QueenBeeConfig::small();
    config.num_peers = 40;
    config.num_bees = 4;
    config.net = NetConfig::zoned(2, 2_000, 40_000);
    config.cache = CacheConfig::enabled();
    config.gossip = GossipConfig::enabled_zoned(6, 2);
    let mut qb = QueenBee::new(config).expect("valid config");
    println!(
        "fleet up: {} frontends over 2 zones (delta digests, bloom holdings filter)",
        qb.num_frontends()
    );

    // Publish a handful of pages and warm the fleet through frontend 0.
    for i in 0..6u64 {
        qb.publish(
            20 + i,
            AccountId(1_000 + i),
            &WebPage::new(
                format!("wiki/page{i}"),
                format!("Page {i}"),
                "honey nectar pollen meadow clover forage",
                vec![],
            ),
        )
        .expect("publish");
    }
    qb.seal();
    qb.process_publish_events().expect("index");
    qb.search_from(0, "honey meadow").expect("warm query");
    for _ in 0..2 {
        qb.advance_time(qb.config().gossip.round_interval);
    }
    let warm = qb.search_from(3, "honey meadow").expect("gossip-warmed");
    println!(
        "frontend 3 warmed by gossip: {} DHT shard fetches on its first query",
        warm.shards_fetched
    );

    // A frontend crashes; the fleet detects and evicts it.
    qb.fleet_leave(2, false).expect("crash");
    for _ in 0..4 {
        qb.advance_time(qb.config().gossip.round_interval);
    }
    let stats = qb.gossip_stats().expect("fleet");
    println!(
        "after the crash: {} failed exchanges, {} view evictions; hashed routing still serves: {}",
        stats.failed_exchanges,
        stats.evictions,
        qb.search(2, "honey meadow").is_ok()
    );

    // Restart + a brand-new joiner, both warmed by bootstrap anti-entropy.
    qb.fleet_rejoin(2).expect("rejoin");
    let joined = qb.fleet_join().expect("join");
    let rejoin_out = qb.search_from(2, "honey meadow").expect("rejoined");
    let join_out = qb.search_from(joined, "honey meadow").expect("joined");
    println!(
        "restart + join warm from the fleet: {} and {} DHT shard fetches on their first queries",
        rejoin_out.shards_fetched, join_out.shards_fetched
    );

    // A republish raced by the churn: still zero stale serves.
    qb.publish(
        20,
        AccountId(1_000),
        &WebPage::new(
            "wiki/page0",
            "Page 0",
            "honey nectar pollen meadow clover forage updated",
            vec![],
        ),
    )
    .expect("republish");
    qb.seal();
    qb.process_publish_events().expect("reindex");
    qb.advance_time(SimDuration::from_millis(400));
    let fresh = qb
        .search_from(joined, "updated honey")
        .expect("fresh query");
    println!(
        "republish raced by churn: top hit version {} — {} stale results served overall",
        fresh.results.first().map(|r| r.version).unwrap_or(0),
        qb.freshness.stale_results
    );

    let stats = qb.gossip_stats().expect("fleet");
    println!(
        "gossip totals: {} digest + {} fill + {} membership bytes, {} joins / {} crashes",
        stats.digest_bytes, stats.fill_bytes, stats.membership_bytes, stats.joins, stats.crashes
    );
}
