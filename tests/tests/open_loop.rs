//! Integration tests for the open-loop load harness (the E14 acceptance
//! criteria, end to end): a qb-load arrival trace replayed against a real
//! fleet must be deterministic, must complete everything without shedding
//! below saturation, and under heavy overload must shed while keeping
//! ingress queues bounded and goodput alive — all without perturbing the
//! closed-loop query paths, which never consult the admission config.

use qb_chain::AccountId;
use qb_common::SimDuration;
use qb_load::{replay, ArrivalTrace, RateShape, ReplayConfig, TraceConfig};
use qb_queenbee::{
    AdmissionConfig, CacheConfig, Freshness, GossipConfig, QueenBee, QueenBeeConfig, SearchRequest,
    TimedRequest,
};
use qb_workload::{Corpus, CorpusConfig, CorpusGenerator};

fn corpus(seed: u64, pages: usize) -> Corpus {
    let config = CorpusConfig {
        num_pages: pages,
        vocab_size: (pages * 12).max(500),
        avg_doc_len: 60,
        ..CorpusConfig::default()
    };
    CorpusGenerator::new(config).generate(&mut qb_common::DetRng::new(seed))
}

fn open_loop_engine(corpus: &Corpus, seed: u64) -> QueenBee {
    let mut config = QueenBeeConfig::small();
    config.num_peers = 32;
    config.num_bees = 4;
    config.seed = seed;
    // WAN latencies: a Fresh query costs ~100ms of simulated round-trips,
    // so saturation is reachable at a few hundred q/s instead of tens of
    // thousands, and the thresholds below are set against that service
    // time. Rendezvous routing spreads arrivals by hash rather than the
    // old strict modulo round-robin, so short bursts onto one frontend are
    // expected below saturation; the shed threshold leaves room for them.
    config.net = qb_simnet::NetConfig::default();
    config.cache = CacheConfig::enabled();
    config.gossip = GossipConfig::enabled(4);
    config.admission = AdmissionConfig::enabled();
    config.admission.queue_capacity = 32;
    config.admission.window_size = 8;
    config.admission.max_windows_in_flight = 2;
    config.admission.degrade_threshold = SimDuration::from_millis(250);
    config.admission.shed_threshold = SimDuration::from_millis(1500);
    let mut qb = QueenBee::new(config).expect("valid config");
    for (i, page) in corpus.pages.iter().enumerate() {
        let peer = (10 + i % 18) as u64;
        qb.publish(peer, AccountId(corpus.creators[i]), page)
            .expect("publish");
    }
    qb.seal();
    qb.process_publish_events().expect("index");
    qb
}

fn trace(corpus: &Corpus, qps: f64, secs: u64) -> ArrivalTrace {
    ArrivalTrace::generate(
        corpus,
        &TraceConfig {
            seed: 0xE2E,
            duration: SimDuration::from_secs(secs),
            base_qps: qps,
            shape: RateShape::Constant,
            pool_size: 48,
            ..TraceConfig::default()
        },
    )
}

fn fresh_heavy() -> ReplayConfig {
    ReplayConfig {
        fresh_fraction: 0.9,
        ..ReplayConfig::default()
    }
}

/// Same corpus, same trace, fresh engine → bit-identical `LoadReport`,
/// including both histograms.
#[test]
fn open_loop_replay_is_deterministic() {
    let corpus = corpus(0xE2E, 20);
    let t = trace(&corpus, 40.0, 4);
    let mut a = open_loop_engine(&corpus, 0xE2E);
    let mut b = open_loop_engine(&corpus, 0xE2E);
    let ra = replay(&mut a, &t, &fresh_heavy()).expect("replay");
    let rb = replay(&mut b, &t, &fresh_heavy()).expect("replay");
    assert_eq!(ra, rb);
    assert!(ra.completed > 0);
}

/// Below saturation nothing is shed or degraded: every offered query
/// completes and the sojourn tail stays bounded.
#[test]
fn below_saturation_completes_everything() {
    let corpus = corpus(0xE2E, 20);
    let t = trace(&corpus, 20.0, 5);
    let mut qb = open_loop_engine(&corpus, 0xE2E);
    let report = replay(&mut qb, &t, &fresh_heavy()).expect("replay");
    assert_eq!(report.offered, t.len() as u64);
    assert_eq!(report.shed, 0, "no shedding below saturation");
    assert_eq!(report.completed, report.admitted);
    assert_eq!(report.completed, report.offered);
    assert!(
        report.p99() < SimDuration::from_secs(1),
        "p99 {} out of bounds",
        report.p99()
    );
}

/// A flash crowd far past capacity: the controller sheds, ingress queues
/// stay within their configured bound, and the fleet keeps completing
/// queries (goodput does not collapse to zero).
#[test]
fn overload_sheds_but_keeps_queues_bounded() {
    let corpus = corpus(0xE2E, 20);
    let t = ArrivalTrace::generate(
        &corpus,
        &TraceConfig {
            seed: 0xE2E,
            duration: SimDuration::from_secs(6),
            base_qps: 50.0,
            shape: RateShape::FlashCrowd {
                at: SimDuration::from_secs(2),
                duration: SimDuration::from_secs(2),
                multiplier: 20.0,
            },
            pool_size: 48,
            ..TraceConfig::default()
        },
    );
    let mut qb = open_loop_engine(&corpus, 0xE2E);
    let capacity = qb.config().admission.queue_capacity;
    let report = replay(&mut qb, &t, &fresh_heavy()).expect("replay");
    assert!(report.shed > 0, "flash crowd must trigger shedding");
    assert!(report.degraded > 0, "pressure must degrade Fresh queries");
    assert!(
        report.peak_queue_depth <= capacity,
        "queue depth {} exceeds capacity {}",
        report.peak_queue_depth,
        capacity
    );
    assert_eq!(report.completed, report.admitted);
    assert!(report.completed > report.offered / 4, "goodput collapsed");
}

/// The harness refuses to run without admission control, and enabling it
/// leaves the closed-loop paths untouched (same answers as a no-admission
/// engine).
#[test]
fn admission_gate_and_closed_loop_neutrality() {
    let corpus = corpus(0xE2E, 12);
    let mut plain = {
        let mut qb = open_loop_engine(&corpus, 0xE2E);
        // Rebuild without admission for the comparison engine.
        let mut config = qb.config().clone();
        config.admission = AdmissionConfig::default();
        drop(qb);
        qb = QueenBee::new(config).expect("valid config");
        for (i, page) in corpus.pages.iter().enumerate() {
            let peer = (10 + i % 18) as u64;
            qb.publish(peer, AccountId(corpus.creators[i]), page)
                .expect("publish");
        }
        qb.seal();
        qb.process_publish_events().expect("index");
        qb
    };
    let mut gated = open_loop_engine(&corpus, 0xE2E);

    let err = plain.serve_open_loop(vec![TimedRequest::new(
        SimDuration::ZERO,
        SearchRequest::new("anything"),
    )]);
    assert!(err.is_err(), "serve_open_loop needs admission enabled");

    // Closed-loop paths answer identically with and without admission.
    let query = corpus.pages[0].title.split_whitespace().next().unwrap();
    let req = || {
        SearchRequest::new(query)
            .top_k(5)
            .freshness(Freshness::CacheOk)
    };
    let a = plain.search_request(req()).expect("search");
    let b = gated.search_request(req()).expect("search");
    assert_eq!(a.hits, b.hits);
}
