//! Integration tests for the structured tracing subsystem (qb-trace wired
//! through the whole engine): a traced open-loop replay must record one
//! `query` span tree per completed query whose intervals reproduce the
//! LoadReport's sojourn/queue-wait accounting, tracing must be provably
//! free of side effects on the simulation, and the exported traces must be
//! byte-identical across identically-seeded runs.

use qb_chain::AccountId;
use qb_common::{SimDuration, SimInstant};
use qb_load::{replay, replay_traced, ArrivalTrace, RateShape, ReplayConfig, TraceConfig};
use qb_queenbee::{
    AdmissionConfig, CacheConfig, GossipConfig, QueenBee, QueenBeeConfig, RoutingPolicy,
    SearchRequest,
};
use qb_trace::{attribution, critical_path, to_chrome_trace, to_json, MetricsSnapshot};
use qb_workload::{Corpus, CorpusConfig, CorpusGenerator};

fn corpus(seed: u64, pages: usize) -> Corpus {
    let config = CorpusConfig {
        num_pages: pages,
        vocab_size: (pages * 12).max(500),
        avg_doc_len: 60,
        ..CorpusConfig::default()
    };
    CorpusGenerator::new(config).generate(&mut qb_common::DetRng::new(seed))
}

fn engine(corpus: &Corpus, seed: u64) -> QueenBee {
    let mut config = QueenBeeConfig::small();
    config.num_peers = 32;
    config.num_bees = 4;
    config.seed = seed;
    config.net = qb_simnet::NetConfig::default();
    config.cache = CacheConfig::enabled();
    config.gossip = GossipConfig::enabled(4);
    config.admission = AdmissionConfig::enabled();
    config.admission.queue_capacity = 32;
    config.admission.window_size = 8;
    config.admission.max_windows_in_flight = 2;
    config.admission.degrade_threshold = SimDuration::from_millis(250);
    config.admission.shed_threshold = SimDuration::from_millis(800);
    let mut qb = QueenBee::new(config).expect("valid config");
    for (i, page) in corpus.pages.iter().enumerate() {
        let peer = (10 + i % 18) as u64;
        qb.publish(peer, AccountId(corpus.creators[i]), page)
            .expect("publish");
    }
    qb.seal();
    qb.process_publish_events().expect("index");
    qb
}

fn trace(corpus: &Corpus, qps: f64, secs: u64) -> ArrivalTrace {
    ArrivalTrace::generate(
        corpus,
        &TraceConfig {
            seed: 0x7ACE,
            duration: SimDuration::from_secs(secs),
            base_qps: qps,
            shape: RateShape::Constant,
            pool_size: 48,
            ..TraceConfig::default()
        },
    )
}

fn replay_cfg() -> ReplayConfig {
    ReplayConfig {
        fresh_fraction: 0.9,
        ..ReplayConfig::default()
    }
}

/// One `query` root per completed query; its interval is the query's
/// sojourn and its `queue_wait` child the ingress wait, so the trace
/// reproduces the LoadReport's histograms exactly.
#[test]
fn traced_replay_records_one_tree_per_completed_query() {
    let corpus = corpus(0x7ACE, 20);
    let t = trace(&corpus, 40.0, 3);
    let mut qb = engine(&corpus, 0x7ACE);
    let (report, spans) = replay_traced(&mut qb, &t, &replay_cfg()).expect("replay");
    let queries: Vec<_> = spans.named("query").collect();
    assert_eq!(queries.len() as u64, report.completed);
    assert_eq!(
        spans.named("load.shed").count() as u64,
        report.shed,
        "one shed marker per shed arrival"
    );
    let mut sojourn = qb_common::LatencyHistogram::new();
    let mut queue_wait = qb_common::LatencyHistogram::new();
    for q in &queries {
        assert!(!q.detail.is_empty(), "query spans carry the query text");
        sojourn.record(q.duration());
        let waits: Vec<_> = spans
            .children(q.id)
            .filter(|c| c.name == "queue_wait")
            .collect();
        assert_eq!(waits.len(), 1);
        queue_wait.record(waits[0].duration());
        // The query ends with its service stage (fetch or cache_serve) or,
        // when per-link queueing was charged inside its slowest dependency,
        // with the split-off `net_queue` wait.
        let served = spans.children(q.id).any(|c| {
            (c.name == "fetch" || c.name == "cache_serve" || c.name == "net_queue")
                && c.end == q.end
        });
        let zero_service = waits[0].end == q.end;
        assert!(
            served || zero_service,
            "query {} has no service child",
            q.detail
        );
    }
    assert_eq!(sojourn, report.sojourn, "trace reproduces sojourns");
    assert_eq!(queue_wait, report.queue_wait, "trace reproduces waits");
}

/// Tracing is observationally free: the LoadReport of a traced replay is
/// byte-identical to an untraced one, and the unified metrics snapshot
/// (network, cache, gossip, query counters) matches counter for counter.
#[test]
fn tracing_never_perturbs_replay_or_metrics() {
    let corpus = corpus(0x7ACE, 20);
    let t = trace(&corpus, 40.0, 3);
    let mut plain = engine(&corpus, 0x7ACE);
    let mut traced = engine(&corpus, 0x7ACE);
    let report_plain = replay(&mut plain, &t, &replay_cfg()).expect("replay");
    let (report_traced, spans) = replay_traced(&mut traced, &t, &replay_cfg()).expect("replay");
    assert!(!spans.is_empty(), "tracing actually recorded");
    assert_eq!(report_plain, report_traced, "reports must be identical");
    assert_eq!(
        plain.metrics_snapshot(),
        traced.metrics_snapshot(),
        "stats surfaces must be identical"
    );
    assert!(
        !traced.tracing_enabled(),
        "replay_traced restores the switch"
    );
}

/// Same seed, same trace → byte-identical JSON and Chrome-trace exports.
#[test]
fn exports_are_deterministic() {
    let corpus = corpus(0x7ACE, 16);
    let t = trace(&corpus, 40.0, 2);
    let mut a = engine(&corpus, 0x7ACE);
    let mut b = engine(&corpus, 0x7ACE);
    let (_, ta) = replay_traced(&mut a, &t, &replay_cfg()).expect("replay");
    let (_, tb) = replay_traced(&mut b, &t, &replay_cfg()).expect("replay");
    assert_eq!(ta, tb);
    assert_eq!(to_json(&ta), to_json(&tb));
    assert_eq!(to_chrome_trace(&ta), to_chrome_trace(&tb));
}

/// The closed-loop path records a window span over its fetches and a
/// critical path that descends query → fetch, with the attribution summing
/// exactly to the root's duration.
#[test]
fn closed_loop_query_has_fetch_dominated_critical_path() {
    let corpus = corpus(0x7ACE, 16);
    let term = corpus.pages[0].title.split_whitespace().next().unwrap();
    // Rendezvous routing may land the query on a frontend whose origin peer
    // co-hosts the term's shard replica, making the fetch a free local read.
    // This test is about trace attribution, not placement: probe throwaway
    // engines for a frontend that actually reaches over the network and pin
    // the traced query there.
    let slot = (0..4)
        .find(|&s| {
            let mut probe = engine(&corpus, 0x7ACE);
            let r = probe
                .search_request(
                    SearchRequest::new(term)
                        .top_k(5)
                        .route(RoutingPolicy::Direct(s)),
                )
                .expect("probe search");
            r.trace.shard_fetch > SimDuration::ZERO
        })
        .expect("some frontend must fetch its shard over the network");
    let mut qb = engine(&corpus, 0x7ACE);
    qb.set_tracing(true);
    let response = qb
        .search_request(
            SearchRequest::new(term)
                .top_k(5)
                .route(RoutingPolicy::Direct(slot)),
        )
        .expect("search");
    assert!(response.latency > SimDuration::ZERO);
    let spans = qb.take_trace();
    let window = spans.named("window").next().expect("window span");
    assert!(window.start >= SimInstant::ZERO);
    let query = spans.named("query").next().expect("query tree");
    assert_eq!(query.duration(), response.latency);
    let path = critical_path(&spans, query.id);
    assert_eq!(path.first().map(|s| s.name), Some("query"));
    let attr = attribution(&spans, query.id);
    let total: SimDuration = attr.values().fold(SimDuration::ZERO, |a, &d| a + d);
    assert_eq!(total, query.duration(), "attribution covers the root");
    assert!(
        attr.contains_key("fetch"),
        "a cold fresh query must charge fetch time: {attr:?}"
    );
}

/// The metrics snapshot diffing isolates one replay's worth of counters.
#[test]
fn snapshot_diff_isolates_a_run() {
    let corpus = corpus(0x7ACE, 16);
    let t = trace(&corpus, 30.0, 2);
    let mut qb = engine(&corpus, 0x7ACE);
    let before = qb.metrics_snapshot();
    let report = replay(&mut qb, &t, &replay_cfg()).expect("replay");
    let after = qb.metrics_snapshot();
    let delta = after.diff_since(&before);
    assert!(delta.counter("net.rpcs") > 0, "replay issued rpcs");
    assert!(delta.counter("net.rpcs") <= after.counter("net.rpcs"));
    // Fold the run's LoadReport into a snapshot through the same interface.
    let run = MetricsSnapshot::collect(&[&report]);
    assert_eq!(run.counter("load.completed"), report.completed);
    assert_eq!(
        run.histogram("load.sojourn").map(|h| h.count()),
        Some(report.completed)
    );
}
