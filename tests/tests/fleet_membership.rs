//! Integration tests for the churn-aware, zone-aware gossip overlay (the
//! E12 acceptance surface): a joining frontend must warm itself from the
//! fleet by bootstrap anti-entropy (not the DHT), crashes must be detected
//! and evicted from the survivors' sample sets without ever serving stale
//! results, rejoins must be revived fleet-wide, zoned configs must keep
//! converging, and the compressed digests must cut steady-state digest
//! bytes against the full-digest protocol on the same workload.

use qb_chain::AccountId;
use qb_common::SimDuration;
use qb_dweb::WebPage;
use qb_queenbee::{CacheConfig, DigestMode, GossipConfig, QueenBee, QueenBeeConfig};
use qb_workload::{Corpus, CorpusConfig, CorpusGenerator, QueryWorkload, ZipfSampler};

fn corpus(seed: u64, pages: usize) -> Corpus {
    let config = CorpusConfig {
        num_pages: pages,
        vocab_size: (pages * 12).max(500),
        avg_doc_len: 60,
        ..CorpusConfig::default()
    };
    CorpusGenerator::new(config).generate(&mut qb_common::DetRng::new(seed))
}

fn churn_engine(frontends: usize, configure: impl FnOnce(&mut GossipConfig)) -> QueenBee {
    let mut config = QueenBeeConfig::small();
    config.num_peers = 40;
    config.num_bees = 4;
    config.seed = 0xC0FE;
    config.cache = CacheConfig::enabled();
    config.gossip = GossipConfig::enabled(frontends);
    configure(&mut config.gossip);
    QueenBee::new(config).expect("valid config")
}

fn publish_all(qb: &mut QueenBee, corpus: &Corpus) {
    for (i, page) in corpus.pages.iter().enumerate() {
        let peer = (20 + i % 14) as u64;
        qb.publish(peer, AccountId(corpus.creators[i]), page)
            .expect("publish");
    }
    qb.seal();
    qb.process_publish_events().expect("index");
}

fn page(name: &str, body: &str) -> WebPage {
    WebPage::new(name, format!("Title {name}"), body, vec![])
}

/// Serve a Zipf stream round-robin over the active fleet, advancing time so
/// gossip rounds fire. Returns `(dht_shard_fetches, full_cache_hits,
/// served)`.
fn drive(qb: &mut QueenBee, pool: &[String], stream: &[usize]) -> (u64, u64, u64) {
    let mut fetches = 0u64;
    let mut hits = 0u64;
    let mut served = 0u64;
    for (i, &q) in stream.iter().enumerate() {
        qb.advance_time(SimDuration::from_millis(50));
        let actives: Vec<usize> = (0..qb.num_frontends())
            .filter(|&f| qb.fleet().expect("fleet").is_active(f))
            .collect();
        let frontend = actives[i % actives.len()];
        let out = qb.search_from(frontend, &pool[q]).expect("query");
        fetches += out.shards_fetched as u64;
        if out.shards_fetched == 0 {
            hits += 1;
        }
        served += 1;
    }
    (fetches, hits, served)
}

fn zipf_stream(pool_len: usize, len: usize, seed: u64) -> Vec<usize> {
    let zipf = ZipfSampler::new(pool_len, 1.0);
    let mut rng = qb_common::DetRng::new(seed);
    (0..len).map(|_| zipf.sample(&mut rng)).collect()
}

/// The E12 join criterion at test scale: after the fleet reaches steady
/// state, a brand-new frontend joins, bootstraps by anti-entropy and — in
/// at most 3 gossip rounds — serves hot queries from cache without any
/// direct DHT warming.
#[test]
fn a_joined_frontend_warms_from_the_fleet_within_three_rounds() {
    let corpus = corpus(0x12A, 16);
    let mut qb = churn_engine(4, |_| {});
    publish_all(&mut qb, &corpus);
    let workload = QueryWorkload::new(&corpus);
    let pool = workload.generate_batch(&corpus, &mut qb_common::DetRng::new(0x12A), 24);
    let stream = zipf_stream(pool.len(), 120, 0x12AF);
    drive(&mut qb, &pool, &stream);

    let joined = qb.fleet_join().expect("join");
    for _ in 0..3 {
        qb.run_gossip_round(false);
    }
    // Probe with the Zipf head: the joiner must already hold those shards.
    let probes = zipf_stream(pool.len(), 20, 0x12AB);
    let mut hits = 0;
    for &q in &probes {
        let out = qb.search_from(joined, &pool[q]).expect("probe");
        if out.shards_fetched == 0 {
            hits += 1;
        }
    }
    assert!(
        hits as f64 >= 0.8 * probes.len() as f64,
        "joined frontend should serve >=80% of hot probes from cache, got {hits}/{}",
        probes.len()
    );
    assert_eq!(qb.freshness.stale_results, 0);
}

/// Crash two frontends mid-stream: the survivors keep serving (hashed
/// routing walks around the dead slots), detect the silence, evict the
/// members from their sample sets, and a republish during the outage never
/// leaks a stale result — not even after the crashed frontend rejoins.
#[test]
fn crashes_are_evicted_and_rejoins_never_serve_stale() {
    let corpus = corpus(0x12B, 14);
    let mut qb = churn_engine(4, |g| {
        g.liveness_timeout = SimDuration::from_millis(600);
    });
    publish_all(&mut qb, &corpus);
    let workload = QueryWorkload::new(&corpus);
    let pool = workload.generate_batch(&corpus, &mut qb_common::DetRng::new(0x12B), 20);
    let stream = zipf_stream(pool.len(), 60, 0x12BF);
    drive(&mut qb, &pool, &stream);

    qb.fleet_leave(1, false).expect("crash 1");
    qb.fleet_leave(3, false).expect("crash 3");
    // A republish the crashed frontends cannot observe.
    let victim = &corpus.pages[0];
    let updated = page(&victim.name, "completely fresh replacement body text");
    qb.publish(21, AccountId(corpus.creators[0]), &updated)
        .expect("republish");
    qb.seal();
    qb.process_publish_events().expect("reindex");

    // Survivors keep serving and evict the dead members.
    let (_, _, served) = drive(&mut qb, &pool, &zipf_stream(pool.len(), 40, 0x12BE));
    assert_eq!(served, 40);
    let stats = qb.gossip_stats().expect("fleet");
    assert_eq!(stats.crashes, 2);
    assert!(stats.evictions > 0, "silent members must be evicted");
    let fleet = qb.fleet().expect("fleet");
    let dead_peer = fleet.frontend_peer(1);
    let survivor = fleet.frontend(0).view().get(dead_peer);
    assert!(
        survivor.is_none_or(|m| !m.alive),
        "survivor 0 still believes the crashed frontend is alive"
    );

    // The rejoined frontend bootstraps fresh state; the version guard and
    // read-time checks keep the missed republish invisible.
    qb.fleet_rejoin(1).expect("rejoin");
    let out = qb
        .search_from(1, &format!("{} replacement", "fresh"))
        .or_else(|_| qb.search_from(1, &pool[0]))
        .expect("rejoined frontend serves");
    drop(out);
    drive(&mut qb, &pool, &zipf_stream(pool.len(), 20, 0x12BD));
    assert_eq!(
        qb.freshness.stale_results, 0,
        "stale result served after churn"
    );
}

/// Graceful leave: notified partners drop the member immediately, hashed
/// routing redistributes its load, and the fleet keeps converging.
#[test]
fn graceful_leave_redistributes_load() {
    let corpus = corpus(0x12C, 12);
    let mut qb = churn_engine(3, |_| {});
    publish_all(&mut qb, &corpus);
    let workload = QueryWorkload::new(&corpus);
    let pool = workload.generate_batch(&corpus, &mut qb_common::DetRng::new(0x12C), 16);
    drive(&mut qb, &pool, &zipf_stream(pool.len(), 30, 0x12CF));

    qb.fleet_leave(2, true).expect("leave");
    assert!(qb.search_from(2, &pool[0]).is_err(), "direct routing fails");
    let (_, _, served) = drive(&mut qb, &pool, &zipf_stream(pool.len(), 20, 0x12CE));
    assert_eq!(served, 20, "hashed routing walks around the departed slot");
    let stats = qb.gossip_stats().expect("fleet");
    assert_eq!(stats.leaves, 1);
    assert_eq!(qb.freshness.stale_results, 0);
}

/// Zone-aware sampling under a zoned latency model still converges the
/// fleet: every frontend ends up serving the Zipf head from cache.
#[test]
fn zoned_fleet_converges_with_biased_sampling() {
    let corpus = corpus(0x12D, 14);
    let mut config = QueenBeeConfig::small();
    config.num_peers = 40;
    config.num_bees = 4;
    config.seed = 0x12D;
    config.net = qb_simnet::NetConfig::zoned(2, 2_000, 40_000);
    config.cache = CacheConfig::enabled();
    config.gossip = GossipConfig::enabled_zoned(4, 2);
    config.gossip.cross_zone_probability = 0.2;
    let mut qb = QueenBee::new(config).expect("valid config");
    publish_all(&mut qb, &corpus);
    let workload = QueryWorkload::new(&corpus);
    let pool = workload.generate_batch(&corpus, &mut qb_common::DetRng::new(0x12D), 16);
    drive(&mut qb, &pool, &zipf_stream(pool.len(), 80, 0x12DF));
    // After convergence every frontend answers the hottest query from cache.
    for f in 0..4 {
        let out = qb.search_from(f, &pool[0]).expect("hot query");
        assert_eq!(
            out.shards_fetched, 0,
            "frontend {f} should hold the Zipf head after zoned gossip"
        );
    }
    assert_eq!(qb.freshness.stale_results, 0);
}

/// Delta digests must cut steady-state digest traffic on the exact same
/// workload the full-digest protocol runs, with identical fill outcomes
/// (hit rates) and zero staleness — the E12 compression criterion at test
/// scale.
#[test]
fn delta_digests_cut_steady_state_bytes_without_changing_outcomes() {
    let corpus = corpus(0x12E, 14);
    let run = |mode: DigestMode| {
        let mut qb = churn_engine(4, |g| {
            g.digest_mode = mode;
            g.anti_entropy_interval = SimDuration::from_secs(30);
        });
        publish_all(&mut qb, &corpus);
        let workload = QueryWorkload::new(&corpus);
        let pool = workload.generate_batch(&corpus, &mut qb_common::DetRng::new(0x12E), 16);
        // Converge first, then measure a steady window.
        drive(&mut qb, &pool, &zipf_stream(pool.len(), 60, 0x12EF));
        let before = qb.gossip_stats().expect("fleet").digest_bytes;
        let (_, hits, served) = drive(&mut qb, &pool, &zipf_stream(pool.len(), 40, 0x12EE));
        let after = qb.gossip_stats().expect("fleet");
        assert_eq!(after.stale_rejected + qb.freshness.stale_results, 0);
        (after.digest_bytes - before, hits as f64 / served as f64)
    };
    let (full_bytes, full_hit_rate) = run(DigestMode::Full);
    let (delta_bytes, delta_hit_rate) = run(DigestMode::Delta);
    assert!(
        full_bytes >= 3 * delta_bytes.max(1),
        "steady-state delta digests should be several times cheaper \
         ({delta_bytes} vs {full_bytes})"
    );
    assert!(
        (full_hit_rate - delta_hit_rate).abs() < 0.1,
        "compression must not change serving outcomes \
         ({full_hit_rate:.2} vs {delta_hit_rate:.2})"
    );
}
