//! Integration tests for the staged planner/executor query API: top-k and
//! pagination against the full ranked list, batch-vs-sequential result
//! equivalence and shard-fetch dedup on shared streams, explicit routing
//! policies, and the `MaxStaleness` freshness mode serving a within-bound
//! stale shard without a DHT trip.

use qb_chain::AccountId;
use qb_common::{DetRng, SimDuration};
use qb_queenbee::{
    CacheConfig, Freshness, GossipConfig, QueenBee, QueenBeeConfig, RoutingPolicy, SearchRequest,
    TermProvenance,
};
use qb_workload::{Corpus, CorpusConfig, CorpusGenerator, QueryWorkload, ZipfSampler};

fn corpus(seed: u64, pages: usize) -> Corpus {
    let config = CorpusConfig {
        num_pages: pages,
        vocab_size: (pages * 12).max(500),
        avg_doc_len: 60,
        ..CorpusConfig::default()
    };
    CorpusGenerator::new(config).generate(&mut DetRng::new(seed))
}

fn engine(cache: CacheConfig, seed: u64) -> QueenBee {
    let mut config = QueenBeeConfig::small();
    config.num_peers = 32;
    config.num_bees = 4;
    config.seed = seed;
    config.cache = cache;
    QueenBee::new(config).expect("valid config")
}

fn publish_all(qb: &mut QueenBee, corpus: &Corpus) {
    for (i, page) in corpus.pages.iter().enumerate() {
        let peer = (i % 20) as u64;
        qb.publish(peer, AccountId(corpus.creators[i]), page)
            .expect("publish");
    }
    qb.seal();
    qb.process_publish_events().expect("index");
}

fn page(name: &str, body: &str) -> qb_dweb::WebPage {
    qb_dweb::WebPage::new(name, format!("Title {name}"), body, vec![])
}

/// Top-k and pagination must be exact slices of the full ranked list:
/// stitching consecutive pages reproduces it, every page reports the same
/// total, and a page past the end is empty.
#[test]
fn top_k_and_pagination_agree_with_the_full_list() {
    let mut qb = engine(CacheConfig::default(), 0x7071);
    for i in 0..10u64 {
        qb.publish(
            1,
            AccountId(1_000 + i),
            &page(
                &format!("field/{i}"),
                &format!("meadow flowers unique{i} blossom"),
            ),
        )
        .unwrap();
    }
    qb.seal();
    qb.process_publish_events().unwrap();

    let full = qb
        .search_request(SearchRequest::new("meadow").top_k(100))
        .unwrap();
    assert_eq!(full.hits.len(), 10, "every page matches the shared term");
    assert_eq!(full.total_matches, 10);

    let mut stitched = Vec::new();
    for p in 0..4 {
        let resp = qb
            .search_request(SearchRequest::new("meadow").top_k(3).page(p))
            .unwrap();
        assert_eq!(resp.total_matches, full.total_matches);
        assert_eq!(resp.page, p);
        assert_eq!(resp.top_k, 3);
        stitched.extend(resp.hits);
    }
    assert_eq!(stitched, full.hits, "pages stitch back into the full list");
    let beyond = qb
        .search_request(SearchRequest::new("meadow").top_k(3).page(4))
        .unwrap();
    assert!(
        beyond.hits.is_empty(),
        "past the end is empty, not an error"
    );
    // The default request matches the engine's configured top_k.
    let default = qb.search_request(SearchRequest::new("meadow")).unwrap();
    assert_eq!(default.top_k, qb.config().top_k);
    assert_eq!(default.hits.len(), qb.config().top_k.min(10));
}

/// Executing the same Zipf stream in batch windows and sequentially must
/// produce byte-identical per-query result lists — with and without the
/// cache — while batching strictly reduces DHT shard fetches and total RPC
/// messages in the uncached configuration.
#[test]
fn batch_and_sequential_streams_are_byte_identical() {
    let corpus = corpus(0xBA7C, 24);
    let workload = QueryWorkload::new(&corpus);
    let pool = workload.generate_batch(&corpus, &mut DetRng::new(3), 30);
    let zipf = ZipfSampler::new(pool.len(), 1.0);
    let stream: Vec<usize> = {
        let mut rng = DetRng::new(4);
        (0..64).map(|_| zipf.sample(&mut rng)).collect()
    };
    const WINDOW: usize = 16;

    for cache in [CacheConfig::default(), CacheConfig::enabled()] {
        let cached = cache.enabled;
        let mut sequential = engine(cache.clone(), 0xBA7C);
        publish_all(&mut sequential, &corpus);
        let mut seq_responses = Vec::new();
        let mut seq_fetches = 0usize;
        let mut seq_messages = 0u64;
        for &q in &stream {
            let resp = sequential
                .search_request(SearchRequest::new(pool[q].as_str()))
                .unwrap();
            seq_fetches += resp.shards_fetched();
            seq_messages += resp.messages();
            seq_responses.push(resp);
        }

        let mut batched = engine(cache, 0xBA7C);
        publish_all(&mut batched, &corpus);
        let mut batch_responses = Vec::new();
        let mut batch_fetches = 0usize;
        let mut batch_messages = 0u64;
        for window in stream.chunks(WINDOW) {
            let requests: Vec<SearchRequest> = window
                .iter()
                .map(|&q| SearchRequest::new(pool[q].as_str()))
                .collect();
            for resp in batched.search_batch(requests).unwrap() {
                batch_fetches += resp.shards_fetched();
                batch_messages += resp.messages();
                batch_responses.push(resp);
            }
        }

        assert_eq!(seq_responses.len(), batch_responses.len());
        for (seq, batch) in seq_responses.iter().zip(&batch_responses) {
            assert_eq!(seq.hits, batch.hits, "query '{}' diverged", seq.query);
            assert_eq!(seq.total_matches, batch.total_matches);
        }
        if !cached {
            assert!(
                batch_fetches < seq_fetches,
                "batching must dedupe shard fetches ({batch_fetches} vs {seq_fetches})"
            );
            assert!(
                batch_messages < seq_messages,
                "batching must cut RPC messages ({batch_messages} vs {seq_messages})"
            );
        }
    }
}

/// A window of identical queries pays for each distinct term exactly once;
/// every other query in the window reuses the shards at zero message cost.
#[test]
fn batch_dedup_counts_match_distinct_terms() {
    let corpus = corpus(0xDED0, 16);
    let mut qb = engine(CacheConfig::default(), 0xDED0);
    publish_all(&mut qb, &corpus);
    let workload = QueryWorkload::new(&corpus);
    let query = workload
        .generate_batch(&corpus, &mut DetRng::new(5), 1)
        .remove(0);
    let distinct_terms = qb
        .search_request(SearchRequest::new(query.as_str()))
        .unwrap()
        .terms
        .len();

    const K: usize = 8;
    let responses = qb
        .search_batch(vec![SearchRequest::new(query.as_str()); K])
        .unwrap();
    let fetches: usize = responses.iter().map(|r| r.shards_fetched()).sum();
    let shared: usize = responses.iter().map(|r| r.batch_shared()).sum();
    assert_eq!(fetches, distinct_terms, "one DHT trip per distinct term");
    assert_eq!(shared, (K - 1) * distinct_terms, "the rest ride the window");
    let first = &responses[0];
    for resp in &responses[1..] {
        assert_eq!(resp.hits, first.hits, "every sharer gets the same list");
        assert_eq!(resp.messages(), 0, "sharers are charged no messages");
    }
}

/// Batch fetch sharing is scoped to the serving frontend: two frontends in
/// one window each pay their own DHT trip (moving shards between machines
/// is the gossip overlay's network-charged job, and a batch window must not
/// become a free side channel around it).
#[test]
fn batch_sharing_never_crosses_frontends() {
    let mut config = QueenBeeConfig::small();
    config.cache = CacheConfig::enabled();
    config.gossip = GossipConfig::fleet(2);
    let mut qb = QueenBee::new(config).unwrap();
    qb.publish(5, AccountId(1_000), &page("wiki/s", "scoped sharing test"))
        .unwrap();
    qb.seal();
    qb.process_publish_events().unwrap();

    let responses = qb
        .search_batch(vec![
            SearchRequest::new("scoped sharing").route(RoutingPolicy::Direct(0)),
            SearchRequest::new("scoped sharing").route(RoutingPolicy::Direct(1)),
        ])
        .unwrap();
    for (i, resp) in responses.iter().enumerate() {
        assert!(
            resp.shards_fetched() > 0,
            "frontend {i} must pay its own fetches"
        );
        assert_eq!(resp.batch_shared(), 0, "no free cross-frontend sharing");
        assert!(resp.messages() > 0);
    }
    assert_eq!(responses[0].hits, responses[1].hits);
}

/// Routing is explicit on the request: `Direct` addresses a frontend,
/// `HashPeer` routes by rendezvous hash over the live fleet, and both
/// reject configurations they cannot serve.
#[test]
fn routing_policies_are_explicit_and_validated() {
    let mut config = QueenBeeConfig::small();
    config.cache = CacheConfig::enabled();
    config.gossip = GossipConfig::fleet(3);
    let mut qb = QueenBee::new(config).unwrap();
    qb.publish(5, AccountId(1_000), &page("wiki/route", "routing policies"))
        .unwrap();
    qb.seal();
    qb.process_publish_events().unwrap();

    // Rendezvous routing is deterministic: warm the slot HashPeer(4) maps
    // to via Direct, and the hashed repeat is a result-cache hit.
    let slot = qb
        .route_frontend(&RoutingPolicy::HashPeer(4))
        .unwrap()
        .expect("fleet mode");
    let cold = qb
        .search_request(SearchRequest::new("routing").route(RoutingPolicy::Direct(slot)))
        .unwrap();
    assert!(cold.shards_fetched() > 0);
    let routed = qb
        .search_request(SearchRequest::new("routing").route(RoutingPolicy::HashPeer(4)))
        .unwrap();
    assert!(routed.result_cache_hit(), "hash lands on the warmed slot");
    // Any other frontend stays cold: no implicit sharing between them.
    let other_slot = (0..3).find(|s| *s != slot).unwrap();
    let other = qb
        .search_request(SearchRequest::new("routing").route(RoutingPolicy::Direct(other_slot)))
        .unwrap();
    assert!(!other.result_cache_hit());

    // Invalid routes fail the request (and the whole batch containing it).
    assert!(qb
        .search_request(SearchRequest::new("x").route(RoutingPolicy::Direct(9)))
        .is_err());
    let mut single = engine(CacheConfig::default(), 1);
    assert!(single
        .search_request(SearchRequest::new("x").route(RoutingPolicy::Direct(0)))
        .is_err());
}

/// `MaxStaleness` serves a version-superseded shard from the cache when it
/// is young enough — no DHT trip, results from the old version — while a
/// strict request refuses it, and `Fresh` bypasses even current entries.
#[test]
fn max_staleness_serves_a_within_bound_stale_shard_without_a_dht_trip() {
    let mut config = QueenBeeConfig::small();
    config.cache = CacheConfig::enabled();
    config.gossip = GossipConfig::fleet(2);
    let mut qb = QueenBee::new(config).unwrap();
    let creator = AccountId(1_000);
    qb.publish(5, creator, &page("news/today", "zebra headline coverage"))
        .unwrap();
    qb.seal();
    qb.process_publish_events().unwrap();

    // Frontend 1 warms its private cache on version 1.
    let warm = qb
        .search_request(SearchRequest::new("zebra").route(RoutingPolicy::Direct(1)))
        .unwrap();
    assert!(warm.shards_fetched() > 0);
    assert_eq!(warm.hits[0].version, 1);

    // Republish while frontend 1 is partitioned away: the writer's
    // invalidation cannot reach it, so its cache keeps the superseded
    // version-1 shard while the engine's version counter moves to 2. The
    // partition heals right after — what lingers is the missed
    // invalidation, not the outage.
    let frontend_peer = qb.fleet().unwrap().frontend_peer(1);
    qb.net.set_partition(frontend_peer, 9);
    qb.publish(5, creator, &page("news/today", "zebra exclusive update"))
        .unwrap();
    qb.seal();
    qb.process_publish_events().unwrap();
    qb.net.heal_all();
    qb.advance_time(SimDuration::from_millis(10));
    // An unrelated query re-warms the statistics record, leaving the
    // superseded "zebra" entries untouched.
    qb.search_request(SearchRequest::new("exclusive").route(RoutingPolicy::Direct(1)))
        .unwrap();

    // A bounded request serves the stale copy locally: zero messages.
    let stale = qb
        .search_request(
            SearchRequest::new("zebra")
                .route(RoutingPolicy::Direct(1))
                .freshness(Freshness::MaxStaleness(SimDuration::from_secs(60))),
        )
        .unwrap();
    assert_eq!(stale.messages(), 0, "no DHT trip under the bound");
    assert_eq!(stale.stale_served(), 1);
    assert_eq!(stale.hits[0].version, 1, "the superseded version serves");
    assert!(stale
        .provenance
        .iter()
        .any(|p| matches!(p, TermProvenance::StaleCache { .. })));

    // A bound tighter than the copy's age refuses it; the fallback fetch
    // digs up the current version instead.
    let tight = qb
        .search_request(
            SearchRequest::new("zebra")
                .route(RoutingPolicy::Direct(1))
                .freshness(Freshness::MaxStaleness(SimDuration::from_millis(1))),
        )
        .unwrap();
    assert_eq!(tight.stale_served(), 0, "out-of-bound copies never serve");
    assert!(tight.shards_fetched() > 0);
    assert_eq!(tight.hits[0].version, 2);

    // A strict request also serves version 2.
    let fresh = qb
        .search_request(SearchRequest::new("zebra").route(RoutingPolicy::Direct(1)))
        .unwrap();
    assert_eq!(fresh.hits[0].version, 2);

    // Fresh mode re-fetches even with a warm, current cache.
    let forced = qb
        .search_request(
            SearchRequest::new("zebra")
                .route(RoutingPolicy::Direct(1))
                .freshness(Freshness::Fresh),
        )
        .unwrap();
    assert!(!forced.result_cache_hit());
    assert!(forced.shards_fetched() > 0, "Fresh bypasses the warm cache");
    assert_eq!(forced.hits[0].version, 2);
}

/// The per-stage cost trace decomposes the served latency: network stages
/// carry simulated time, a result-cache hit collapses to the plan stage,
/// and ads can be suppressed per request.
#[test]
fn responses_carry_stage_traces_and_respect_the_ads_flag() {
    let mut qb = engine(CacheConfig::enabled(), 0x7ACE);
    qb.publish(1, AccountId(1_000), &page("shop/h", "buy artisanal honey"))
        .unwrap();
    qb.seal();
    qb.process_publish_events().unwrap();
    qb.register_advertiser(&qb_workload::AdSpec {
        advertiser: 5_000,
        keywords: vec![qb_index::Analyzer::stem("honey")],
        bid_per_click: 50,
        budget: 500,
    })
    .unwrap();

    let cold = qb
        .search_request(SearchRequest::new("artisanal honey"))
        .unwrap();
    assert!(cold.ad.is_some(), "matching campaign attaches by default");
    assert!(cold.trace.messages > 0);
    assert!(cold.trace.shard_fetch > SimDuration::ZERO);
    assert!(cold.trace.stats > SimDuration::ZERO);
    assert!(cold.trace.candidates_scored > 0);
    assert_eq!(
        cold.latency,
        cold.trace.shard_fetch.max(cold.trace.stats),
        "total latency is the parallel window over the network stages"
    );

    let warm = qb
        .search_request(SearchRequest::new("artisanal honey").ads(false))
        .unwrap();
    assert!(warm.result_cache_hit());
    assert!(warm.ad.is_none(), "ads(false) suppresses the campaign");
    assert_eq!(warm.trace.messages, 0);
    assert_eq!(warm.trace.plan, warm.latency, "a hit is pure plan time");
    assert_eq!(warm.hits, cold.hits);
}

/// The pipelined engine over a gossiping fleet: overlapping windows routed
/// across frontends return byte-identical hits to sequential execution,
/// never serve anything stale, and the window memo only dedupes *within* a
/// frontend (cross-frontend compute sharing is the gossip overlay's
/// network-charged job, not the pipeline's).
#[test]
fn pipelined_fleet_stream_is_byte_identical_and_fresh() {
    use qb_queenbee::PipelineConfig;
    let corpus = corpus(0xF1BE, 20);
    let workload = QueryWorkload::new(&corpus);
    let pool = workload.generate_batch(&corpus, &mut DetRng::new(6), 16);
    let zipf = ZipfSampler::new(pool.len(), 1.2);
    let stream: Vec<usize> = {
        let mut rng = DetRng::new(7);
        (0..48).map(|_| zipf.sample(&mut rng)).collect()
    };
    const FLEET: usize = 3;
    let fleet_engine = |seed: u64| {
        let mut config = QueenBeeConfig::small();
        config.num_peers = 32;
        config.num_bees = 4;
        config.seed = seed;
        config.cache = CacheConfig::enabled();
        config.gossip = GossipConfig::enabled(FLEET);
        let mut qb = QueenBee::new(config).unwrap();
        publish_all(&mut qb, &corpus);
        qb
    };
    let request = |i: usize, q: usize| {
        SearchRequest::new(pool[q].as_str()).route(RoutingPolicy::Direct(i % FLEET))
    };

    let mut sequential = fleet_engine(0xF1BE);
    let mut seq_hits = Vec::new();
    for (i, &q) in stream.iter().enumerate() {
        seq_hits.push(sequential.search_request(request(i, q)).unwrap().hits);
    }

    let mut pipelined = fleet_engine(0xF1BE);
    let requests: Vec<SearchRequest> = stream
        .iter()
        .enumerate()
        .map(|(i, &q)| request(i, q))
        .collect();
    let outcome = pipelined
        .search_pipelined(
            requests,
            PipelineConfig {
                window_size: 12,
                max_windows_in_flight: 3,
                ..PipelineConfig::default()
            },
        )
        .unwrap();
    assert_eq!(outcome.responses.len(), seq_hits.len());
    for (i, (resp, seq)) in outcome.responses.iter().zip(&seq_hits).enumerate() {
        assert_eq!(&resp.hits, seq, "query {i} diverged from sequential");
    }
    assert_eq!(pipelined.freshness.stale_results, 0, "nothing stale served");
    assert_eq!(
        sequential.freshness.stale_results, 0,
        "sequential reference is fresh too"
    );
    // The duplicate-heavy stream dedupes within frontends; the memo is
    // bounded by the genuinely distinct (frontend, query) computations.
    let report = outcome.report;
    assert!(report.memo_hits > 0, "duplicates must hit the memo");
    assert!(report.peak_windows_in_flight > 1, "windows must overlap");
    let stats = pipelined.query_stats();
    let scored_queries = outcome
        .responses
        .iter()
        .filter(|r| !r.result_cache_hit())
        .count();
    assert_eq!(
        stats.score_invocations + report.memo_hits,
        scored_queries as u64,
        "every non-result-cache query is either computed or memo-served"
    );
}

/// Determinism contract of the event-driven core: replaying the same
/// pipelined stream on a freshly built engine reproduces byte-identical
/// hits and the exact same scheduling report — for the fixed configuration
/// and for the self-steering one (whose back-off decisions depend only on
/// simulated measurements, never on host state).
#[test]
fn pipelined_reruns_are_byte_identical_even_when_self_steering() {
    use qb_queenbee::PipelineConfig;
    let corpus = corpus(0xDE7E, 18);
    let workload = QueryWorkload::new(&corpus);
    let pool = workload.generate_batch(&corpus, &mut DetRng::new(11), 14);
    let zipf = ZipfSampler::new(pool.len(), 1.2);
    let stream: Vec<String> = {
        let mut rng = DetRng::new(13);
        (0..40)
            .map(|_| pool[zipf.sample(&mut rng)].clone())
            .collect()
    };
    let run = |config: PipelineConfig| {
        let mut qb = engine(CacheConfig::default(), 0xDE7E);
        publish_all(&mut qb, &corpus);
        let requests: Vec<SearchRequest> = stream
            .iter()
            .enumerate()
            .map(|(i, q)| {
                SearchRequest::new(q.as_str()).route(RoutingPolicy::HashPeer((i % 20) as u64))
            })
            .collect();
        qb.search_pipelined(requests, config).unwrap()
    };
    for config in [
        PipelineConfig {
            window_size: 8,
            max_windows_in_flight: 3,
            ..PipelineConfig::default()
        },
        PipelineConfig {
            window_size: 8,
            max_windows_in_flight: 3,
            ..PipelineConfig::self_steering()
        },
    ] {
        let first = run(config);
        let second = run(config);
        assert_eq!(
            first.report, second.report,
            "scheduling must replay exactly"
        );
        assert_eq!(first.responses.len(), second.responses.len());
        for (i, (a, b)) in first.responses.iter().zip(&second.responses).enumerate() {
            assert_eq!(a.hits, b.hits, "query {i} hits diverged across reruns");
            assert_eq!(a.latency, b.latency, "query {i} latency diverged");
        }
    }
}
