//! Freshness (E3) and baseline-comparison integration tests: QueenBee's
//! publish-driven index reflects updates immediately, while crawler-driven
//! baselines lag until their next crawl.

use qb_baseline::{CentralizedConfig, CentralizedEngine, CrawlDoc, YacyConfig, YacyEngine};
use qb_common::{SimDuration, SimInstant};
use qb_integration::{page, publish_and_index, small_engine};
use qb_simnet::{NetConfig, SimNet};

fn crawl_doc(name: &str, version: u64, text: &str) -> CrawlDoc {
    CrawlDoc {
        name: name.to_string(),
        version,
        creator: 1,
        text: text.to_string(),
    }
}

#[test]
fn queenbee_serves_updates_immediately() {
    let mut qb = small_engine(10);
    publish_and_index(
        &mut qb,
        1,
        1_000,
        &page("news", "yesterday's story about turnips", &[]),
    );
    // Update: the page now covers a new topic.
    publish_and_index(
        &mut qb,
        1,
        1_000,
        &page("news", "todays exclusive about xylophones", &[]),
    );
    let out = qb.search(4, "xylophones").expect("search");
    assert_eq!(out.results.len(), 1);
    assert_eq!(out.results[0].version, 2);
    assert_eq!(qb.freshness.staleness_rate(), 0.0);
    // The stale term no longer matches the page's current version entry.
    let stale = qb.search(4, "turnips");
    match stale {
        Ok(out) => assert!(out.results.is_empty() || out.results[0].version == 2),
        Err(e) => assert!(matches!(e, qb_common::QbError::Query(_)) || e.is_availability()),
    }
}

#[test]
fn crawling_baselines_lag_until_next_crawl() {
    let now = SimInstant::ZERO;
    let v1 = vec![crawl_doc("news", 1, "yesterday's story about turnips")];
    let v2 = vec![crawl_doc("news", 2, "todays exclusive about xylophones")];

    // Centralized engine with an hourly crawl.
    let mut central = CentralizedEngine::new(CentralizedConfig {
        crawl_interval: SimDuration::from_secs(3_600),
        ..CentralizedConfig::default()
    });
    central.crawl(&v1, now);
    // The page updates 10 minutes later; the next crawl is not due.
    let t_update = now + SimDuration::from_secs(600);
    assert!(!central.maybe_crawl(&v2, t_update));
    let (results, _) = central.search("turnips", 1.0, t_update).expect("search");
    assert_eq!(results[0].version, 1, "centralized index is stale");
    // After the crawl interval it catches up.
    let t_later = now + SimDuration::from_secs(4_000);
    assert!(central.maybe_crawl(&v2, t_later));
    let (results, _) = central.search("xylophones", 1.0, t_later).expect("search");
    assert_eq!(results[0].version, 2);

    // YaCy-style engine behaves the same way.
    let mut net = SimNet::new(32, NetConfig::lan(), 5);
    let mut yacy = YacyEngine::new(YacyConfig {
        num_peers: 8,
        crawl_interval: SimDuration::from_secs(3_600),
        ..YacyConfig::default()
    });
    yacy.crawl(&v1, now);
    assert!(!yacy.maybe_crawl(&v2, t_update));
    let (results, _, _) = yacy.search(&mut net, 20, "turnips").expect("search");
    assert_eq!(results[0].version, 1);
    assert!(yacy.maybe_crawl(&v2, t_later));
    let (results, _, _) = yacy.search(&mut net, 20, "xylophones").expect("search");
    assert_eq!(results[0].version, 2);
}

#[test]
fn centralized_engine_fails_under_ddos_while_queenbee_keeps_serving() {
    // The centralized baseline collapses when the attack load exceeds its
    // capacity; QueenBee keeps answering because there is no single choke point.
    let mut central = CentralizedEngine::new(CentralizedConfig::default());
    central.crawl(
        &[crawl_doc("a", 1, "resilient decentralized content")],
        SimInstant::ZERO,
    );
    central.attack_load_qps = 10_000.0;
    assert!(central
        .search("decentralized", 5.0, SimInstant::ZERO)
        .is_err());

    let mut qb = small_engine(11);
    publish_and_index(
        &mut qb,
        1,
        1_000,
        &page("a", "resilient decentralized content", &[]),
    );
    // Take down a third of the peers (a DDoS can only hit so many devices).
    qb.net.fail_fraction(0.33, &[5]);
    let out = qb.search(5, "decentralized");
    assert!(out.is_ok(), "QueenBee should still answer: {out:?}");
}

#[test]
fn queenbee_survives_partitions_better_than_a_single_server() {
    let mut qb = small_engine(12);
    publish_and_index(
        &mut qb,
        1,
        1_000,
        &page("p", "partition tolerant content everywhere", &[]),
    );
    qb.net.partition_round_robin(2);
    // Query from both sides of the partition; at least one side must succeed
    // (replicas and caches exist on both sides or the query side).
    let side_a = qb.search(2, "partition");
    let side_b = qb.search(3, "partition");
    assert!(
        side_a.map(|o| !o.results.is_empty()).unwrap_or(false)
            || side_b.map(|o| !o.results.is_empty()).unwrap_or(false),
        "neither partition could answer the query"
    );
}
