//! Integration tests for the paper's research challenges: the incentive
//! scheme (challenge I) and the collusion / scraper attacks (challenge II).

use qb_chain::AccountId;
use qb_integration::{page, publish_and_index, small_engine};
use qb_queenbee::{BeeBehaviour, CollusionAttack, ScraperAttack};

#[test]
fn honest_economy_rewards_every_stakeholder_and_conserves_supply() {
    let mut qb = small_engine(20);
    for i in 0..5u64 {
        // Each creator writes genuinely different content (identical bodies
        // would be rejected by the near-duplicate defense, by design).
        publish_and_index(
            &mut qb,
            1 + i,
            1_000 + i,
            &page(
                &format!("site/{i}"),
                &format!("distinct article number {i} about topic{i} linking to the hub because it is useful"),
                &["site/hub"],
            ),
        );
    }
    publish_and_index(
        &mut qb,
        7,
        1_100,
        &page("site/hub", "the hub everyone references", &[]),
    );
    qb.run_rank_round().expect("rank");

    // Creators earned publish rewards; the hub creator also earned the
    // popularity reward; bees earned indexing + ranking bounties.
    for i in 0..5u64 {
        assert!(qb.chain.balance(AccountId(1_000 + i)) >= qb.config().chain.publish_reward);
    }
    assert!(
        qb.chain.balance(AccountId(1_100))
            > qb.config().chain.publish_reward + qb.config().chain.popularity_reward / 2
    );
    for bee in qb.bee_accounts() {
        assert!(qb.chain.balance(bee) > 0, "bee {bee:?} earned nothing");
    }
    assert_eq!(
        qb.chain.accounts().total_supply(),
        qb.config().chain.genesis_supply
    );
}

#[test]
fn colluding_minority_is_caught_flagged_and_slashed() {
    let mut qb = small_engine(21);
    // One of four bees colludes (quorum is 3, so it is always outvoted when
    // assigned together with two honest bees).
    qb.set_bee_behaviour(
        0,
        BeeBehaviour::Colluding {
            boost_pages: vec!["evil/spam".into()],
            boost_tf: 900,
            rank_factor: 40.0,
        },
    );
    let colluder_account = qb.bees()[0].account;
    let stake_before = qb.chain.reward_pool().stake_of(colluder_account);

    for i in 0..6u64 {
        publish_and_index(
            &mut qb,
            1 + i,
            1_000 + i,
            &page(
                &format!("honest/{i}"),
                "perfectly ordinary honest web content",
                &[],
            ),
        );
    }
    // The spam page never appears in results for honest content queries.
    let out = qb.search(3, "ordinary honest").expect("search");
    assert!(out.results.iter().all(|r| r.name != "evil/spam"));

    // The colluder was flagged whenever it was assigned, and slashed.
    let colluder = &qb.bees()[0];
    if colluder.times_flagged > 0 {
        assert!(qb.chain.reward_pool().stake_of(colluder_account) < stake_before);
    }
    // Honest bees were never flagged.
    for bee in qb.bees().iter().skip(1) {
        assert_eq!(bee.times_flagged, 0, "honest bee was wrongly flagged");
    }
}

#[test]
fn collusion_without_redundancy_poisons_the_index() {
    // With quorum = 1 there is no verification: a single colluding bee can
    // inject its spam postings — this is the "no defense" control group.
    let mut config = qb_queenbee::QueenBeeConfig::small();
    config.index_quorum = 1;
    config.seed = 22;
    let mut qb = qb_queenbee::QueenBee::new(config).unwrap();
    for i in 0..qb.bees().len() {
        qb.set_bee_behaviour(
            i,
            BeeBehaviour::Colluding {
                boost_pages: vec!["evil/spam".into()],
                boost_tf: 900,
                rank_factor: 40.0,
            },
        );
    }
    publish_and_index(
        &mut qb,
        1,
        1_000,
        &page("honest/page", "unique honest keyword sunflower", &[]),
    );
    let out = qb.search(3, "sunflower").expect("search");
    assert!(
        out.results.iter().any(|r| r.name == "evil/spam"),
        "without a quorum the spam injection should succeed"
    );
}

#[test]
fn scraper_attack_is_stopped_by_duplicate_detection() {
    let mut qb = small_engine(23);
    let victim = page(
        "blog/viral",
        &(0..120)
            .map(|i| format!("creativeword{} ", i % 30))
            .collect::<String>(),
        &[],
    );
    publish_and_index(&mut qb, 1, 1_000, &victim);

    let attack = ScraperAttack::new(6_666, 1);
    let reports = qb
        .run_scraper_attack(&attack, std::slice::from_ref(&victim))
        .expect("attack");
    assert!(!reports[0].accepted, "mirror should be rejected");
    assert_eq!(
        qb.chain.balance(AccountId(6_666)),
        0,
        "scraper earns nothing"
    );

    // Control: with the defense off the scraper collects publish rewards.
    let mut config = qb_queenbee::QueenBeeConfig::small();
    config.duplicate_detection = false;
    config.seed = 24;
    let mut qb2 = qb_queenbee::QueenBee::new(config).unwrap();
    publish_and_index(&mut qb2, 1, 1_000, &victim);
    let reports = qb2.run_scraper_attack(&attack, &[victim]).expect("attack");
    assert!(reports[0].accepted);
    assert!(qb2.chain.balance(AccountId(6_666)) > 0);
}

#[test]
fn collusion_attack_helper_scales_with_fraction() {
    let mut qb = small_engine(25);
    let attack = CollusionAttack::new(0.5, vec!["evil/spam".into()]);
    qb.apply_collusion(&attack);
    let colluders = qb.bees().iter().filter(|b| b.is_colluding()).count();
    assert_eq!(colluders, qb.bees().len() / 2);
}
