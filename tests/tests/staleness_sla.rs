//! The `MaxStaleness` SLA under E12-style churn: a frontend partitioned
//! away misses publish-path invalidations, and once the partition heals
//! its superseded cache entries may serve under a staleness bound. This
//! suite sweeps the bound and asserts the contract the freshness mode
//! sells:
//!
//! * every stale serve's age stays **within the configured bound** — the
//!   SLA itself, checked per response from the term provenance;
//! * a larger bound never serves *fewer* queries locally (hit rate is
//!   monotone in the bound) and never issues *more* DHT fetches;
//! * a zero-tolerance sweep (`CacheOk` strictness) serves nothing stale
//!   at all.

use qb_chain::AccountId;
use qb_common::SimDuration;
use qb_queenbee::{
    CacheConfig, Freshness, GossipConfig, QueenBee, QueenBeeConfig, RoutingPolicy, SearchRequest,
    SearchResponse, TermProvenance,
};

const FLEET: usize = 3;
/// The frontend that gets partitioned away from every republish.
const LAGGER: usize = 2;
const PAGES: usize = 4;

fn story_term(p: usize) -> &'static str {
    ["storyalpha", "storybeta", "storygamma", "storydelta"][p]
}

fn page(p: usize, version_tag: usize) -> qb_dweb::WebPage {
    qb_dweb::WebPage::new(
        format!("news/{p}"),
        format!("Story {p}"),
        format!(
            "{} rolling coverage edition{version_tag} shared filler words",
            story_term(p)
        ),
        vec![],
    )
}

fn fleet_engine() -> QueenBee {
    let mut config = QueenBeeConfig::small();
    config.num_peers = 24;
    config.num_bees = 4;
    config.seed = 0x51A;
    config.cache = CacheConfig::enabled();
    // Fleet mode without the gossip exchange: staleness must come from the
    // missed invalidation alone, not race a gossip fill that would repair
    // the lagging frontend mid-measurement.
    config.gossip = GossipConfig::fleet(FLEET);
    QueenBee::new(config).expect("valid config")
}

/// Ages of the stale serves in one response, asserted against the bound.
fn stale_ages(response: &SearchResponse) -> Vec<SimDuration> {
    response
        .provenance
        .iter()
        .filter_map(|p| match p {
            TermProvenance::StaleCache { age } => Some(*age),
            _ => None,
        })
        .collect()
}

struct SweepOutcome {
    stale_serves: u64,
    dht_fetches: u64,
    local_serves: u64,
    queries: u64,
    max_age_over_bound: bool,
    stale_results: u64,
}

/// Replay the identical churn scenario under one freshness mode: warm the
/// lagging frontend, then run rounds of (partition → republish → heal →
/// query) so its cache accumulates superseded entries of growing age.
fn run_sweep(freshness: Freshness) -> SweepOutcome {
    let mut qb = fleet_engine();
    for p in 0..PAGES {
        qb.publish(10, AccountId(1_000 + p as u64), &page(p, 0))
            .expect("publish");
    }
    qb.seal();
    qb.process_publish_events().expect("index");

    // Warm the lagging frontend on every story at version 1.
    for p in 0..PAGES {
        let out = qb
            .search_request(SearchRequest::new(story_term(p)).route(RoutingPolicy::Direct(LAGGER)))
            .expect("warm query");
        assert!(!out.hits.is_empty());
    }

    let lagger_peer = LAGGER as u64;
    let mut outcome = SweepOutcome {
        stale_serves: 0,
        dht_fetches: 0,
        local_serves: 0,
        queries: 0,
        max_age_over_bound: false,
        stale_results: 0,
    };
    for round in 0..PAGES {
        // The lagging frontend drops off the network; a story is
        // republished while it cannot observe the invalidation.
        qb.net.set_partition(lagger_peer, 9);
        qb.advance_time(SimDuration::from_secs(5));
        qb.publish(10, AccountId(1_000 + round as u64), &page(round, round + 1))
            .expect("republish");
        qb.seal();
        qb.process_publish_events().expect("reindex");
        qb.advance_time(SimDuration::from_secs(5));
        qb.net.set_partition(lagger_peer, 0);

        // Healed: every story is queried at the lagging frontend under the
        // swept freshness mode.
        for p in 0..PAGES {
            let response = qb
                .search_request(
                    SearchRequest::new(story_term(p))
                        .route(RoutingPolicy::Direct(LAGGER))
                        .freshness(freshness),
                )
                .expect("bounded query");
            outcome.queries += 1;
            let ages = stale_ages(&response);
            if let Freshness::MaxStaleness(bound) = freshness {
                if ages.iter().any(|age| *age > bound) {
                    outcome.max_age_over_bound = true;
                }
            } else {
                assert!(ages.is_empty(), "strict modes never serve stale");
            }
            outcome.stale_serves += ages.len() as u64;
            let fetched = response.shards_fetched() as u64;
            outcome.dht_fetches += fetched;
            if fetched == 0 {
                outcome.local_serves += 1;
            }
        }
    }
    outcome.stale_results = qb.freshness.stale_results;
    outcome
}

#[test]
fn stale_serves_stay_within_the_configured_bound() {
    // Bounds bracketing the scenario's entry ages (first query round sees
    // ~10s-old superseded entries, later rounds up to ~40s).
    let bounds = [5u64, 25, 1_000];
    let mut previous: Option<SweepOutcome> = None;
    for &secs in &bounds {
        let bound = SimDuration::from_secs(secs);
        let outcome = run_sweep(Freshness::MaxStaleness(bound));
        assert!(
            !outcome.max_age_over_bound,
            "SLA violated at bound {secs}s: a stale serve exceeded its bound"
        );
        assert_eq!(outcome.queries, (PAGES * PAGES) as u64);
        if let Some(prev) = &previous {
            assert!(
                outcome.stale_serves >= prev.stale_serves,
                "a larger bound must never serve less stale data \
                 ({} vs {} at {secs}s)",
                outcome.stale_serves,
                prev.stale_serves
            );
            assert!(
                outcome.dht_fetches <= prev.dht_fetches,
                "a larger bound must never fetch more \
                 ({} vs {} at {secs}s)",
                outcome.dht_fetches,
                prev.dht_fetches
            );
            assert!(
                outcome.local_serves >= prev.local_serves,
                "hit rate must be monotone in the bound"
            );
        }
        previous = Some(outcome);
    }
    let widest = previous.expect("swept");
    assert!(
        widest.stale_serves > 0,
        "the widest bound must actually exercise stale serving"
    );
    assert!(
        widest.stale_results > 0,
        "deliberately served stale shards must show up in the freshness probe"
    );

    // The tight 5s bound can never serve the ≥10s-old superseded entries.
    let tight = run_sweep(Freshness::MaxStaleness(SimDuration::from_secs(5)));
    assert_eq!(tight.stale_serves, 0);
    assert_eq!(tight.stale_results, 0);
}

#[test]
fn strict_freshness_under_the_same_churn_never_serves_stale() {
    let outcome = run_sweep(Freshness::CacheOk);
    assert_eq!(outcome.stale_serves, 0);
    assert_eq!(
        outcome.stale_results, 0,
        "CacheOk version checks must purge every superseded entry"
    );
    // Strictness costs fetches: the lagging frontend re-reads every
    // republished story through the DHT.
    assert!(outcome.dht_fetches > 0);
}
