//! Integration tests of the substrate stack below the engine: DHT + storage +
//! chain + distributed index working together under churn.

use qb_chain::{AccountId, Blockchain, Call, ChainConfig};
use qb_common::{Cid, DhtKey, SimInstant};
use qb_dht::{DhtConfig, DhtNetwork};
use qb_index::{DistributedIndex, IndexStats, ShardEntry, ShardPosting};
use qb_simnet::{NetConfig, SimNet};
use qb_storage::{StorageConfig, StorageNetwork};

fn stack(n: usize, seed: u64) -> (SimNet, DhtNetwork, StorageNetwork) {
    let mut net = SimNet::new(n, NetConfig::lan(), seed);
    let dht = DhtNetwork::build(&mut net, DhtConfig::small());
    let storage = StorageNetwork::new(n, StorageConfig::small());
    (net, dht, storage)
}

#[test]
fn distributed_index_survives_moderate_churn() {
    let (mut net, mut dht, mut storage) = stack(48, 1);
    let dist = DistributedIndex::new();
    // Write shards for ten terms from different peers.
    for i in 0..10u64 {
        let mut shard = ShardEntry::empty(&format!("term{i}"));
        shard.version = 1;
        shard.upsert(ShardPosting {
            doc_id: i,
            term_freq: 2,
            doc_len: 40,
            name: format!("page{i}"),
            version: 1,
            creator: 1,
        });
        dist.write_shard(&mut net, &mut dht, &mut storage, i % 20, &shard)
            .unwrap();
    }
    // A quarter of the peers churn out.
    net.fail_fraction(0.25, &[]);
    // Every shard is still readable from some online peer.
    let mut readable = 0;
    for i in 0..10u64 {
        let mut reader = (30 + i) % 48;
        while !net.is_online(reader) {
            reader = (reader + 1) % 48;
        }
        let (shard, _) = dist
            .read_shard(
                &mut net,
                &mut dht,
                &mut storage,
                reader,
                &format!("term{i}"),
            )
            .unwrap();
        if shard.doc_freq() == 1 {
            readable += 1;
        }
    }
    assert!(
        readable >= 8,
        "only {readable}/10 shards survived 25% churn"
    );
}

#[test]
fn dht_records_and_storage_objects_share_the_same_key_space() {
    let (mut net, mut dht, mut storage) = stack(32, 2);
    let data = b"an object whose provider record lives at its cid".to_vec();
    let (obj, _) = storage.put_object(&mut net, &mut dht, 3, &data).unwrap();
    // The provider record is stored under the cid-derived DHT key and can be
    // found by any peer.
    let (providers, _, _) = dht
        .get_providers(&mut net, 17, obj.root.to_dht_key())
        .unwrap();
    assert!(!providers.is_empty());
    // A plain record under an unrelated key does not collide.
    let key = DhtKey::for_term("unrelated");
    dht.put_record(&mut net, 5, key, b"x".to_vec(), 1).unwrap();
    assert_ne!(key, obj.root.to_dht_key());
}

#[test]
fn chain_registry_and_storage_stay_consistent() {
    let (mut net, mut dht, mut storage) = stack(24, 3);
    let mut chain = Blockchain::new(ChainConfig::default());
    // Register 20 pages whose contents live in storage.
    let mut cids = Vec::new();
    for i in 0..20u64 {
        let body = format!("<html>page body {i}</html>");
        let (obj, _) = storage
            .put_object(&mut net, &mut dht, i % 20, body.as_bytes())
            .unwrap();
        cids.push((format!("page{i}"), obj.root, body));
        chain.submit_call(
            AccountId(100 + i),
            Call::PublishPage {
                name: format!("page{i}"),
                cid: obj.root,
                out_links: vec![],
            },
        );
    }
    chain.seal_block(SimInstant::ZERO);
    assert_eq!(chain.publish_registry().len(), 20);
    // Every registry entry's cid resolves to the exact registered bytes.
    for (name, cid, body) in &cids {
        let rec = chain.publish_registry().get(name).unwrap();
        assert_eq!(rec.cid, *cid);
        let (bytes, _) = storage.get_object(&mut net, &mut dht, 21, *cid).unwrap();
        assert_eq!(bytes, body.as_bytes());
    }
    assert!(chain.verify_integrity().is_ok());
}

#[test]
fn index_stats_record_converges_to_latest_version() {
    let (mut net, mut dht, mut storage) = stack(24, 4);
    let _ = &mut storage;
    let dist = DistributedIndex::new();
    for v in 1..=5u64 {
        let stats = IndexStats {
            num_docs: v * 10,
            total_len: v * 1000,
            version: v,
        };
        dist.write_stats(&mut net, &mut dht, v % 10, &stats)
            .unwrap();
    }
    let (read, _) = dist.read_stats(&mut net, &mut dht, 15).unwrap();
    assert_eq!(read.version, 5);
    assert_eq!(read.num_docs, 50);
}

#[test]
fn content_addressing_is_end_to_end_tamper_evident() {
    let (mut net, mut dht, mut storage) = stack(24, 5);
    let original = b"the original, signed-by-hash content".to_vec();
    let (obj, _) = storage
        .put_object(&mut net, &mut dht, 0, &original)
        .unwrap();
    // An attacker who controls a replica cannot forge content for the same cid.
    for holder in storage.pinned_holders(&obj.root) {
        storage.corrupt_pinned(holder, &obj.root, b"forged content".to_vec());
    }
    let result = storage.get_object(&mut net, &mut dht, 12, obj.root);
    match result {
        Ok((bytes, _)) => assert_eq!(bytes, original, "only the original may ever be served"),
        Err(e) => assert!(matches!(e, qb_common::QbError::IntegrityViolation { .. })),
    }
    // Re-publishing different bytes always yields a different root cid, so an
    // attacker cannot squat the original's identity.
    let (forged_obj, _) = storage
        .put_object(&mut net, &mut dht, 1, b"forged content")
        .unwrap();
    assert_ne!(forged_obj.root, obj.root);
    let _ = Cid::for_data(&original);
}
