//! Integration tests for the qb-gossip overlay (the E10 acceptance
//! criteria): gossip must converge the fleet's hot sets and save DHT shard
//! fetches, a republish racing a gossip round must never let a stale shard
//! serve, anti-entropy must reconcile a frontend across a `qb-simnet`
//! partition + heal, warm-start snapshots must pre-fill a restarted
//! frontend, and adaptive TTLs must follow observed republish rates.

use qb_chain::AccountId;
use qb_common::SimDuration;
use qb_dweb::WebPage;
use qb_index::Analyzer;
use qb_queenbee::{CacheConfig, GossipConfig, QueenBee, QueenBeeConfig};
use qb_workload::{Corpus, CorpusConfig, CorpusGenerator, QueryWorkload, ZipfSampler};

fn corpus(seed: u64, pages: usize) -> Corpus {
    let config = CorpusConfig {
        num_pages: pages,
        vocab_size: (pages * 12).max(500),
        avg_doc_len: 60,
        ..CorpusConfig::default()
    };
    CorpusGenerator::new(config).generate(&mut qb_common::DetRng::new(seed))
}

fn fleet_engine(frontends: usize, gossip_on: bool, seed: u64) -> QueenBee {
    let mut config = QueenBeeConfig::small();
    config.num_peers = 32;
    config.num_bees = 4;
    config.seed = seed;
    config.cache = CacheConfig::enabled();
    config.gossip = if gossip_on {
        GossipConfig::enabled(frontends)
    } else {
        GossipConfig::fleet(frontends)
    };
    QueenBee::new(config).expect("valid config")
}

fn publish_all(qb: &mut QueenBee, corpus: &Corpus) {
    for (i, page) in corpus.pages.iter().enumerate() {
        let peer = (10 + i % 18) as u64;
        qb.publish(peer, AccountId(corpus.creators[i]), page)
            .expect("publish");
    }
    qb.seal();
    qb.process_publish_events().expect("index");
}

fn page(name: &str, body: &str) -> WebPage {
    WebPage::new(name, format!("Title {name}"), body, vec![])
}

/// One frontend's traffic converges the whole fleet: after gossip rounds,
/// every other frontend answers the hot queries without a single DHT shard
/// fetch, with identical results.
#[test]
fn gossip_converges_hot_sets_across_the_fleet() {
    let corpus = corpus(0x60A, 20);
    let mut qb = fleet_engine(4, true, 0x60A);
    publish_all(&mut qb, &corpus);
    let workload = QueryWorkload::new(&corpus);
    let hot = workload.generate_batch(&corpus, &mut qb_common::DetRng::new(3), 6);

    // Only frontend 0 sees traffic; rounds fire as time advances.
    let mut reference = Vec::new();
    for q in &hot {
        reference.push(qb.search_from(0, q).expect("search"));
        qb.advance_time(SimDuration::from_millis(250));
    }
    qb.run_gossip_round(false);

    for frontend in 1..4 {
        for (q, reference) in hot.iter().zip(&reference) {
            let out = qb.search_from(frontend, q).expect("warmed search");
            assert_eq!(
                out.shards_fetched, 0,
                "frontend {frontend} had to fetch for '{q}' despite gossip"
            );
            assert_eq!(out.results, reference.results, "converged answers match");
        }
    }
    let stats = qb.gossip_stats().expect("gossip enabled");
    assert!(stats.shards_accepted > 0);
    assert_eq!(stats.stale_rejected, 0);
    assert_eq!(qb.freshness.stale_results, 0);
}

/// The E10 shape at test scale: a shared Zipf stream over the fleet, gossip
/// on vs off, >= 30% fewer aggregate DHT shard fetches and zero staleness.
#[test]
fn gossip_saves_dht_fetches_on_a_shared_zipf_stream() {
    let corpus = corpus(0x60B, 24);
    let workload = QueryWorkload::new(&corpus);
    let pool = workload.generate_batch(&corpus, &mut qb_common::DetRng::new(1), 30);
    let zipf = ZipfSampler::new(pool.len(), 1.0);
    let stream: Vec<usize> = {
        let mut rng = qb_common::DetRng::new(2);
        (0..160).map(|_| zipf.sample(&mut rng)).collect()
    };

    let run = |gossip_on: bool| -> (u64, u64) {
        let mut qb = fleet_engine(4, gossip_on, 0x60B);
        publish_all(&mut qb, &corpus);
        let mut fetches = 0u64;
        for (i, &q) in stream.iter().enumerate() {
            qb.advance_time(SimDuration::from_millis(60));
            let out = qb.search_from(i % 4, &pool[q]).expect("search");
            fetches += out.shards_fetched as u64;
        }
        (fetches, qb.freshness.stale_results)
    };

    let (off_fetches, off_stale) = run(false);
    let (on_fetches, on_stale) = run(true);
    assert_eq!(off_stale, 0);
    assert_eq!(on_stale, 0, "gossip must never introduce staleness");
    assert!(
        (on_fetches as f64) <= 0.7 * off_fetches as f64,
        "gossip must save >=30% of DHT shard fetches ({on_fetches} vs {off_fetches})"
    );
}

/// A republish races a gossip round across a partition: the partitioned
/// frontend keeps (and later advertises) the stale shard, but the version
/// guard rejects it everywhere and nothing stale is ever served.
#[test]
fn republish_racing_a_gossip_round_never_serves_stale() {
    let mut qb = fleet_engine(3, true, 0x60C);
    let creator = AccountId(1_000);
    qb.publish(
        10,
        creator,
        &page("news/today", "glowworm headline coverage"),
    )
    .expect("publish");
    qb.seal();
    qb.process_publish_events().expect("index");
    let term = Analyzer::stem("glowworm");

    // Warm every frontend on v1, then cut frontend 2 off.
    for f in 0..3 {
        let out = qb.search_from(f, "glowworm").expect("warm");
        assert_eq!(out.results[0].version, 1);
    }
    let cut_peer = qb.fleet().unwrap().frontend_peer(2);
    qb.net.set_partition(cut_peer, 9);

    // Republish while frontend 2 cannot observe it.
    qb.publish(
        10,
        creator,
        &page("news/today", "glowworm exclusive update"),
    )
    .expect("republish");
    qb.seal();
    qb.process_publish_events().expect("reindex");

    // Frontends 0/1 observed the publish-path invalidation; frontend 2 still
    // holds the stale v1 shard.
    let fleet = qb.fleet().unwrap();
    assert_eq!(fleet.frontend(0).cache().cached_shard_version(&term), None);
    assert_eq!(
        fleet.frontend(2).cache().cached_shard_version(&term),
        Some(1),
        "partitioned frontend keeps the stale copy"
    );
    assert_eq!(fleet.frontend(1).known.get(&term), 2);

    // The partition heals and a gossip round races the republish: the stale
    // v1 held by frontend 2 is the only circulating copy of the term, and
    // the version guard must reject it at every receiver.
    qb.net.heal_all();
    qb.run_gossip_round(false);
    let stats = qb.gossip_stats().unwrap();
    assert!(
        stats.stale_rejected > 0,
        "the version guard should have rejected the stale v1 fill"
    );
    let fleet = qb.fleet().unwrap();
    for f in 0..2 {
        assert_eq!(
            fleet.frontend(f).cache().cached_shard_version(&term),
            None,
            "frontend {f} must not have accepted the stale fill"
        );
    }

    // Every frontend now serves v2 (re-fetching through the DHT where
    // needed), and nothing stale was ever served.
    for f in 0..3 {
        let out = qb.search_from(f, "glowworm").expect("post-heal search");
        assert_eq!(out.results[0].version, 2, "frontend {f} must serve v2");
    }
    assert_eq!(qb.freshness.stale_results, 0, "no stale result ever served");
}

/// Anti-entropy after a partition heal: a frontend that missed all gossip
/// while partitioned reconciles through a full-digest round and then serves
/// the fleet's working set without DHT fetches.
#[test]
fn anti_entropy_recovers_a_partitioned_frontend() {
    let corpus = corpus(0x60D, 16);
    let mut qb = fleet_engine(3, true, 0x60D);
    publish_all(&mut qb, &corpus);
    let workload = QueryWorkload::new(&corpus);
    let hot = workload.generate_batch(&corpus, &mut qb_common::DetRng::new(5), 5);

    // Frontend 2 is partitioned away before any traffic flows.
    let cut_peer = qb.fleet().unwrap().frontend_peer(2);
    qb.net.set_partition(cut_peer, 7);
    for q in &hot {
        qb.search_from(0, q).expect("search");
        qb.advance_time(SimDuration::from_millis(250));
    }
    let failed_during_partition = qb.gossip_stats().unwrap().failed_exchanges;
    assert!(
        failed_during_partition > 0,
        "exchanges with the partitioned frontend must fail"
    );

    // Heal and let an anti-entropy round reconcile the fleet.
    qb.net.heal_all();
    qb.run_gossip_round(true);
    assert!(qb.gossip_stats().unwrap().anti_entropy_rounds >= 1);
    for q in &hot {
        let out = qb.search_from(2, q).expect("reconciled search");
        assert_eq!(
            out.shards_fetched, 0,
            "anti-entropy should have warmed frontend 2 for '{q}'"
        );
    }
    assert_eq!(qb.freshness.stale_results, 0);
}

/// Warm-start persistence: a restarted engine imports the previous
/// session's hot set and its first queries skip the cold-start penalty.
#[test]
fn warm_start_snapshot_prefills_the_next_session() {
    let corpus = corpus(0x60E, 12);
    let build = |seed| {
        let mut qb = fleet_engine(2, true, seed);
        publish_all(&mut qb, &corpus);
        qb
    };
    let workload = QueryWorkload::new(&corpus);
    let hot = workload.generate_batch(&corpus, &mut qb_common::DetRng::new(8), 4);

    let mut first = build(0x60E);
    let mut cold_fetches = 0usize;
    for q in &hot {
        cold_fetches += first.search_from(0, q).expect("search").shards_fetched;
    }
    assert!(cold_fetches > 0);
    let snapshot = first.export_hot_set(0, 64).expect("fleet frontend 0");

    // "Restart": an identical deployment, pre-filled from the snapshot.
    let mut restarted = build(0x60E);
    let admitted = restarted.import_hot_set(0, &snapshot).expect("import");
    assert!(admitted > 0);
    for q in &hot {
        let out = restarted.search_from(0, q).expect("warm search");
        assert_eq!(out.shards_fetched, 0, "'{q}' should be pre-filled");
    }
    assert_eq!(restarted.freshness.stale_results, 0);
}

/// Adaptive TTLs end to end: an archival term outlives the global shard TTL
/// (it gets the ceiling), while a hot, frequently-republished term expires
/// on its adapted (shorter) schedule. With the policy off, the global knob
/// applies to both.
#[test]
fn adaptive_ttls_follow_republish_rates_end_to_end() {
    let run = |adaptive: bool| -> (usize, usize) {
        let mut config = QueenBeeConfig::small();
        config.cache = CacheConfig::enabled();
        config.cache.adaptive_ttl = adaptive;
        let mut qb = QueenBee::new(config).expect("valid config");
        let creator = AccountId(1_000);
        qb.publish(
            1,
            creator,
            &page("wiki/archive", "permafrost archival content"),
        )
        .expect("publish");
        qb.publish(1, creator, &page("news/live", "volcanic breaking ticker"))
            .expect("publish");
        qb.seal();
        qb.process_publish_events().expect("index");
        // The live page republishes every 60s; the archive never changes.
        for i in 0..4 {
            qb.advance_time(SimDuration::from_secs(60));
            qb.publish(
                1,
                creator,
                &page("news/live", &format!("volcanic ticker {i}")),
            )
            .expect("republish");
            qb.seal();
            qb.process_publish_events().expect("reindex");
        }
        // Warm both terms, then wait past the global 600s shard TTL (but
        // inside the 1800s adaptive ceiling).
        qb.search(3, "permafrost volcanic").expect("warm");
        qb.advance_time(SimDuration::from_secs(700));
        // Distinct queries sharing the terms probe the shard tier directly
        // (the result tier expired long ago).
        let archive = qb.search(3, "permafrost archival").expect("archive");
        let live = qb.search(3, "volcanic ticker").expect("live");
        (archive.shard_cache_hits, live.shard_cache_hits)
    };

    let (archive_hits_on, _live) = run(true);
    assert_eq!(
        archive_hits_on, 1,
        "adaptive: the never-republished term outlives the global TTL"
    );
    let (archive_hits_off, _) = run(false);
    assert_eq!(
        archive_hits_off, 0,
        "global knob: the archival term expired with everything else"
    );
}

/// The writer path's shard-tier reuse must not regress index correctness:
/// interleaved republishes and fresh publishes keep serving exact, fresh
/// results while the indexing path hits its cache.
#[test]
fn writer_path_cache_keeps_index_correct_under_republish_storm() {
    let corpus = corpus(0x60F, 10);
    let mut qb = fleet_engine(2, true, 0x60F);
    publish_all(&mut qb, &corpus);
    let creator = AccountId(corpus.creators[0]);
    let victim = corpus.pages[0].name.clone();
    for round in 0..5 {
        qb.advance_time(SimDuration::from_secs(30));
        qb.publish(
            11,
            creator,
            &page(&victim, &format!("churned body revision {round} honeypot")),
        )
        .expect("republish");
        qb.seal();
        qb.process_publish_events().expect("reindex");
    }
    let (reads, hits) = qb.writer_cache_stats();
    assert!(reads > 0);
    assert!(hits > 0, "repeated merges must reuse the writer cache");
    let out = qb.search_from(0, "honeypot").expect("search");
    assert_eq!(out.results.len(), 1);
    assert_eq!(out.results[0].version, 6, "five republishes after v1");
    assert_eq!(qb.freshness.stale_results, 0);
}
