//! End-to-end integration: publish → index → rank → search → ads, across all
//! substrate crates (the full Figure 1 pipeline).

use qb_chain::AccountId;
use qb_integration::{page, publish_and_index, small_engine};
use qb_workload::AdSpec;

#[test]
fn full_pipeline_from_publish_to_paid_ad_click() {
    let mut qb = small_engine(1);

    // Content creators publish a small web.
    publish_and_index(
        &mut qb,
        1,
        1_000,
        &page(
            "wiki/dweb",
            "the decentralized web stores tamperproof content on peer devices",
            &["wiki/search"],
        ),
    );
    publish_and_index(
        &mut qb,
        2,
        1_001,
        &page(
            "wiki/search",
            "queenbee searches the decentralized web without any crawler",
            &["wiki/dweb"],
        ),
    );
    publish_and_index(
        &mut qb,
        3,
        1_002,
        &page(
            "shop/honey",
            "buy artisanal honey from worker bees today",
            &["wiki/dweb"],
        ),
    );

    // Page ranks are computed by the bees.
    let report = qb.run_rank_round().expect("rank round");
    assert!(report.flagged_bees.is_empty());
    assert!(qb.rank_of("wiki/dweb") > 0.0);

    // An advertiser targets a query keyword.
    qb.register_advertiser(&AdSpec {
        advertiser: 5_000,
        keywords: vec![qb_index::Analyzer::stem("honey")],
        bid_per_click: 50,
        budget: 500,
    })
    .expect("campaign");

    // A user searches and clicks the ad.
    let out = qb.search(7, "artisanal honey").expect("search");
    assert!(!out.results.is_empty());
    assert_eq!(out.results[0].name, "shop/honey");
    assert!(out.ad.is_some());
    assert!(out.latency.as_micros() > 0);

    let creator_before = qb.chain.balance(AccountId(1_002));
    let bee_before: u64 = qb.bee_accounts().iter().map(|a| qb.chain.balance(*a)).sum();
    assert!(qb.click_ad(&out).expect("click"));
    assert!(
        qb.chain.balance(AccountId(1_002)) > creator_before,
        "creator earns ad share"
    );
    let bee_after: u64 = qb.bee_accounts().iter().map(|a| qb.chain.balance(*a)).sum();
    assert!(bee_after > bee_before, "serving bee earns ad share");

    // Honey never leaks or mints outside genesis.
    assert_eq!(
        qb.chain.accounts().total_supply(),
        qb.config().chain.genesis_supply
    );
    assert!(qb.chain.verify_integrity().is_ok());
}

#[test]
fn search_results_are_relevant_and_ranked() {
    let mut qb = small_engine(2);
    publish_and_index(
        &mut qb,
        1,
        1_000,
        &page("a", "nectar nectar nectar production guide", &[]),
    );
    publish_and_index(
        &mut qb,
        2,
        1_001,
        &page(
            "b",
            "a single mention of nectar among many other words here",
            &[],
        ),
    );
    publish_and_index(
        &mut qb,
        3,
        1_002,
        &page("c", "completely unrelated content about starships", &[]),
    );

    let out = qb.search(5, "nectar").expect("search");
    let names: Vec<&str> = out.results.iter().map(|r| r.name.as_str()).collect();
    assert!(names.contains(&"a") && names.contains(&"b"));
    assert!(!names.contains(&"c"));
    assert_eq!(
        out.results[0].name, "a",
        "higher term frequency ranks first"
    );
}

#[test]
fn multi_term_queries_intersect_posting_lists() {
    let mut qb = small_engine(3);
    publish_and_index(
        &mut qb,
        1,
        1_000,
        &page("both", "zebras and quaggas graze together", &[]),
    );
    publish_and_index(
        &mut qb,
        2,
        1_001,
        &page("only-zebra", "zebras graze alone", &[]),
    );
    publish_and_index(
        &mut qb,
        3,
        1_002,
        &page("only-quagga", "quaggas graze alone", &[]),
    );

    let out = qb.search(5, "zebras quaggas").expect("search");
    assert_eq!(out.results[0].name, "both");
    assert!(out.shards_fetched >= 2);
}

#[test]
fn tampered_page_content_is_never_served() {
    let mut qb = small_engine(4);
    let p = page(
        "bank/login",
        "legitimate login page for the honey bank",
        &[],
    );
    let report = qb.publish(1, AccountId(1_000), &p).expect("publish");
    qb.seal();
    qb.process_publish_events().expect("index");
    let root = report.object.expect("stored").root;
    // Corrupt every copy: the pinned replicas *and* the cached copies the
    // indexing bees kept (they announce themselves as providers, so an
    // attacker controlling all holders must tamper with those too).
    let corrupted = qb.storage.corrupt_all_copies(&root, b"<html>phish</html>");
    assert!(
        corrupted > 0,
        "expected at least one stored copy to corrupt"
    );
    let err = qb_dweb::fetch_page(
        &mut qb.net,
        &mut qb.dht,
        &mut qb.storage,
        &qb.chain,
        9,
        "bank/login",
    )
    .unwrap_err();
    assert!(matches!(err, qb_common::QbError::IntegrityViolation { .. }));
}
