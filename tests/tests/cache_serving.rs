//! Integration tests for the query-serving cache (the E9 acceptance
//! criteria): a warm cache must reduce repeated-query latency and RPC
//! messages on a Zipf(1.0) stream, and a republished page must never be
//! served stale from cache — invalidation fires at reindex time and the TTL
//! bounds staleness even without it.

use qb_chain::AccountId;
use qb_common::SimDuration;
use qb_queenbee::{CacheConfig, QueenBee, QueenBeeConfig};
use qb_workload::{Corpus, CorpusConfig, CorpusGenerator, QueryWorkload, ZipfSampler};

fn corpus(seed: u64, pages: usize) -> Corpus {
    let config = CorpusConfig {
        num_pages: pages,
        vocab_size: (pages * 12).max(500),
        avg_doc_len: 60,
        ..CorpusConfig::default()
    };
    CorpusGenerator::new(config).generate(&mut qb_common::DetRng::new(seed))
}

fn engine(cache: CacheConfig, seed: u64) -> QueenBee {
    let mut config = QueenBeeConfig::small();
    config.num_peers = 32;
    config.num_bees = 4;
    config.seed = seed;
    config.cache = cache;
    QueenBee::new(config).expect("valid config")
}

fn publish_all(qb: &mut QueenBee, corpus: &Corpus) {
    for (i, page) in corpus.pages.iter().enumerate() {
        let peer = (i % 20) as u64;
        qb.publish(peer, AccountId(corpus.creators[i]), page)
            .expect("publish");
    }
    qb.seal();
    qb.process_publish_events().expect("index");
}

/// Replay the same Zipf(1.0) stream against two engines differing only in
/// the cache and compare total latency / messages / shard fetches.
#[test]
fn warm_cache_reduces_latency_and_rpc_on_zipf_stream() {
    let corpus = corpus(0xCAFE, 30);
    let workload = QueryWorkload::new(&corpus);
    let pool = workload.generate_batch(&corpus, &mut qb_common::DetRng::new(1), 40);
    let zipf = ZipfSampler::new(pool.len(), 1.0);
    let stream: Vec<usize> = {
        let mut rng = qb_common::DetRng::new(2);
        (0..200).map(|_| zipf.sample(&mut rng)).collect()
    };

    let run = |cache: CacheConfig| -> (u64, u64, u64) {
        let mut qb = engine(cache, 0xCAFE);
        publish_all(&mut qb, &corpus);
        let (mut latency_us, mut messages, mut fetches) = (0u64, 0u64, 0u64);
        for (i, &q) in stream.iter().enumerate() {
            let out = qb.search((i % 28) as u64, &pool[q]).expect("search");
            latency_us += out.latency.as_micros();
            messages += out.messages;
            fetches += out.shards_fetched as u64;
        }
        (latency_us, messages, fetches)
    };

    let (off_latency, off_messages, off_fetches) = run(CacheConfig::default());
    let (on_latency, on_messages, on_fetches) = run(CacheConfig::enabled());

    assert!(
        on_latency < off_latency / 2,
        "warm cache must at least halve total latency: {on_latency}us vs {off_latency}us"
    );
    assert!(
        on_messages < off_messages / 2,
        "warm cache must at least halve RPC messages: {on_messages} vs {off_messages}"
    );
    assert!(
        on_fetches < off_fetches,
        "warm cache must reduce shard fetches: {on_fetches} vs {off_fetches}"
    );
}

/// A single repeated query: the warm run must issue strictly fewer RPC
/// messages than its cold run (end-to-end shape of the per-query win).
#[test]
fn warm_repeated_query_issues_fewer_rpc_messages_than_cold() {
    let corpus = corpus(0xBEE, 10);
    let mut qb = engine(CacheConfig::enabled(), 0xBEE);
    publish_all(&mut qb, &corpus);
    let query = corpus.pages[0]
        .body
        .split_whitespace()
        .next()
        .unwrap()
        .to_string();
    let cold = qb.search(5, &query).expect("cold search");
    let warm = qb.search(5, &query).expect("warm search");
    assert!(cold.messages > 0);
    assert_eq!(warm.messages, 0, "warm repeat must be RPC-free");
    assert!(warm.messages < cold.messages);
    assert!(warm.latency < cold.latency);
    assert_eq!(warm.results, cold.results, "cache must not change results");
}

/// Republish-then-query: the cached result for the old version must die at
/// reindex time; the very next query sees the new version and the freshness
/// probe records zero stale results.
#[test]
fn republished_page_is_never_served_stale_from_cache() {
    let mut qb = engine(CacheConfig::enabled(), 0xF00D);
    let creator = AccountId(1_000);
    let v1 = qb_dweb::WebPage::new(
        "news/hot",
        "Hot news",
        "glowworms invade the meadow",
        vec![],
    );
    qb.publish(1, creator, &v1).expect("publish v1");
    qb.seal();
    qb.process_publish_events().expect("index v1");

    // Warm the cache on version 1 (second query is a result-cache hit).
    assert_eq!(qb.search(3, "glowworms").unwrap().results[0].version, 1);
    assert!(qb.search(3, "glowworms").unwrap().result_cache_hit);

    // Republish with new content that keeps the hot term.
    let v2 = qb_dweb::WebPage::new("news/hot", "Hot news", "glowworms retreat at dawn", vec![]);
    qb.publish(1, creator, &v2).expect("publish v2");
    qb.seal();
    qb.process_publish_events().expect("index v2");

    // The old entry must not serve: same query now returns version 2.
    let after = qb.search(3, "glowworms").expect("search after republish");
    assert!(
        !after.result_cache_hit,
        "stale cached result must have been invalidated"
    );
    assert_eq!(after.results[0].version, 2);
    assert_eq!(
        qb.freshness.stale_results, 0,
        "no search ever returned a stale version"
    );
    let metrics = qb.cache_metrics().expect("cache on");
    assert!(
        metrics.total_invalidations() > 0,
        "invalidation path must have fired"
    );
}

/// The TTL backstop: even when a cached entry stays formally valid (no
/// republish touches it), it must stop serving once its TTL lapses in
/// simulated time — no entry outlives its configured bound.
#[test]
fn cache_entries_expire_at_their_ttl_bound() {
    let mut cache = CacheConfig::enabled();
    cache.result_ttl = SimDuration::from_secs(30);
    cache.shard_ttl = SimDuration::from_secs(30);
    // With adaptive TTLs on, a never-republished term's shard bound is the
    // adaptive ceiling, not `shard_ttl` — pin the ceiling to the same bound
    // so this test keeps exercising the backstop end to end.
    cache.adaptive_ttl_floor = SimDuration::from_secs(1);
    cache.adaptive_ttl_ceiling = SimDuration::from_secs(30);
    let ttl = cache.result_ttl;
    let mut qb = engine(cache, 0x71E);
    let page = qb_dweb::WebPage::new("wiki/ttl", "TTL", "ephemeral knowledge fades", vec![]);
    qb.publish(1, AccountId(1_000), &page).expect("publish");
    qb.seal();
    qb.process_publish_events().expect("index");

    let _ = qb.search(3, "ephemeral").expect("fill");
    assert!(
        qb.search(3, "ephemeral").unwrap().result_cache_hit,
        "warm before TTL"
    );

    // Cross the TTL boundary in simulated time: the entry must be gone and
    // the query must hit the DHT again.
    qb.advance_time(ttl + SimDuration::from_secs(1));
    let expired = qb.search(3, "ephemeral").expect("search after TTL");
    assert!(!expired.result_cache_hit, "entry must not outlive its TTL");
    assert!(expired.messages > 0, "expired entry forces a real fetch");
    let metrics = qb.cache_metrics().unwrap();
    assert!(
        metrics.result.expirations > 0,
        "expiration counter must record the TTL eviction"
    );
}

/// Cache-off engines keep the exact seed behavior: no hidden warm-up.
#[test]
fn cache_off_engine_shows_no_warmup_effect() {
    let corpus = corpus(0xD15, 8);
    let mut qb = engine(CacheConfig::default(), 0xD15);
    publish_all(&mut qb, &corpus);
    let query = corpus.pages[0]
        .body
        .split_whitespace()
        .next()
        .unwrap()
        .to_string();
    let a = qb.search(5, &query).expect("first");
    let b = qb.search(5, &query).expect("second");
    assert!(qb.cache_metrics().is_none());
    assert_eq!(a.messages, b.messages);
    assert!(!a.result_cache_hit && !b.result_cache_hit);
}
