//! Cross-crate integration tests for the QueenBee reproduction.
//!
//! The actual tests live in `tests/tests/*.rs`; this library only provides
//! small helpers shared between them.

use qb_chain::AccountId;
use qb_dweb::WebPage;
use qb_queenbee::{QueenBee, QueenBeeConfig};

/// Build a small engine suitable for integration tests.
pub fn small_engine(seed: u64) -> QueenBee {
    let mut config = QueenBeeConfig::small();
    config.seed = seed;
    QueenBee::new(config).expect("small config is valid")
}

/// Build a simple page.
pub fn page(name: &str, body: &str, links: &[&str]) -> WebPage {
    WebPage::new(
        name,
        format!("Title of {name}"),
        body,
        links.iter().map(|s| s.to_string()).collect(),
    )
}

/// Publish a page, seal the block and run the worker bees.
pub fn publish_and_index(qb: &mut QueenBee, peer: u64, creator: u64, p: &WebPage) {
    qb.publish(peer, AccountId(creator), p).expect("publish");
    qb.seal();
    qb.process_publish_events().expect("index");
}
