//! Offline stand-in for the `serde` crate.
//!
//! The workspace derives `serde::Serialize` / `serde::Deserialize` on many
//! types but never actually serializes them through serde (the only JSON
//! output goes through the workspace-local `serde_json` stand-in, which
//! builds values by hand). These derives therefore expand to nothing; they
//! exist so the `#[derive(serde::Serialize, serde::Deserialize)]` attributes
//! compile without network access to crates.io.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
