//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace benches use — `Criterion`,
//! `bench_function`, `benchmark_group` / `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple wall-clock harness: each
//! benchmark is warmed up briefly, then timed over an adaptive number of
//! iterations, and the mean per-iteration time is printed. There are no
//! statistics, plots or baselines; the goal is that `cargo bench` runs and
//! reports useful numbers without network access to crates.io.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark (`group/function/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("get_record", 64)`.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }

    /// `BenchmarkId::from_parameter(64)`.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Hint for how much input `iter_batched` setup produces per batch. The
/// stand-in times one payload call per setup call regardless, so the
/// variants only exist for API parity with the real crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; the real crate batches many per allocation.
    SmallInput,
    /// Large setup output; the real crate batches few per allocation.
    LargeInput,
    /// One setup output per iteration.
    PerIteration,
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `f`, adapting the iteration count to the payload's cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run once to get a cost estimate (and fault in caches).
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));

        // Aim for ~200ms of measurement, capped to keep total runtime sane.
        let target = Duration::from_millis(200);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.total = start.elapsed();
        self.iters = iters;
    }

    /// Time `routine` over inputs produced by `setup`, excluding the setup
    /// cost from the measurement (for payloads that consume their input or
    /// mutate expensive-to-build state).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up: one setup + payload to estimate the payload's cost.
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));

        // Far fewer iterations than `iter`: each needs its own (untimed)
        // setup, so the cap keeps total runtime sane even when setup
        // dominates the payload.
        let target = Duration::from_millis(200);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
        self.iters = iters;
    }
}

fn report(name: &str, total: Duration, iters: u64) {
    let per_iter = total.as_nanos() as f64 / iters.max(1) as f64;
    let (value, unit) = if per_iter >= 1e9 {
        (per_iter / 1e9, "s")
    } else if per_iter >= 1e6 {
        (per_iter / 1e6, "ms")
    } else if per_iter >= 1e3 {
        (per_iter / 1e3, "us")
    } else {
        (per_iter, "ns")
    };
    println!("bench {name:<55} {value:>10.3} {unit}/iter ({iters} iters)");
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(name, b.total, b.iters);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run a benchmark in the group with an input parameter.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.name), b.total, b.iters);
        self
    }

    /// Run an unparameterized benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.total, b.iters);
        self
    }

    /// Finish the group (no-op in the stand-in).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
