//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] here is an `Arc<[u8]>`-backed immutable buffer: cheap to clone,
//! dereferences to `&[u8]`, and convertible from slices and vectors — the
//! subset of the real crate's semantics the storage layer relies on.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy the contents out into a vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes { data: s.into() }
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Bytes {
        Bytes {
            data: s.as_slice().into(),
        }
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes {
            data: s.as_bytes().into(),
        }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        let v: Vec<u8> = iter.into_iter().collect();
        v.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_derefs() {
        let b = Bytes::from(b"hello".to_vec());
        assert_eq!(&b[..], b"hello");
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(c.to_vec(), b"hello".to_vec());
    }
}
