//! Offline stand-in for the `serde_json` crate.
//!
//! Implements the small slice of the serde_json API this workspace uses:
//! [`Value`], [`Map`], the [`json!`] macro for object/array literals,
//! [`to_string_pretty`] and a [`from_str`] parser into [`Value`]. Values
//! are built by hand (no serde trait plumbing), which is exactly how the
//! experiment harness uses the real crate.

use std::collections::BTreeMap;
use std::fmt;

/// An ordered JSON object (insertion order preserved, like serde_json with
/// the `preserve_order` feature).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Empty map.
    pub fn new() -> Map {
        Map::default()
    }

    /// Insert a key/value pair, replacing any previous value for the key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in self.entries.iter_mut() {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Value stored under `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl From<BTreeMap<String, Value>> for Map {
    fn from(m: BTreeMap<String, Value>) -> Map {
        Map {
            entries: m.into_iter().collect(),
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (stored as f64, rendered without a trailing `.0` when whole).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// The value as an array, when it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a string slice, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an object, when it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Object(map) => map.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_pretty(&mut s, 0);
        f.write_str(&s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::String(s.clone())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {
        $(impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::Number(n as f64)
            }
        })*
    };
}
from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl From<Map> for Value {
    fn from(map: Map) -> Value {
        Value::Object(map)
    }
}

/// Error type returned by the serialization and parsing entry points
/// (serialization never actually fails; parsing reports position and
/// cause).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Parse a JSON document into a [`Value`] (objects, arrays, strings with
/// the standard escapes, f64 numbers, booleans, null).
pub fn from_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing data at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), Error> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(Error(format!("expected '{}' at byte {}", c as char, *pos)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'{') => {
            *pos += 1;
            let mut map = Map::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(Error(format!("expected ',' or '}}' at byte {pos}"))),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error(format!("expected ',' or ']' at byte {pos}"))),
                }
            }
        }
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).unwrap_or("");
            text.parse::<f64>()
                .map(Value::Number)
                .map_err(|_| Error(format!("invalid number '{text}' at byte {start}")))
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .and_then(char::from_u32)
                            .ok_or_else(|| Error(format!("invalid \\u escape at byte {pos}")))?;
                        out.push(hex);
                        *pos += 4;
                    }
                    _ => return Err(Error(format!("invalid escape at byte {pos}"))),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Consume one UTF-8 scalar (the input came from a &str, so
                // continuation bytes are well-formed).
                let len = match c {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let chunk = bytes
                    .get(*pos..*pos + len)
                    .and_then(|b| std::str::from_utf8(b).ok())
                    .ok_or_else(|| Error(format!("invalid UTF-8 at byte {pos}")))?;
                out.push_str(chunk);
                *pos += len;
            }
        }
    }
}

/// By-reference conversion into [`Value`], used by the [`json!`] macro so
/// that (like real serde_json) the macro never moves its arguments.
pub trait JsonConvert {
    /// Convert to a JSON value.
    fn to_value(&self) -> Value;
}

impl JsonConvert for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl JsonConvert for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl JsonConvert for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl JsonConvert for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl JsonConvert for f64 {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

macro_rules! convert_int {
    ($($t:ty),*) => {
        $(impl JsonConvert for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        })*
    };
}
convert_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: JsonConvert> JsonConvert for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_value()).collect())
    }
}

impl<T: JsonConvert + ?Sized> JsonConvert for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

/// Types that can be rendered as a JSON document by the stand-in.
pub trait ToJson {
    /// The value to render.
    fn to_json_value(&self) -> Value;
}

impl ToJson for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_json_value()).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json_value(&self) -> Value {
        (*self).to_json_value()
    }
}

/// Render a value as pretty-printed JSON.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_json_value().write_pretty(&mut out, 0);
    Ok(out)
}

/// Render a value as compact JSON (pretty layout is close enough for the
/// stand-in; kept as a distinct entry point for API compatibility).
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    to_string_pretty(value)
}

/// Build a [`Value`] from a JSON-like literal. Supports object literals,
/// array literals, and expressions convertible to `Value` via `From`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::JsonConvert::to_value(&$item) ),* ])
    };
    ({ $($key:tt : $value:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert(($key).to_string(), $crate::JsonConvert::to_value(&$value)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::JsonConvert::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({ "title": "t", "rows": vec![Value::Null] });
        assert_eq!(v["title"].as_str(), Some("t"));
        assert_eq!(v["rows"].as_array().unwrap().len(), 1);
    }

    #[test]
    fn pretty_output_is_valid_json_shape() {
        let mut m = Map::new();
        m.insert("a".into(), Value::String("x\"y".into()));
        m.insert("b".into(), Value::Number(3.0));
        let s = to_string_pretty(&Value::Object(m)).unwrap();
        assert!(s.contains("\"a\": \"x\\\"y\""));
        assert!(s.contains("\"b\": 3"));
    }

    #[test]
    fn from_str_round_trips_what_to_string_pretty_writes() {
        let v = json!({
            "title": "E9a: stream (240 queries)",
            "rows": vec![
                json!({ "config": "cache on", "rpc_messages": "1234" }),
                json!({ "config": "cache off", "rpc_messages": "5678" }),
            ]
        });
        let text = to_string_pretty(&v).unwrap();
        let parsed = from_str(&text).unwrap();
        assert_eq!(parsed, v);
        assert_eq!(parsed["rows"][0]["config"].as_str(), Some("cache on"));
    }

    #[test]
    fn from_str_parses_scalars_escapes_and_errors() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("-12.5e1").unwrap(), Value::Number(-125.0));
        assert_eq!(
            from_str("\"a\\n\\\"b\\u0041 ü\"").unwrap(),
            Value::String("a\n\"b\u{41} ü".into())
        );
        assert_eq!(from_str("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(from_str("{}").unwrap(), Value::Object(Map::new()));
        assert!(from_str("{\"a\": }").is_err());
        assert!(from_str("[1, 2").is_err());
        assert!(from_str("12 extra").is_err());
    }

    #[test]
    fn index_on_wrong_type_yields_null() {
        let v = Value::Bool(true);
        assert_eq!(v["missing"], Value::Null);
        assert_eq!(v[3], Value::Null);
    }
}
