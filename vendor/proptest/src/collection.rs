//! Collection strategies: `vec`, `btree_set`, `btree_map`.

use crate::strategy::{Strategy, TestRng};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// Strategy for a `Vec` with element strategy `S` and a size range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// `proptest::collection::vec(element, size_range)`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = sample_size(&self.size, rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for a `BTreeSet`; sizes are best-effort (duplicates collapse).
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// `proptest::collection::btree_set(element, size_range)`.
pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
    BTreeSetStrategy { element, size }
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = sample_size(&self.size, rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for a `BTreeMap`; sizes are best-effort (duplicate keys collapse).
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: Range<usize>,
}

/// `proptest::collection::btree_map(key, value, size_range)`.
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: Range<usize>,
) -> BTreeMapStrategy<K, V> {
    BTreeMapStrategy { key, value, size }
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = sample_size(&self.size, rng);
        (0..len)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}

fn sample_size(size: &Range<usize>, rng: &mut TestRng) -> usize {
    if size.end <= size.start {
        size.start
    } else {
        size.start + rng.index(size.end - size.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_sizes_respect_range() {
        let mut rng = TestRng::for_case("vec_sizes", 0);
        for _ in 0..100 {
            let v = vec(any::<u8>(), 2..7).generate(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    #[test]
    fn btree_map_generates_pairs() {
        let mut rng = TestRng::for_case("map", 0);
        let m = btree_map(any::<u32>(), (1u32..100, 1u32..500), 0..60).generate(&mut rng);
        for (_, (tf, dl)) in m {
            assert!((1..100).contains(&tf));
            assert!((1..500).contains(&dl));
        }
    }

    #[test]
    fn nested_vec_of_strings() {
        let mut rng = TestRng::for_case("links", 0);
        let v = vec("[a-z]{1,10}", 0..5).generate(&mut rng);
        assert!(v.len() < 5);
        for s in v {
            assert!(!s.is_empty() && s.len() <= 10);
        }
    }
}
