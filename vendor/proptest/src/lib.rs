//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * `any::<T>()` for the integer types, `bool` and `[u8; 32]`,
//! * integer range strategies (`0u64..500`), tuple strategies (2- and
//!   3-tuples), `proptest::collection::{vec, btree_set, btree_map}`,
//! * string strategies from a small regex subset (`"[a-z]{1,12}"`,
//!   groups, `?`),
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` and
//!   `ProptestConfig::with_cases`.
//!
//! Unlike real proptest there is no shrinking: failures report the first
//! counterexample found. Generation is fully deterministic — each test case
//! derives its RNG seed from the test name and case index — so failures
//! reproduce across runs and machines.

pub mod collection;
pub mod strategy;

pub use strategy::{Strategy, TestRng};

/// Common imports for property tests.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Run each property `cases` times.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }
}

/// Assert inside a property; panics (no shrinking) with the case context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    // With a leading config attribute.
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    // Without one: use the default config.
    (
        $(#[$meta:meta])*
        fn $($rest:tt)*
    ) => {
        $crate::proptest!(
            @with_config ($crate::prelude::ProptestConfig::default())
            $(#[$meta])*
            fn $($rest)*
        );
    };
    (
        @with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case as u64);
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                    $body
                }
            }
        )*
    };
}
