//! Strategies: deterministic value generation (no shrinking).

use std::ops::Range;

/// Deterministic RNG used for test-case generation (splitmix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one (test, case) pair; the seed mixes the test name so
    /// different properties see different streams.
    pub fn for_case(test_name: &str, case: u64) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant for test generation purposes.
        self.next_u64() % bound
    }

    /// Uniform usize in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }
}

/// A value generator. The stand-in generates eagerly and never shrinks.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for [u8; 32] {
    fn arbitrary(rng: &mut TestRng) -> [u8; 32] {
        let mut out = [0u8; 32];
        for chunk in out.chunks_mut(8) {
            let v = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
        out
    }
}

/// Strategy producing any value of `T` (`any::<u64>()`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        })*
    };
}
range_strategy!(u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

// ---- string strategies from a regex subset -----------------------------------
//
// Supports the patterns used in this workspace: sequences of
//   [class]{m,n}   [class]?   [class]   literal   ( group )?   ( group ){m,n}
// where a class is a list of characters and a-z style ranges.

#[derive(Debug, Clone)]
enum Atom {
    Class(Vec<char>),
    Literal(char),
    Group(Vec<(Atom, Repeat)>),
}

#[derive(Debug, Clone, Copy)]
struct Repeat {
    min: usize,
    max: usize,
}

fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    // chars[i] is the char after '['.
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            for c in lo..=hi {
                set.push(c);
            }
            i += 3;
        } else {
            set.push(chars[i]);
            i += 1;
        }
    }
    (set, i + 1) // skip ']'
}

fn parse_repeat(chars: &[char], i: usize) -> (Repeat, usize) {
    if i < chars.len() && chars[i] == '{' {
        let mut j = i + 1;
        let mut min = 0usize;
        while j < chars.len() && chars[j].is_ascii_digit() {
            min = min * 10 + chars[j].to_digit(10).unwrap() as usize;
            j += 1;
        }
        let mut max = min;
        if j < chars.len() && chars[j] == ',' {
            j += 1;
            max = 0;
            while j < chars.len() && chars[j].is_ascii_digit() {
                max = max * 10 + chars[j].to_digit(10).unwrap() as usize;
                j += 1;
            }
        }
        debug_assert!(j < chars.len() && chars[j] == '}', "unterminated {{m,n}}");
        (Repeat { min, max }, j + 1)
    } else if i < chars.len() && chars[i] == '?' {
        (Repeat { min: 0, max: 1 }, i + 1)
    } else {
        (Repeat { min: 1, max: 1 }, i)
    }
}

fn parse_sequence(
    chars: &[char],
    mut i: usize,
    stop_at_paren: bool,
) -> (Vec<(Atom, Repeat)>, usize) {
    let mut seq = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            ')' if stop_at_paren => return (seq, i + 1),
            '[' => {
                let (set, next) = parse_class(chars, i + 1);
                i = next;
                Atom::Class(set)
            }
            '(' => {
                let (inner, next) = parse_sequence(chars, i + 1, true);
                i = next;
                Atom::Group(inner)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (rep, next) = parse_repeat(chars, i);
        i = next;
        seq.push((atom, rep));
    }
    (seq, i)
}

fn generate_sequence(seq: &[(Atom, Repeat)], rng: &mut TestRng, out: &mut String) {
    for (atom, rep) in seq {
        let count = if rep.max > rep.min {
            rep.min + rng.index(rep.max - rep.min + 1)
        } else {
            rep.min
        };
        for _ in 0..count {
            match atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(set) => {
                    if !set.is_empty() {
                        out.push(set[rng.index(set.len())]);
                    }
                }
                Atom::Group(inner) => generate_sequence(inner, rng, out),
            }
        }
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let chars: Vec<char> = self.chars().collect();
        let (seq, _) = parse_sequence(&chars, 0, false);
        let mut out = String::new();
        generate_sequence(&seq, rng, &mut out);
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy_tests", 1)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (3u64..17).generate(&mut r);
            assert!((3..17).contains(&v));
            let u = (1usize..8).generate(&mut r);
            assert!((1..8).contains(&u));
        }
    }

    #[test]
    fn string_strategy_matches_simple_class() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[a-z]{1,10}".generate(&mut r);
            assert!((1..=10).contains(&s.len()), "len {}", s.len());
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn string_strategy_handles_optional_group() {
        let mut r = rng();
        let mut saw_slash = false;
        let mut saw_plain = false;
        for _ in 0..200 {
            let s = "[a-z]{1,12}(/[a-z]{1,12})?".generate(&mut r);
            if s.contains('/') {
                saw_slash = true;
                let (a, b) = s.split_once('/').unwrap();
                assert!(!a.is_empty() && !b.is_empty());
            } else {
                saw_plain = true;
            }
        }
        assert!(saw_slash && saw_plain);
    }

    #[test]
    fn tuples_compose() {
        let mut r = rng();
        let (a, b, c) = (0u8..6, 0u64..8, 0u64..500).generate(&mut r);
        assert!(a < 6 && b < 8 && c < 500);
        let (x, y) = (any::<u16>(), any::<bool>()).generate(&mut r);
        let _ = (x, y);
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = TestRng::for_case("det", 7);
        let mut b = TestRng::for_case("det", 7);
        for _ in 0..50 {
            assert_eq!(any::<u64>().generate(&mut a), any::<u64>().generate(&mut b));
        }
    }
}
