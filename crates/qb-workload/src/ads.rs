//! Advertiser workload: campaigns targeting head keywords, plus a simple
//! click model for the pay-per-click experiments.

use crate::corpus::Corpus;
use crate::zipf::ZipfSampler;
use qb_common::DetRng;

/// Specification of one campaign an advertiser will open on the ad contract.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AdSpec {
    /// Advertiser account id.
    pub advertiser: u64,
    /// Targeted keywords (from the corpus vocabulary head).
    pub keywords: Vec<String>,
    /// Bid per click in nectar.
    pub bid_per_click: u64,
    /// Campaign budget in nectar.
    pub budget: u64,
}

/// Generates advertiser campaigns and models user click behaviour.
#[derive(Debug, Clone)]
pub struct AdvertiserWorkload {
    /// Number of advertisers.
    pub num_advertisers: usize,
    /// First account id used for advertisers.
    pub advertiser_account_base: u64,
    /// Probability a user clicks the ad shown with a result page.
    pub click_through_rate: f64,
    keyword_dist: ZipfSampler,
}

impl AdvertiserWorkload {
    /// Create a workload over a corpus vocabulary.
    pub fn new(corpus: &Corpus, num_advertisers: usize) -> AdvertiserWorkload {
        AdvertiserWorkload {
            num_advertisers,
            advertiser_account_base: 5_000,
            click_through_rate: 0.15,
            keyword_dist: ZipfSampler::new(corpus.vocabulary.len().clamp(1, 200), 1.0),
        }
    }

    /// Generate the campaign specifications.
    pub fn generate(&self, corpus: &Corpus, rng: &mut DetRng) -> Vec<AdSpec> {
        (0..self.num_advertisers)
            .map(|i| {
                let num_keywords = 1 + rng.gen_index(3);
                let mut keywords = Vec::with_capacity(num_keywords);
                for _ in 0..num_keywords {
                    let kw = corpus.vocabulary[self.keyword_dist.sample(rng)].clone();
                    if !keywords.contains(&kw) {
                        keywords.push(kw);
                    }
                }
                let bid = 20 + rng.gen_range(180);
                let budget = bid * (20 + rng.gen_range(200));
                AdSpec {
                    advertiser: self.advertiser_account_base + i as u64,
                    keywords,
                    bid_per_click: bid,
                    budget,
                }
            })
            .collect()
    }

    /// Does the user click the displayed ad?
    pub fn user_clicks(&self, rng: &mut DetRng) -> bool {
        rng.gen_bool(self.click_through_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{CorpusConfig, CorpusGenerator};

    fn corpus() -> Corpus {
        CorpusGenerator::new(CorpusConfig::tiny()).generate(&mut DetRng::new(5))
    }

    #[test]
    fn campaigns_are_well_formed() {
        let c = corpus();
        let w = AdvertiserWorkload::new(&c, 10);
        let specs = w.generate(&c, &mut DetRng::new(1));
        assert_eq!(specs.len(), 10);
        for s in &specs {
            assert!(!s.keywords.is_empty());
            assert!(s.bid_per_click > 0);
            assert!(s.budget >= s.bid_per_click);
            assert!(s.advertiser >= w.advertiser_account_base);
            for kw in &s.keywords {
                assert!(c.vocabulary.contains(kw));
            }
        }
        // Distinct advertiser accounts.
        let accounts: std::collections::HashSet<u64> = specs.iter().map(|s| s.advertiser).collect();
        assert_eq!(accounts.len(), 10);
    }

    #[test]
    fn click_model_matches_configured_rate() {
        let c = corpus();
        let w = AdvertiserWorkload::new(&c, 1);
        let mut rng = DetRng::new(2);
        let clicks = (0..10_000).filter(|_| w.user_clicks(&mut rng)).count();
        let rate = clicks as f64 / 10_000.0;
        assert!((rate - w.click_through_rate).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn generation_is_deterministic() {
        let c = corpus();
        let w = AdvertiserWorkload::new(&c, 5);
        assert_eq!(
            w.generate(&c, &mut DetRng::new(7)),
            w.generate(&c, &mut DetRng::new(7))
        );
    }
}
