//! Preferential-attachment link generation (Barabási–Albert style), giving
//! the heavy-tailed page-popularity distribution the incentive and attack
//! experiments rely on.

use qb_common::DetRng;

/// Generate out-links for each page. Pages are processed in order; each page
/// links to roughly `avg_out_links` earlier pages chosen with probability
/// proportional to their current in-degree plus one (preferential
/// attachment), so early pages accumulate large in-degrees.
pub fn generate_links(
    names: &[String],
    avg_out_links: usize,
    rng: &mut DetRng,
) -> Vec<Vec<String>> {
    let n = names.len();
    let mut out: Vec<Vec<String>> = vec![Vec::new(); n];
    if n <= 1 || avg_out_links == 0 {
        return out;
    }
    // in_degree[i] + 1 is the attachment weight.
    let mut weights: Vec<u64> = vec![1; n];
    let mut total_weight: u64 = n as u64;

    for i in 1..n {
        let k = 1 + rng.gen_index(avg_out_links * 2); // 1..=2*avg, mean ~avg
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        let candidates = i; // only link to earlier pages
        for _ in 0..k.min(candidates) {
            // Weighted sample among earlier pages by current weight.
            let earlier_weight: u64 = weights[..i].iter().sum();
            let mut target = rng.gen_range(earlier_weight.max(1));
            let mut pick = 0usize;
            for (j, w) in weights[..i].iter().enumerate() {
                if target < *w {
                    pick = j;
                    break;
                }
                target -= *w;
            }
            if !chosen.contains(&pick) {
                chosen.push(pick);
                weights[pick] += 1;
                total_weight += 1;
            }
        }
        out[i] = chosen.iter().map(|&j| names[j].clone()).collect();
    }
    let _ = total_weight;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("p{i}")).collect()
    }

    #[test]
    fn links_reference_only_existing_earlier_pages() {
        let ns = names(100);
        let mut rng = DetRng::new(1);
        let links = generate_links(&ns, 4, &mut rng);
        assert_eq!(links.len(), 100);
        for (i, ls) in links.iter().enumerate() {
            for l in ls {
                let target: usize = l[1..].parse().unwrap();
                assert!(target < i, "page {i} links forward to {target}");
            }
            // No duplicate links.
            let set: std::collections::HashSet<&String> = ls.iter().collect();
            assert_eq!(set.len(), ls.len());
        }
    }

    #[test]
    fn in_degree_distribution_is_heavy_tailed() {
        let ns = names(500);
        let mut rng = DetRng::new(2);
        let links = generate_links(&ns, 5, &mut rng);
        let mut in_deg = vec![0usize; 500];
        for ls in &links {
            for l in ls {
                let t: usize = l[1..].parse().unwrap();
                in_deg[t] += 1;
            }
        }
        let max = *in_deg.iter().max().unwrap();
        let mean = in_deg.iter().sum::<usize>() as f64 / 500.0;
        assert!(
            max as f64 > mean * 5.0,
            "expected a heavy tail: max={max} mean={mean}"
        );
    }

    #[test]
    fn degenerate_inputs() {
        let mut rng = DetRng::new(3);
        assert!(generate_links(&[], 3, &mut rng).is_empty());
        assert_eq!(
            generate_links(&names(1), 3, &mut rng),
            vec![Vec::<String>::new()]
        );
        let zero = generate_links(&names(5), 0, &mut rng);
        assert!(zero.iter().all(|l| l.is_empty()));
    }

    #[test]
    fn generation_is_deterministic() {
        let ns = names(50);
        let a = generate_links(&ns, 3, &mut DetRng::new(9));
        let b = generate_links(&ns, 3, &mut DetRng::new(9));
        assert_eq!(a, b);
    }
}
