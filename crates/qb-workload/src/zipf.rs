//! Zipf-distributed sampling.

use qb_common::DetRng;

/// Samples indices `0..n` with probability proportional to `1 / (i+1)^s`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Create a sampler over `n` items with exponent `s` (s = 0 is uniform,
    /// s ≈ 1 is the classic natural-language skew).
    pub fn new(n: usize, s: f64) -> ZipfSampler {
        assert!(n > 0, "ZipfSampler needs at least one item");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cumulative.push(total);
        }
        // Normalise.
        for c in cumulative.iter_mut() {
            *c /= total;
        }
        ZipfSampler { cumulative }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when there are no items (never; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Sample an index.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.gen_f64();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).unwrap_or(std::cmp::Ordering::Less))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// Probability mass of item `i`.
    pub fn probability(&self, i: usize) -> f64 {
        if i == 0 {
            self.cumulative[0]
        } else {
            self.cumulative[i] - self.cumulative[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_sum_to_one_and_decrease() {
        let z = ZipfSampler::new(100, 1.0);
        let total: f64 = (0..100).map(|i| z.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(z.probability(0) > z.probability(10));
        assert!(z.probability(10) > z.probability(90));
    }

    #[test]
    fn uniform_when_s_is_zero() {
        let z = ZipfSampler::new(50, 0.0);
        let p0 = z.probability(0);
        let p49 = z.probability(49);
        assert!((p0 - p49).abs() < 1e-9);
    }

    #[test]
    fn sampling_respects_skew() {
        let z = ZipfSampler::new(1000, 1.0);
        let mut rng = DetRng::new(7);
        let mut head = 0;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // The top 10 of 1000 items should receive roughly 39% of the mass at s=1.
        let frac = head as f64 / n as f64;
        assert!((0.3..0.5).contains(&frac), "head fraction = {frac}");
    }

    #[test]
    fn samples_are_always_in_range() {
        let z = ZipfSampler::new(7, 1.2);
        let mut rng = DetRng::new(9);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}
