//! Synthetic web corpus generation.

use crate::linkgraph::generate_links;
use crate::zipf::ZipfSampler;
use qb_common::DetRng;
use qb_dweb::WebPage;

/// Corpus generation parameters.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CorpusConfig {
    /// Number of pages.
    pub num_pages: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Zipf exponent of the term distribution.
    pub zipf_s: f64,
    /// Mean document length in words.
    pub avg_doc_len: usize,
    /// Mean out-links per page.
    pub avg_out_links: usize,
    /// Number of distinct content creators owning the pages (ownership is
    /// itself Zipf-distributed: a few creators own many pages).
    pub num_creators: usize,
    /// First account id used for creators (creator i → account base + i).
    pub creator_account_base: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            num_pages: 500,
            vocab_size: 5_000,
            zipf_s: 1.0,
            avg_doc_len: 120,
            avg_out_links: 6,
            num_creators: 50,
            creator_account_base: 1_000,
        }
    }
}

impl CorpusConfig {
    /// A tiny corpus for unit tests.
    pub fn tiny() -> CorpusConfig {
        CorpusConfig {
            num_pages: 20,
            vocab_size: 200,
            zipf_s: 1.0,
            avg_doc_len: 30,
            avg_out_links: 3,
            num_creators: 5,
            creator_account_base: 1_000,
        }
    }
}

/// A generated corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The pages (index = page id within the corpus).
    pub pages: Vec<WebPage>,
    /// Creator account id of each page.
    pub creators: Vec<u64>,
    /// The vocabulary used to generate bodies (useful for query generation).
    pub vocabulary: Vec<String>,
    /// The configuration that produced the corpus.
    pub config: CorpusConfig,
}

impl Corpus {
    /// Index of a page by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.pages.iter().position(|p| p.name == name)
    }
}

/// Deterministic corpus generator.
#[derive(Debug, Clone)]
pub struct CorpusGenerator {
    config: CorpusConfig,
}

/// Build a pronounceable synthetic word for a vocabulary index. Words are
/// distinct per index and deterministic across runs.
pub fn word_for_index(i: usize) -> String {
    const CONSONANTS: &[&str] = &[
        "b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z", "ch", "st",
    ];
    const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ai", "ou"];
    let mut word = String::new();
    let mut x = i + 1;
    while x > 0 {
        word.push_str(CONSONANTS[x % CONSONANTS.len()]);
        x /= CONSONANTS.len();
        word.push_str(VOWELS[x % VOWELS.len()]);
        x /= VOWELS.len();
    }
    // Suffix a stable tag so stemming never conflates two vocabulary words.
    word.push_str(&format!("q{i}"));
    word
}

impl CorpusGenerator {
    /// Create a generator.
    pub fn new(config: CorpusConfig) -> CorpusGenerator {
        CorpusGenerator { config }
    }

    /// Generate a corpus.
    pub fn generate(&self, rng: &mut DetRng) -> Corpus {
        let cfg = &self.config;
        let vocabulary: Vec<String> = (0..cfg.vocab_size).map(word_for_index).collect();
        let term_dist = ZipfSampler::new(cfg.vocab_size, cfg.zipf_s);
        let creator_dist = ZipfSampler::new(cfg.num_creators.max(1), 0.8);

        let names: Vec<String> = (0..cfg.num_pages)
            .map(|i| format!("site{:03}/page{:04}", i % (cfg.num_pages / 10 + 1), i))
            .collect();
        let link_targets = generate_links(&names, cfg.avg_out_links, rng);

        let mut pages = Vec::with_capacity(cfg.num_pages);
        let mut creators = Vec::with_capacity(cfg.num_pages);
        for (i, name) in names.iter().enumerate() {
            let creator_idx = creator_dist.sample(rng) as u64;
            let creator = cfg.creator_account_base + creator_idx;
            let len = ((rng.gen_normal(cfg.avg_doc_len as f64, cfg.avg_doc_len as f64 * 0.3))
                .max(10.0)) as usize;
            let mut body = String::with_capacity(len * 8);
            for w in 0..len {
                if w > 0 {
                    body.push(' ');
                }
                body.push_str(&vocabulary[term_dist.sample(rng)]);
            }
            let title_terms: Vec<String> = (0..3)
                .map(|_| vocabulary[term_dist.sample(rng)].clone())
                .collect();
            let title = format!("Page {i}: {}", title_terms.join(" "));
            pages.push(WebPage::new(
                name.clone(),
                title,
                body,
                link_targets[i].clone(),
            ));
            creators.push(creator);
        }
        Corpus {
            pages,
            creators,
            vocabulary,
            config: cfg.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_distinct_and_deterministic() {
        let a = word_for_index(5);
        assert_eq!(a, word_for_index(5));
        let all: std::collections::HashSet<String> = (0..2000).map(word_for_index).collect();
        assert_eq!(all.len(), 2000);
    }

    #[test]
    fn corpus_has_requested_shape() {
        let cfg = CorpusConfig::tiny();
        let corpus = CorpusGenerator::new(cfg.clone()).generate(&mut DetRng::new(1));
        assert_eq!(corpus.pages.len(), cfg.num_pages);
        assert_eq!(corpus.creators.len(), cfg.num_pages);
        assert_eq!(corpus.vocabulary.len(), cfg.vocab_size);
        // Page names are unique.
        let names: std::collections::HashSet<&str> =
            corpus.pages.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names.len(), cfg.num_pages);
        // Bodies are non-empty and links point at corpus pages.
        for p in &corpus.pages {
            assert!(!p.body.is_empty());
            for l in &p.out_links {
                assert!(corpus.index_of(l).is_some(), "dangling link {l}");
            }
        }
    }

    #[test]
    fn corpus_is_deterministic_per_seed() {
        let cfg = CorpusConfig::tiny();
        let a = CorpusGenerator::new(cfg.clone()).generate(&mut DetRng::new(42));
        let b = CorpusGenerator::new(cfg.clone()).generate(&mut DetRng::new(42));
        let c = CorpusGenerator::new(cfg).generate(&mut DetRng::new(43));
        assert_eq!(a.pages, b.pages);
        assert_ne!(a.pages, c.pages);
    }

    #[test]
    fn creators_follow_a_skewed_distribution() {
        let mut cfg = CorpusConfig::tiny();
        cfg.num_pages = 200;
        cfg.num_creators = 20;
        let corpus = CorpusGenerator::new(cfg).generate(&mut DetRng::new(3));
        let mut counts = std::collections::HashMap::new();
        for c in &corpus.creators {
            *counts.entry(*c).or_insert(0usize) += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        let min = counts.values().min().copied().unwrap_or(0);
        assert!(max > min, "creator ownership should be skewed");
    }

    #[test]
    fn index_of_finds_pages() {
        let corpus = CorpusGenerator::new(CorpusConfig::tiny()).generate(&mut DetRng::new(1));
        let name = corpus.pages[3].name.clone();
        assert_eq!(corpus.index_of(&name), Some(3));
        assert_eq!(corpus.index_of("not/a/page"), None);
    }
}
