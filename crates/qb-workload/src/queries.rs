//! Query workload generation.

use crate::corpus::Corpus;
use crate::zipf::ZipfSampler;
use qb_common::DetRng;

/// Generates keyword queries against a corpus.
///
/// Most queries are drawn from the text of an actual page (so they have
/// matching documents, like real navigational/informational queries); the
/// rest are sampled from the head of the vocabulary distribution and may
/// match nothing.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    /// Probability that a query is drawn from a real document's text.
    pub grounded_fraction: f64,
    /// Minimum number of query terms.
    pub min_terms: usize,
    /// Maximum number of query terms.
    pub max_terms: usize,
    term_dist: ZipfSampler,
    page_dist: ZipfSampler,
}

impl QueryWorkload {
    /// Create a workload for a corpus.
    pub fn new(corpus: &Corpus) -> QueryWorkload {
        QueryWorkload {
            grounded_fraction: 0.8,
            min_terms: 1,
            max_terms: 3,
            term_dist: ZipfSampler::new(corpus.vocabulary.len(), corpus.config.zipf_s),
            page_dist: ZipfSampler::new(corpus.pages.len().max(1), 0.7),
        }
    }

    /// Generate one query string.
    pub fn generate(&self, corpus: &Corpus, rng: &mut DetRng) -> String {
        let num_terms = self.min_terms + rng.gen_index(self.max_terms - self.min_terms + 1);
        if rng.gen_bool(self.grounded_fraction) && !corpus.pages.is_empty() {
            // Grounded query: pick consecutive-ish words from a popular page.
            let page = &corpus.pages[self.page_dist.sample(rng)];
            let words: Vec<&str> = page.body.split_whitespace().collect();
            if !words.is_empty() {
                let mut terms = Vec::with_capacity(num_terms);
                for _ in 0..num_terms {
                    terms.push(words[rng.gen_index(words.len())].to_string());
                }
                return terms.join(" ");
            }
        }
        // Vocabulary query biased to head terms.
        (0..num_terms)
            .map(|_| corpus.vocabulary[self.term_dist.sample(rng)].clone())
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Generate a batch of queries.
    pub fn generate_batch(&self, corpus: &Corpus, rng: &mut DetRng, count: usize) -> Vec<String> {
        (0..count).map(|_| self.generate(corpus, rng)).collect()
    }

    /// Generate a pool of `count` **distinct** queries, for samplers that
    /// layer their own popularity distribution on top (an open-loop trace
    /// picks pool entries through a Zipf sampler, so duplicates inside the
    /// pool would silently skew the intended skew). Draws until the pool is
    /// full; gives up growing — returning a shorter pool — if the corpus
    /// cannot yield `count` distinct queries.
    pub fn generate_pool(&self, corpus: &Corpus, rng: &mut DetRng, count: usize) -> Vec<String> {
        let mut seen = std::collections::HashSet::with_capacity(count);
        let mut pool = Vec::with_capacity(count);
        let mut dry_draws = 0usize;
        while pool.len() < count && dry_draws < 50 {
            let q = self.generate(corpus, rng);
            if seen.insert(q.clone()) {
                pool.push(q);
                dry_draws = 0;
            } else {
                dry_draws += 1;
            }
        }
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{CorpusConfig, CorpusGenerator};

    fn corpus() -> Corpus {
        CorpusGenerator::new(CorpusConfig::tiny()).generate(&mut DetRng::new(5))
    }

    #[test]
    fn queries_have_bounded_term_counts() {
        let c = corpus();
        let w = QueryWorkload::new(&c);
        let mut rng = DetRng::new(1);
        for q in w.generate_batch(&c, &mut rng, 200) {
            let terms = q.split_whitespace().count();
            assert!((w.min_terms..=w.max_terms).contains(&terms), "query '{q}'");
        }
    }

    #[test]
    fn grounded_queries_use_corpus_words() {
        let c = corpus();
        let mut w = QueryWorkload::new(&c);
        w.grounded_fraction = 1.0;
        let mut rng = DetRng::new(2);
        let all_words: std::collections::HashSet<&str> = c
            .pages
            .iter()
            .flat_map(|p| p.body.split_whitespace())
            .collect();
        for q in w.generate_batch(&c, &mut rng, 50) {
            for t in q.split_whitespace() {
                assert!(all_words.contains(t), "term {t} not from corpus");
            }
        }
    }

    #[test]
    fn pool_is_distinct_and_deterministic() {
        let c = corpus();
        let w = QueryWorkload::new(&c);
        let a = w.generate_pool(&c, &mut DetRng::new(4), 64);
        let b = w.generate_pool(&c, &mut DetRng::new(4), 64);
        assert_eq!(a, b);
        let distinct: std::collections::HashSet<&String> = a.iter().collect();
        assert_eq!(distinct.len(), a.len(), "pool entries must be distinct");
        assert!(!a.is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let c = corpus();
        let w = QueryWorkload::new(&c);
        let a = w.generate_batch(&c, &mut DetRng::new(3), 20);
        let b = w.generate_batch(&c, &mut DetRng::new(3), 20);
        assert_eq!(a, b);
    }
}
