//! Page update streams: the workload behind the freshness experiment (E3).

use crate::corpus::Corpus;
use crate::zipf::ZipfSampler;
use qb_common::{DetRng, SimDuration, SimInstant};
use qb_dweb::WebPage;

/// One scheduled page update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateEvent {
    /// When the creator publishes the update.
    pub at: SimInstant,
    /// Index of the page in the corpus.
    pub page_index: usize,
    /// Sequence number of the update (1-based, per stream).
    pub seq: u64,
}

/// Poisson update stream with popularity-biased page selection (popular pages
/// are edited more often, as on the real web).
#[derive(Debug, Clone)]
pub struct UpdateStream {
    /// Mean time between updates across the whole corpus.
    pub mean_interarrival: SimDuration,
    page_dist: ZipfSampler,
}

impl UpdateStream {
    /// Create a stream for a corpus.
    pub fn new(corpus: &Corpus, mean_interarrival: SimDuration) -> UpdateStream {
        UpdateStream {
            mean_interarrival,
            page_dist: ZipfSampler::new(corpus.pages.len().max(1), 0.8),
        }
    }

    /// Generate all update events in `[start, end)`.
    pub fn generate(
        &self,
        rng: &mut DetRng,
        start: SimInstant,
        end: SimInstant,
    ) -> Vec<UpdateEvent> {
        let mut events = Vec::new();
        let mut t = start;
        let mut seq = 0u64;
        loop {
            let gap = rng
                .gen_exp(self.mean_interarrival.as_micros() as f64)
                .max(1.0) as u64;
            t += SimDuration::from_micros(gap);
            if t >= end {
                break;
            }
            seq += 1;
            events.push(UpdateEvent {
                at: t,
                page_index: self.page_dist.sample(rng),
                seq,
            });
        }
        events
    }
}

/// Produce the next version of a page: part of the body is rewritten with
/// fresh marker words so the new version is detectably different both at the
/// content-hash level and at the index-term level.
pub fn mutate_page(page: &WebPage, seq: u64, rng: &mut DetRng) -> WebPage {
    let mut words: Vec<String> = page
        .body
        .split_whitespace()
        .map(|s| s.to_string())
        .collect();
    if words.is_empty() {
        words.push("refreshed".to_string());
    }
    // Replace ~20% of the words with version-tagged fresh terms.
    let replacements = (words.len() / 5).max(1);
    for _ in 0..replacements {
        let pos = rng.gen_index(words.len());
        words[pos] = format!("freshv{seq}term{}", rng.gen_index(50));
    }
    // Always append a unique freshness marker so every version has at least
    // one term only it contains.
    words.push(format!("versionmarker{seq}"));
    WebPage::new(
        page.name.clone(),
        page.title.clone(),
        words.join(" "),
        page.out_links.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{CorpusConfig, CorpusGenerator};

    fn corpus() -> Corpus {
        CorpusGenerator::new(CorpusConfig::tiny()).generate(&mut DetRng::new(5))
    }

    #[test]
    fn events_are_ordered_and_within_window() {
        let c = corpus();
        let stream = UpdateStream::new(&c, SimDuration::from_secs(10));
        let mut rng = DetRng::new(1);
        let end = SimInstant::ZERO + SimDuration::from_secs(1_000);
        let events = stream.generate(&mut rng, SimInstant::ZERO, end);
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(events.iter().all(|e| e.at < end));
        assert!(events.iter().all(|e| e.page_index < c.pages.len()));
        // Mean inter-arrival should be in the right ballpark: ~100 events.
        assert!((50..200).contains(&events.len()), "{} events", events.len());
    }

    #[test]
    fn updates_prefer_popular_pages() {
        let c = corpus();
        let stream = UpdateStream::new(&c, SimDuration::from_millis(10));
        let mut rng = DetRng::new(2);
        let events = stream.generate(
            &mut rng,
            SimInstant::ZERO,
            SimInstant::ZERO + SimDuration::from_secs(100),
        );
        let head_hits = events.iter().filter(|e| e.page_index < 3).count();
        assert!(head_hits as f64 > events.len() as f64 * 0.2);
    }

    #[test]
    fn mutate_changes_content_and_marks_version() {
        let c = corpus();
        let mut rng = DetRng::new(3);
        let v2 = mutate_page(&c.pages[0], 2, &mut rng);
        assert_eq!(v2.name, c.pages[0].name);
        assert_ne!(v2.body, c.pages[0].body);
        assert!(v2.body.contains("versionmarker2"));
        let v3 = mutate_page(&v2, 3, &mut rng);
        assert!(v3.body.contains("versionmarker3"));
    }
}
