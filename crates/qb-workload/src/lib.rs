//! Synthetic workloads: corpus, link graph, queries, updates and advertisers.
//!
//! The paper has no public dataset (its prototype hosted a Wikipedia
//! snapshot we do not have); per the substitution rule this crate generates
//! the closest synthetic equivalents with the skew that drives every
//! experiment:
//!
//! * term frequencies follow a Zipf distribution (natural-language-like),
//! * page popularity (in-degree) follows preferential attachment
//!   (Barabási–Albert), giving the heavy tail the incentive experiments need,
//! * page updates arrive as a popularity-biased Poisson stream (freshness),
//! * queries are short (1–4 terms) and biased towards head terms,
//! * advertisers bid on head terms with Zipf-distributed budgets.

pub mod ads;
pub mod corpus;
pub mod linkgraph;
pub mod queries;
pub mod updates;
pub mod zipf;

pub use ads::{AdSpec, AdvertiserWorkload};
pub use corpus::{Corpus, CorpusConfig, CorpusGenerator};
pub use linkgraph::generate_links;
pub use queries::QueryWorkload;
pub use updates::{mutate_page, UpdateEvent, UpdateStream};
pub use zipf::ZipfSampler;
