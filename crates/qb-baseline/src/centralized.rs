//! The centralized ("Web 2.0") search engine baseline.

use crate::CrawlDoc;
use qb_common::{QbError, QbResult, SimDuration, SimInstant};
use qb_index::{search, Analyzer, Bm25, InvertedIndex, Query, QueryMode, ScoredDoc};

/// Configuration of the centralized baseline.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CentralizedConfig {
    /// How often the crawler re-crawls the whole corpus.
    pub crawl_interval: SimDuration,
    /// Base request service latency (network + processing) at an idle server.
    pub base_latency: SimDuration,
    /// Maximum sustainable queries per second.
    pub capacity_qps: f64,
    /// Results returned per query.
    pub top_k: usize,
}

impl Default for CentralizedConfig {
    fn default() -> Self {
        CentralizedConfig {
            crawl_interval: SimDuration::from_secs(3_600),
            base_latency: SimDuration::from_millis(60),
            capacity_qps: 200.0,
            top_k: 10,
        }
    }
}

/// A single-server search engine with a crawler-fed index, finite capacity
/// and a single point of failure.
#[derive(Debug, Clone)]
pub struct CentralizedEngine {
    config: CentralizedConfig,
    analyzer: Analyzer,
    index: InvertedIndex,
    last_crawl: Option<SimInstant>,
    /// Whether the server (or its network zone) is reachable.
    pub online: bool,
    /// Extra query load (e.g. a DDoS flood) in queries per second, added on
    /// top of legitimate load when computing queueing delay and overload.
    pub attack_load_qps: f64,
}

impl CentralizedEngine {
    /// Create an engine with an empty index.
    pub fn new(config: CentralizedConfig) -> CentralizedEngine {
        CentralizedEngine {
            config,
            analyzer: Analyzer::new(),
            index: InvertedIndex::new(),
            last_crawl: None,
            online: true,
            attack_load_qps: 0.0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CentralizedConfig {
        &self.config
    }

    /// Time of the last completed crawl.
    pub fn last_crawl(&self) -> Option<SimInstant> {
        self.last_crawl
    }

    /// Number of documents currently indexed.
    pub fn indexed_docs(&self) -> usize {
        self.index.doc_count()
    }

    /// Re-crawl the whole corpus: the index now reflects the versions passed
    /// in. (A real crawler discovers changes page by page; a full re-crawl at
    /// the interval boundary is the *optimistic* model for the baseline —
    /// its freshness can only be worse in practice.)
    pub fn crawl(&mut self, docs: &[CrawlDoc], now: SimInstant) {
        for d in docs {
            self.index
                .index_text(&self.analyzer, &d.name, d.version, d.creator, &d.text);
        }
        self.last_crawl = Some(now);
    }

    /// Crawl only if the crawl interval has elapsed since the last crawl.
    /// Returns true when a crawl happened.
    pub fn maybe_crawl(&mut self, docs: &[CrawlDoc], now: SimInstant) -> bool {
        let due = match self.last_crawl {
            None => true,
            Some(t) => now.since(t) >= self.config.crawl_interval,
        };
        if due {
            self.crawl(docs, now);
        }
        due
    }

    /// Serve a query under `offered_load_qps` legitimate load (plus any
    /// configured attack load). Fails when the server is offline/unreachable
    /// or the total load exceeds capacity; otherwise the latency grows with
    /// utilisation (M/M/1-style 1/(1-ρ) factor).
    pub fn search(
        &self,
        query_text: &str,
        offered_load_qps: f64,
        now: SimInstant,
    ) -> QbResult<(Vec<ScoredDoc>, SimDuration)> {
        let _ = now;
        if !self.online {
            return Err(QbError::Network("central server unreachable".into()));
        }
        let total_load = offered_load_qps + self.attack_load_qps;
        if total_load >= self.config.capacity_qps {
            return Err(QbError::Network(format!(
                "central server overloaded: {total_load:.0} qps offered, capacity {:.0} qps",
                self.config.capacity_qps
            )));
        }
        let query = Query::parse(&self.analyzer, query_text, QueryMode::And)?;
        let results = search(
            &self.index,
            &query,
            &Bm25::default(),
            None,
            0.0,
            self.config.top_k,
        );
        let utilization = (total_load / self.config.capacity_qps).min(0.99);
        let latency_us =
            self.config.base_latency.as_micros() as f64 / (1.0 - utilization).max(0.01);
        Ok((results, SimDuration::from_micros(latency_us as u64)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<CrawlDoc> {
        vec![
            CrawlDoc {
                name: "a".into(),
                version: 1,
                creator: 1,
                text: "decentralized web search".into(),
            },
            CrawlDoc {
                name: "b".into(),
                version: 1,
                creator: 2,
                text: "centralized server farm".into(),
            },
        ]
    }

    #[test]
    fn crawl_then_search() {
        let mut e = CentralizedEngine::new(CentralizedConfig::default());
        assert_eq!(e.indexed_docs(), 0);
        e.crawl(&docs(), SimInstant::ZERO);
        assert_eq!(e.indexed_docs(), 2);
        let (results, latency) = e.search("decentralized", 10.0, SimInstant::ZERO).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].name, "a");
        assert!(latency >= e.config().base_latency);
    }

    #[test]
    fn maybe_crawl_respects_interval() {
        let mut e = CentralizedEngine::new(CentralizedConfig {
            crawl_interval: SimDuration::from_secs(100),
            ..CentralizedConfig::default()
        });
        assert!(e.maybe_crawl(&docs(), SimInstant::ZERO));
        assert!(!e.maybe_crawl(&docs(), SimInstant::ZERO + SimDuration::from_secs(50)));
        assert!(e.maybe_crawl(&docs(), SimInstant::ZERO + SimDuration::from_secs(150)));
    }

    #[test]
    fn stale_until_next_crawl() {
        let mut e = CentralizedEngine::new(CentralizedConfig::default());
        e.crawl(&docs(), SimInstant::ZERO);
        // The corpus moves on to version 2, but the index still has version 1.
        let (results, _) = e.search("decentralized", 1.0, SimInstant::ZERO).unwrap();
        assert_eq!(results[0].version, 1);
        let mut updated = docs();
        updated[0].version = 2;
        updated[0].text = "decentralized web search refreshed".into();
        e.crawl(&updated, SimInstant::ZERO + SimDuration::from_secs(3600));
        let (results, _) = e.search("decentralized", 1.0, SimInstant::ZERO).unwrap();
        assert_eq!(results[0].version, 2);
    }

    #[test]
    fn latency_grows_with_load_and_overload_fails() {
        let mut e = CentralizedEngine::new(CentralizedConfig::default());
        e.crawl(&docs(), SimInstant::ZERO);
        let (_, idle) = e.search("web", 1.0, SimInstant::ZERO).unwrap();
        let (_, busy) = e.search("web", 180.0, SimInstant::ZERO).unwrap();
        assert!(busy > idle);
        assert!(e.search("web", 500.0, SimInstant::ZERO).is_err());
        // DDoS: attack load pushes legitimate users into overload.
        e.attack_load_qps = 1_000.0;
        let err = e.search("web", 1.0, SimInstant::ZERO).unwrap_err();
        assert!(err.is_availability());
    }

    #[test]
    fn offline_server_serves_nothing() {
        let mut e = CentralizedEngine::new(CentralizedConfig::default());
        e.crawl(&docs(), SimInstant::ZERO);
        e.online = false;
        assert!(e.search("web", 1.0, SimInstant::ZERO).is_err());
    }
}
