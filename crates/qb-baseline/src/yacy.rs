//! A YaCy-style peer-to-peer search engine baseline: the index is distributed
//! over peers by term hash, but content is discovered by periodic crawling
//! and there are no incentives and no verification.

use crate::CrawlDoc;
use qb_common::{Hash256, QbError, QbResult, SimDuration, SimInstant};
use qb_index::{Analyzer, Bm25, InvertedIndex, Query, QueryMode, ScoredDoc, Scorer};
use qb_simnet::{parallel_latency, SimNet};

/// Configuration of the YaCy-style baseline.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct YacyConfig {
    /// Number of index peers (peers `0..num_peers` of the simulated network).
    pub num_peers: usize,
    /// How often each peer re-crawls its share of the corpus.
    pub crawl_interval: SimDuration,
    /// Results returned per query.
    pub top_k: usize,
}

impl Default for YacyConfig {
    fn default() -> Self {
        YacyConfig {
            num_peers: 16,
            crawl_interval: SimDuration::from_secs(3_600),
            top_k: 10,
        }
    }
}

/// The peer-to-peer crawling engine.
#[derive(Debug, Clone)]
pub struct YacyEngine {
    config: YacyConfig,
    analyzer: Analyzer,
    /// Per-peer term-partitioned indexes (peer `i` holds the terms that hash
    /// to it).
    peer_indexes: Vec<InvertedIndex>,
    last_crawl: Option<SimInstant>,
}

impl YacyEngine {
    /// Create the engine with empty indexes.
    pub fn new(config: YacyConfig) -> YacyEngine {
        YacyEngine {
            analyzer: Analyzer::new(),
            peer_indexes: (0..config.num_peers)
                .map(|_| InvertedIndex::new())
                .collect(),
            last_crawl: None,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &YacyConfig {
        &self.config
    }

    /// Which peer is responsible for a term.
    pub fn peer_for_term(&self, term: &str) -> u64 {
        let h = Hash256::digest_parts(&[b"yacy:", term.as_bytes()]);
        let x = u64::from_be_bytes(h.as_bytes()[..8].try_into().expect("8 bytes"));
        x % self.config.num_peers as u64
    }

    /// Time of the last crawl.
    pub fn last_crawl(&self) -> Option<SimInstant> {
        self.last_crawl
    }

    /// Crawl the corpus: every document is analyzed once and each term's
    /// postings go to the peer responsible for that term.
    pub fn crawl(&mut self, docs: &[CrawlDoc], now: SimInstant) {
        for d in docs {
            let tf = self.analyzer.term_frequencies(&d.text);
            // Group terms by responsible peer and index the document there
            // with only that peer's terms.
            let mut by_peer: std::collections::HashMap<u64, Vec<(String, u32)>> =
                std::collections::HashMap::new();
            for (term, freq) in tf {
                by_peer
                    .entry(self.peer_for_term(&term))
                    .or_default()
                    .push((term, freq));
            }
            for (peer, terms) in by_peer {
                self.peer_indexes[peer as usize]
                    .index_document(&d.name, d.version, d.creator, &terms);
            }
        }
        self.last_crawl = Some(now);
    }

    /// Crawl only when the interval has elapsed. Returns true when crawled.
    pub fn maybe_crawl(&mut self, docs: &[CrawlDoc], now: SimInstant) -> bool {
        let due = match self.last_crawl {
            None => true,
            Some(t) => now.since(t) >= self.config.crawl_interval,
        };
        if due {
            self.crawl(docs, now);
        }
        due
    }

    /// Answer a query from `client`: one RPC per query term to the peer
    /// responsible for that term (charged on the simulated network, so
    /// offline peers make their terms unavailable), then merge and score.
    pub fn search(
        &self,
        net: &mut SimNet,
        client: u64,
        query_text: &str,
    ) -> QbResult<(Vec<ScoredDoc>, SimDuration, u64)> {
        let query = Query::parse(&self.analyzer, query_text, QueryMode::And)?;
        let mut latencies = Vec::new();
        let mut messages = 0u64;
        // Collect per-term candidate documents from the responsible peers.
        let mut per_term: Vec<(String, u64, &InvertedIndex)> = Vec::new();
        for term in &query.terms {
            let peer = self.peer_for_term(term);
            messages += 1;
            let (res, lat) = net.rpc_or_timeout(client, peer, 64, 4096);
            latencies.push(lat);
            if res.is_err() {
                // Term unavailable: conjunctive query cannot be answered.
                return Err(QbError::Network(format!(
                    "index peer {peer} for term '{term}' unreachable"
                )));
            }
            per_term.push((term.clone(), peer, &self.peer_indexes[peer as usize]));
        }
        // Intersect doc ids across terms.
        let mut candidate_ids: Option<Vec<u64>> = None;
        for (term, _, index) in &per_term {
            let ids: Vec<u64> = index
                .postings(term)
                .map(|l| l.postings().iter().map(|p| p.doc_id).collect())
                .unwrap_or_default();
            candidate_ids = Some(match candidate_ids {
                None => ids,
                Some(prev) => prev.into_iter().filter(|d| ids.contains(d)).collect(),
            });
        }
        let candidate_ids = candidate_ids.unwrap_or_default();
        // Score: sum BM25 contributions from each term's home peer.
        let scorer = Bm25::default();
        let mut results: Vec<ScoredDoc> = Vec::new();
        for doc in candidate_ids {
            let mut score = 0.0;
            let mut meta: Option<(&str, u64, u64)> = None;
            for (term, _, index) in &per_term {
                if let (Some(list), Some(m)) = (index.postings(term), index.docs().get(doc)) {
                    if let Some(tf) = list.get(doc) {
                        score += scorer.score(
                            tf,
                            m.length,
                            index.docs().avg_length(),
                            list.len(),
                            index.doc_count().max(1),
                        );
                        meta = Some((&m.name, m.version, m.creator));
                    }
                }
            }
            if let Some((name, version, creator)) = meta {
                results.push(ScoredDoc {
                    doc_id: doc,
                    name: name.to_string(),
                    score,
                    version,
                    creator,
                });
            }
        }
        results.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.doc_id.cmp(&b.doc_id))
        });
        results.truncate(self.config.top_k);
        Ok((results, parallel_latency(&latencies), messages))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_simnet::NetConfig;

    fn docs() -> Vec<CrawlDoc> {
        vec![
            CrawlDoc {
                name: "p/one".into(),
                version: 1,
                creator: 1,
                text: "peer to peer crawling search engine".into(),
            },
            CrawlDoc {
                name: "p/two".into(),
                version: 1,
                creator: 2,
                text: "decentralized web without crawling".into(),
            },
        ]
    }

    fn setup() -> (SimNet, YacyEngine) {
        let net = SimNet::new(32, NetConfig::lan(), 1);
        let engine = YacyEngine::new(YacyConfig {
            num_peers: 16,
            ..YacyConfig::default()
        });
        (net, engine)
    }

    #[test]
    fn crawl_then_search_finds_documents() {
        let (mut net, mut e) = setup();
        e.crawl(&docs(), SimInstant::ZERO);
        let (results, latency, messages) = e.search(&mut net, 20, "crawling").unwrap();
        assert_eq!(results.len(), 2);
        assert!(latency.as_micros() > 0);
        assert!(messages >= 1);
        let (results, _, _) = e.search(&mut net, 20, "decentralized web").unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].name, "p/two");
    }

    #[test]
    fn term_partitioning_is_deterministic_and_spread() {
        let (_, e) = setup();
        assert_eq!(e.peer_for_term("honey"), e.peer_for_term("honey"));
        let peers: std::collections::HashSet<u64> = (0..200)
            .map(|i| e.peer_for_term(&format!("term{i}")))
            .collect();
        assert!(peers.len() > 4, "terms should spread over peers");
        assert!(peers.iter().all(|&p| p < 16));
    }

    #[test]
    fn offline_index_peer_makes_terms_unavailable() {
        let (mut net, mut e) = setup();
        e.crawl(&docs(), SimInstant::ZERO);
        let peer = e.peer_for_term(&Analyzer::stem("crawling"));
        net.set_online(peer, false);
        assert!(e.search(&mut net, 20, "crawling").is_err());
    }

    #[test]
    fn maybe_crawl_respects_interval_and_staleness_shows() {
        let (mut net, mut e) = setup();
        assert!(e.maybe_crawl(&docs(), SimInstant::ZERO));
        // The corpus updates, but the next crawl is not due yet.
        let mut updated = docs();
        updated[1].version = 2;
        updated[1].text = "decentralized web without crawling freshterm".into();
        assert!(!e.maybe_crawl(&updated, SimInstant::ZERO + SimDuration::from_secs(10)));
        let (results, _, _) = e.search(&mut net, 20, "decentralized").unwrap();
        assert_eq!(results[0].version, 1, "still serving the stale version");
        // After the interval the crawler picks up version 2.
        assert!(e.maybe_crawl(&updated, SimInstant::ZERO + SimDuration::from_secs(7200)));
        let (results, _, _) = e.search(&mut net, 20, "freshterm").unwrap();
        assert_eq!(results[0].version, 2);
    }
}
