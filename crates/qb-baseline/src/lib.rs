//! Baseline search engines the paper positions QueenBee against.
//!
//! * [`CentralizedEngine`] — a Web 2.0 search service: a single server with a
//!   crawler-fed index and finite serving capacity. It is the comparison
//!   point for the latency/throughput claim (E1) and the DDoS / partition
//!   resilience claim (E2).
//! * [`YacyEngine`] — a YaCy-style peer-to-peer engine: the index is
//!   distributed over peers by term hash, but content is discovered by
//!   periodic **crawling** and there is no incentive or verification scheme.
//!   It is the comparison point for the freshness claim (E3); the paper cites
//!   YaCy as the closest existing system.

pub mod centralized;
pub mod yacy;

pub use centralized::{CentralizedConfig, CentralizedEngine};
pub use yacy::{YacyConfig, YacyEngine};

/// A snapshot of one page for a crawler: name, current version, creator and
/// searchable text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrawlDoc {
    /// Page name.
    pub name: String,
    /// Version visible to the crawler at crawl time.
    pub version: u64,
    /// Creator account.
    pub creator: u64,
    /// Searchable text.
    pub text: String,
}
