//! Deterministic peer-to-peer network simulator.
//!
//! Every protocol crate in the reproduction (DHT, storage, DWeb, QueenBee)
//! sends its messages through [`SimNet`]. The simulator models:
//!
//! * per-link latency through a pluggable [`LatencyModel`],
//! * bandwidth-proportional transfer time for large payloads,
//! * node liveness (churn, crash failures, targeted DDoS),
//! * network partitions (a node can only reach nodes in the same partition
//!   group),
//! * random message loss,
//! * per-message and per-byte accounting for the cost experiments.
//!
//! Time is virtual and advances explicitly. Simple callers execute an RPC
//! synchronously and accumulate its sampled latency themselves; rounds of
//! parallel RPCs charge the maximum latency of the round via
//! [`parallel_latency`]. Event-driven callers — the DHT's per-lookup state
//! machines and the pipelined query engine in
//! `qb-queenbee::query::pipeline` — instead use **non-blocking request
//! handles**: [`SimNet::send_async_at`] issues one RPC at a chosen virtual
//! instant (failure sampling and message/byte accounting happen at issue
//! time) and [`SimNet::begin_async_op`] tracks an already-executed compound
//! operation such as a storage-DAG fetch. Both respect a per-link in-flight
//! limit ([`NetConfig::max_in_flight_per_link`]) that queues excess
//! operations behind the earliest completion and charges the queueing delay
//! to [`NetStats`]. [`SimNet::poll_complete`] resolves a handle at a given
//! instant and reports when a pending one is due, so a driver can advance
//! to exactly the next event: hops from different concurrent lookups
//! interleave on contended links while every message stays deterministically
//! accounted and every run is bit-identical for a given seed.

pub mod latency;
pub mod net;
pub mod stats;

pub use latency::LatencyModel;
pub use net::{AsyncCompletion, NetConfig, Poll, RpcError, RpcHandle, SimNet};
pub use stats::{LatencyRecorder, NetStats, Summary};

use qb_common::SimDuration;

/// Latency of a round of RPCs issued in parallel: the slowest one dominates.
pub fn parallel_latency(latencies: &[SimDuration]) -> SimDuration {
    latencies
        .iter()
        .copied()
        .fold(SimDuration::ZERO, SimDuration::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_latency_is_max() {
        let l = [
            SimDuration::from_millis(3),
            SimDuration::from_millis(10),
            SimDuration::from_millis(7),
        ];
        assert_eq!(parallel_latency(&l), SimDuration::from_millis(10));
        assert_eq!(parallel_latency(&[]), SimDuration::ZERO);
    }
}
