//! Deterministic peer-to-peer network simulator.
//!
//! Every protocol crate in the reproduction (DHT, storage, DWeb, QueenBee)
//! sends its messages through [`SimNet`]. The simulator models:
//!
//! * per-link latency through a pluggable [`LatencyModel`],
//! * bandwidth-proportional transfer time for large payloads,
//! * node liveness (churn, crash failures, targeted DDoS),
//! * network partitions (a node can only reach nodes in the same partition
//!   group),
//! * random message loss,
//! * per-message and per-byte accounting for the cost experiments.
//!
//! The simulator is *not* event driven: operations are executed by the
//! calling protocol code, and the latency of an operation is accumulated
//! explicitly. Rounds of parallel RPCs (e.g. Kademlia's α-parallel lookups)
//! charge the maximum latency of the round via [`parallel_latency`], while
//! sequential phases add up. This keeps the whole stack synchronous,
//! deterministic and easy to test, while producing realistic latency,
//! message-count and availability shapes — which is all the experiments in
//! EXPERIMENTS.md measure.
//!
//! For callers that overlap work instead of running stage-by-stage (the
//! pipelined query engine in `qb-queenbee::query::pipeline`), the network
//! additionally hands out **non-blocking request handles**:
//! [`SimNet::send_async`] issues a single RPC and [`SimNet::begin_async_op`]
//! wraps an already-executed compound operation (an iterative DHT lookup)
//! into the in-flight tracker; both respect a per-link in-flight limit
//! ([`NetConfig::max_in_flight_per_link`]) that queues excess operations
//! behind the earliest completion and charges the queueing delay to
//! [`NetStats`]. [`SimNet::poll_complete`] resolves a handle at a given
//! instant, so a driver can interleave issue and completion on a virtual
//! timeline while every message stays deterministically accounted.

pub mod latency;
pub mod net;
pub mod stats;

pub use latency::LatencyModel;
pub use net::{AsyncCompletion, NetConfig, Poll, RpcError, RpcHandle, SimNet};
pub use stats::{LatencyRecorder, NetStats, Summary};

use qb_common::SimDuration;

/// Latency of a round of RPCs issued in parallel: the slowest one dominates.
pub fn parallel_latency(latencies: &[SimDuration]) -> SimDuration {
    latencies
        .iter()
        .copied()
        .fold(SimDuration::ZERO, SimDuration::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_latency_is_max() {
        let l = [
            SimDuration::from_millis(3),
            SimDuration::from_millis(10),
            SimDuration::from_millis(7),
        ];
        assert_eq!(parallel_latency(&l), SimDuration::from_millis(10));
        assert_eq!(parallel_latency(&[]), SimDuration::ZERO);
    }
}
