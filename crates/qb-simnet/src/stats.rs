//! Traffic accounting and latency summaries used by the experiment harness.

use qb_common::SimDuration;

/// Cumulative traffic counters maintained by [`crate::SimNet`].
#[derive(Debug, Default, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct NetStats {
    /// Individual messages put on the wire (an RPC counts as two).
    pub messages: u64,
    /// Total payload bytes transferred.
    pub bytes: u64,
    /// Completed request/response RPCs.
    pub rpcs: u64,
    /// RPCs that failed (offline peer, partition, drop).
    pub failed_rpcs: u64,
    /// Messages lost to random drop.
    pub dropped_messages: u64,
    /// Peers that transitioned offline→online (churn: joins, restarts,
    /// heals).
    pub peer_up_events: u64,
    /// Peers that transitioned online→offline (churn: crashes, graceful
    /// departures).
    pub peer_down_events: u64,
    /// Asynchronous operations issued (`send_async` / `begin_async_op`).
    pub async_ops: u64,
    /// Asynchronous operations that had to queue behind a link's in-flight
    /// limit before starting.
    pub async_queued_ops: u64,
    /// Total queueing delay (µs) charged to asynchronous operations by the
    /// per-link in-flight limits.
    pub async_queue_delay_us: u64,
    /// Hedged (speculative duplicate) fetches issued after a hedge timer
    /// expired. All hedge traffic is charged to `messages`/`bytes` like any
    /// other RPC — this counter only attributes it.
    pub hedges_fired: u64,
    /// Hedged fetches whose response arrived before the primary's (the
    /// hedge "won" and the primary was cancelled).
    pub hedges_won: u64,
    /// Payload bytes of hedge losers: traffic already charged to `bytes`
    /// whose response was discarded because the other leg won.
    pub hedges_wasted_bytes: u64,
}

impl NetStats {
    /// Difference since a previous snapshot (for per-phase accounting).
    pub fn delta_since(&self, earlier: &NetStats) -> NetStats {
        NetStats {
            messages: self.messages.saturating_sub(earlier.messages),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            rpcs: self.rpcs.saturating_sub(earlier.rpcs),
            failed_rpcs: self.failed_rpcs.saturating_sub(earlier.failed_rpcs),
            dropped_messages: self
                .dropped_messages
                .saturating_sub(earlier.dropped_messages),
            peer_up_events: self.peer_up_events.saturating_sub(earlier.peer_up_events),
            peer_down_events: self
                .peer_down_events
                .saturating_sub(earlier.peer_down_events),
            async_ops: self.async_ops.saturating_sub(earlier.async_ops),
            async_queued_ops: self
                .async_queued_ops
                .saturating_sub(earlier.async_queued_ops),
            async_queue_delay_us: self
                .async_queue_delay_us
                .saturating_sub(earlier.async_queue_delay_us),
            hedges_fired: self.hedges_fired.saturating_sub(earlier.hedges_fired),
            hedges_won: self.hedges_won.saturating_sub(earlier.hedges_won),
            hedges_wasted_bytes: self
                .hedges_wasted_bytes
                .saturating_sub(earlier.hedges_wasted_bytes),
        }
    }
}

impl qb_trace::MetricsSource for NetStats {
    fn metrics_into(&self, out: &mut qb_trace::MetricsSnapshot) {
        out.add_counter("net.messages", self.messages);
        out.add_counter("net.bytes", self.bytes);
        out.add_counter("net.rpcs", self.rpcs);
        out.add_counter("net.failed_rpcs", self.failed_rpcs);
        out.add_counter("net.dropped_messages", self.dropped_messages);
        out.add_counter("net.peer_up_events", self.peer_up_events);
        out.add_counter("net.peer_down_events", self.peer_down_events);
        out.add_counter("net.async_ops", self.async_ops);
        out.add_counter("net.async_queued_ops", self.async_queued_ops);
        out.add_counter("net.async_queue_delay_us", self.async_queue_delay_us);
        out.add_counter("net.hedges_fired", self.hedges_fired);
        out.add_counter("net.hedges_won", self.hedges_won);
        out.add_counter("net.hedges_wasted_bytes", self.hedges_wasted_bytes);
    }
}

/// Collects latency samples and produces percentile summaries; used for every
/// latency/throughput table in EXPERIMENTS.md.
#[derive(Debug, Default, Clone)]
pub struct LatencyRecorder {
    samples_micros: Vec<u64>,
}

/// Summary statistics over a set of latency samples.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    pub count: usize,
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub p90_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
}

impl LatencyRecorder {
    /// Create an empty recorder.
    pub fn new() -> LatencyRecorder {
        LatencyRecorder::default()
    }

    /// Record one latency sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples_micros.push(d.as_micros());
    }

    /// Number of samples recorded so far.
    pub fn len(&self) -> usize {
        self.samples_micros.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_micros.is_empty()
    }

    /// Percentile (0..=100) in milliseconds; 0.0 for an empty recorder.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        if self.samples_micros.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples_micros.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank.min(sorted.len() - 1)] as f64 / 1_000.0
    }

    /// Mean in milliseconds; 0.0 for an empty recorder.
    pub fn mean_ms(&self) -> f64 {
        if self.samples_micros.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.samples_micros.iter().sum();
        sum as f64 / self.samples_micros.len() as f64 / 1_000.0
    }

    /// Full summary.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.samples_micros.len(),
            mean_ms: self.mean_ms(),
            p50_ms: self.percentile_ms(50.0),
            p90_ms: self.percentile_ms(90.0),
            p99_ms: self.percentile_ms(99.0),
            max_ms: self.percentile_ms(100.0),
        }
    }

    /// Merge another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples_micros.extend_from_slice(&other.samples_micros);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_is_all_zeroes() {
        let r = LatencyRecorder::new();
        assert!(r.is_empty());
        assert_eq!(r.mean_ms(), 0.0);
        assert_eq!(r.percentile_ms(99.0), 0.0);
        assert_eq!(r.summary().count, 0);
    }

    #[test]
    fn percentiles_are_ordered() {
        let mut r = LatencyRecorder::new();
        for i in 1..=100u64 {
            r.record(SimDuration::from_millis(i));
        }
        let s = r.summary();
        assert_eq!(s.count, 100);
        assert!(s.p50_ms <= s.p90_ms);
        assert!(s.p90_ms <= s.p99_ms);
        assert!(s.p99_ms <= s.max_ms);
        assert!((s.p50_ms - 50.0).abs() <= 1.0);
        assert_eq!(s.max_ms, 100.0);
    }

    #[test]
    fn mean_is_correct() {
        let mut r = LatencyRecorder::new();
        r.record(SimDuration::from_millis(10));
        r.record(SimDuration::from_millis(20));
        assert!((r.mean_ms() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyRecorder::new();
        let mut b = LatencyRecorder::new();
        a.record(SimDuration::from_millis(1));
        b.record(SimDuration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!((a.mean_ms() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn netstats_delta() {
        let a = NetStats {
            messages: 10,
            bytes: 100,
            rpcs: 5,
            failed_rpcs: 1,
            dropped_messages: 0,
            peer_up_events: 1,
            peer_down_events: 2,
            async_ops: 3,
            async_queued_ops: 1,
            async_queue_delay_us: 40,
            hedges_fired: 2,
            hedges_won: 1,
            hedges_wasted_bytes: 64,
        };
        let b = NetStats {
            messages: 25,
            bytes: 300,
            rpcs: 12,
            failed_rpcs: 2,
            dropped_messages: 1,
            peer_up_events: 2,
            peer_down_events: 5,
            async_ops: 7,
            async_queued_ops: 2,
            async_queue_delay_us: 90,
            hedges_fired: 5,
            hedges_won: 2,
            hedges_wasted_bytes: 100,
        };
        let d = b.delta_since(&a);
        assert_eq!(d.messages, 15);
        assert_eq!(d.bytes, 200);
        assert_eq!(d.rpcs, 7);
        assert_eq!(d.failed_rpcs, 1);
        assert_eq!(d.dropped_messages, 1);
        assert_eq!(d.peer_up_events, 1);
        assert_eq!(d.peer_down_events, 3);
        assert_eq!(d.async_ops, 4);
        assert_eq!(d.async_queued_ops, 1);
        assert_eq!(d.async_queue_delay_us, 50);
        assert_eq!(d.hedges_fired, 3);
        assert_eq!(d.hedges_won, 1);
        assert_eq!(d.hedges_wasted_bytes, 36);
    }
}
