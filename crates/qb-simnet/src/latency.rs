//! Per-link latency models.

use qb_common::{DetRng, SimDuration};

/// How one-way network latency between two peers is sampled.
///
/// The defaults are chosen to mimic wide-area peer-to-peer deployments
/// (tens of milliseconds between zones, a few milliseconds within a zone),
/// matching the DWeb setting of the paper where peers are end-user devices
/// scattered across the Internet.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum LatencyModel {
    /// Fixed latency for every message.
    Constant { micros: u64 },
    /// Uniformly distributed latency in `[lo_micros, hi_micros]`.
    Uniform { lo_micros: u64, hi_micros: u64 },
    /// Log-normal latency: `exp(N(mu, sigma))` milliseconds, the classic
    /// heavy-tailed WAN model. `median_ms` is `exp(mu)`.
    LogNormal { median_ms: f64, sigma: f64 },
    /// Zone-based latency: peers in the same zone see `intra_micros`,
    /// peers in different zones see `inter_micros` (both with +/-20% jitter).
    Zoned {
        intra_micros: u64,
        inter_micros: u64,
    },
}

impl Default for LatencyModel {
    fn default() -> Self {
        // A reasonable WAN default: median 40ms one-way, moderately heavy tail.
        LatencyModel::LogNormal {
            median_ms: 40.0,
            sigma: 0.5,
        }
    }
}

impl LatencyModel {
    /// A LAN-like model, useful in unit tests where latency is irrelevant.
    pub fn lan() -> LatencyModel {
        LatencyModel::Constant { micros: 500 }
    }

    /// A WAN model with the given one-way median in milliseconds.
    pub fn wan(median_ms: f64) -> LatencyModel {
        LatencyModel::LogNormal {
            median_ms,
            sigma: 0.5,
        }
    }

    /// Sample the one-way latency between `zone_a` and `zone_b`.
    pub fn sample(&self, rng: &mut DetRng, zone_a: usize, zone_b: usize) -> SimDuration {
        match self {
            LatencyModel::Constant { micros } => SimDuration::from_micros(*micros),
            LatencyModel::Uniform {
                lo_micros,
                hi_micros,
            } => {
                let (lo, hi) = (*lo_micros.min(hi_micros), *lo_micros.max(hi_micros));
                if lo == hi {
                    SimDuration::from_micros(lo)
                } else {
                    SimDuration::from_micros(lo + rng.gen_range(hi - lo + 1))
                }
            }
            LatencyModel::LogNormal { median_ms, sigma } => {
                let mu = median_ms.max(1e-3).ln();
                let z = rng.gen_normal(0.0, 1.0);
                let ms = (mu + sigma * z).exp();
                // Clamp the tail so a single pathological sample cannot distort
                // an entire experiment run.
                SimDuration::from_millis_f64(ms.min(median_ms * 50.0))
            }
            LatencyModel::Zoned {
                intra_micros,
                inter_micros,
            } => {
                let base = if zone_a == zone_b {
                    *intra_micros
                } else {
                    *inter_micros
                };
                let jitter = (base as f64) * 0.2 * (rng.gen_f64() * 2.0 - 1.0);
                SimDuration::from_micros(((base as f64) + jitter).max(1.0) as u64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let m = LatencyModel::Constant { micros: 1234 };
        let mut rng = DetRng::new(1);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng, 0, 1).as_micros(), 1234);
        }
    }

    #[test]
    fn uniform_stays_in_range() {
        let m = LatencyModel::Uniform {
            lo_micros: 100,
            hi_micros: 200,
        };
        let mut rng = DetRng::new(2);
        for _ in 0..1000 {
            let v = m.sample(&mut rng, 0, 0).as_micros();
            assert!((100..=200).contains(&v));
        }
    }

    #[test]
    fn lognormal_median_roughly_matches() {
        let m = LatencyModel::wan(40.0);
        let mut rng = DetRng::new(3);
        let mut samples: Vec<f64> = (0..5000)
            .map(|_| m.sample(&mut rng, 0, 1).as_millis_f64())
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((30.0..50.0).contains(&median), "median={median}");
    }

    #[test]
    fn zoned_intra_faster_than_inter() {
        let m = LatencyModel::Zoned {
            intra_micros: 2_000,
            inter_micros: 60_000,
        };
        let mut rng = DetRng::new(4);
        let intra: u64 = (0..100).map(|_| m.sample(&mut rng, 1, 1).as_micros()).sum();
        let inter: u64 = (0..100).map(|_| m.sample(&mut rng, 1, 2).as_micros()).sum();
        assert!(intra < inter);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = LatencyModel::default();
        let mut a = DetRng::new(99);
        let mut b = DetRng::new(99);
        for _ in 0..50 {
            assert_eq!(m.sample(&mut a, 0, 1), m.sample(&mut b, 0, 1));
        }
    }
}
