//! The simulated network: liveness, partitions, message accounting and the
//! RPC cost model used by every protocol crate.

use crate::latency::LatencyModel;
use crate::stats::NetStats;
use qb_common::{DetRng, QbError, SimDuration, SimInstant};

/// Static configuration of a simulated network.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct NetConfig {
    /// One-way latency model between peers.
    pub latency: LatencyModel,
    /// Probability that any single message is silently dropped.
    pub drop_probability: f64,
    /// Effective per-peer bandwidth in bytes per second; payload transfer
    /// time is added on top of propagation latency.
    pub bandwidth_bytes_per_sec: u64,
    /// Number of latency zones peers are spread over (round-robin).
    pub zones: usize,
    /// Latency charged when an RPC to a dead/unreachable peer times out.
    pub timeout: SimDuration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            latency: LatencyModel::default(),
            drop_probability: 0.0,
            bandwidth_bytes_per_sec: 12_500_000, // ~100 Mbit/s
            zones: 8,
            timeout: SimDuration::from_millis(500),
        }
    }
}

impl NetConfig {
    /// A fast, lossless LAN configuration for unit tests.
    pub fn lan() -> NetConfig {
        NetConfig {
            latency: LatencyModel::lan(),
            drop_probability: 0.0,
            bandwidth_bytes_per_sec: 125_000_000,
            zones: 1,
            timeout: SimDuration::from_millis(50),
        }
    }

    /// A network whose peers cluster into `zones` latency classes
    /// (round-robin by peer id): `intra_micros` one-way within a zone,
    /// `inter_micros` across zones, both with ±20% jitter. The model behind
    /// the zone-aware gossip experiments (E12): same-zone RPCs are an order
    /// of magnitude cheaper than cross-zone ones, as in geo-distributed
    /// DWeb deployments.
    pub fn zoned(zones: usize, intra_micros: u64, inter_micros: u64) -> NetConfig {
        NetConfig {
            latency: LatencyModel::Zoned {
                intra_micros,
                inter_micros,
            },
            zones: zones.max(1),
            ..NetConfig::default()
        }
    }
}

/// Failure modes of a simulated RPC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// The peer is offline (crashed, churned out or DDoS'd).
    PeerOffline,
    /// The peer is unreachable because of a network partition.
    Partitioned,
    /// The message (or its reply) was dropped.
    Dropped,
    /// The calling node itself is offline.
    SelfOffline,
}

impl From<RpcError> for QbError {
    fn from(e: RpcError) -> QbError {
        QbError::Network(format!("{e:?}"))
    }
}

#[derive(Debug, Clone)]
struct PeerState {
    online: bool,
    zone: usize,
    /// Partition group; peers can only talk within the same group.
    partition: u32,
}

/// The simulated peer-to-peer network.
#[derive(Debug)]
pub struct SimNet {
    config: NetConfig,
    peers: Vec<PeerState>,
    rng: DetRng,
    clock: SimInstant,
    stats: NetStats,
}

impl SimNet {
    /// Create a network with `n` peers, all online, in one partition.
    pub fn new(n: usize, config: NetConfig, seed: u64) -> SimNet {
        let peers = (0..n)
            .map(|i| PeerState {
                online: true,
                zone: i % config.zones.max(1),
                partition: 0,
            })
            .collect();
        SimNet {
            config,
            peers,
            rng: DetRng::new(seed),
            clock: SimInstant::ZERO,
            stats: NetStats::default(),
        }
    }

    /// Number of peers (online or not).
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// True when the network has no peers.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Add a new peer (returns its index). Used by churn-with-growth setups.
    pub fn add_peer(&mut self) -> u64 {
        let idx = self.peers.len();
        self.peers.push(PeerState {
            online: true,
            zone: idx % self.config.zones.max(1),
            partition: 0,
        });
        idx as u64
    }

    /// Current logical time.
    pub fn now(&self) -> SimInstant {
        self.clock
    }

    /// Advance the logical clock (e.g. to model epochs between query batches).
    pub fn advance(&mut self, d: SimDuration) {
        self.clock += d;
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Reset traffic statistics (start of a measurement window).
    pub fn reset_stats(&mut self) {
        self.stats = NetStats::default();
    }

    /// Borrow the deterministic RNG (protocols share the network's stream).
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }

    /// Network configuration.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    // ----- liveness / partitions -------------------------------------------------

    /// Is the peer currently online?
    pub fn is_online(&self, node: u64) -> bool {
        self.peers
            .get(node as usize)
            .map(|p| p.online)
            .unwrap_or(false)
    }

    /// Latency zone of a peer (`peer % zones`).
    pub fn zone_of(&self, node: u64) -> usize {
        self.peers
            .get(node as usize)
            .map(|p| p.zone)
            .unwrap_or(usize::MAX)
    }

    /// Bring a peer online / take it offline. State transitions are counted
    /// as peer up/down events in [`crate::NetStats`] (the churn record the
    /// experiments report).
    pub fn set_online(&mut self, node: u64, online: bool) {
        if let Some(p) = self.peers.get_mut(node as usize) {
            if p.online != online {
                if online {
                    self.stats.peer_up_events += 1;
                } else {
                    self.stats.peer_down_events += 1;
                }
            }
            p.online = online;
        }
    }

    /// Take a uniformly random `fraction` of peers offline (crash / churn /
    /// DDoS victim model). Peers listed in `protect` are never taken down.
    /// Returns the indices that were taken offline.
    pub fn fail_fraction(&mut self, fraction: f64, protect: &[u64]) -> Vec<u64> {
        let n = self.peers.len();
        let target = ((n as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
        let mut candidates: Vec<u64> = (0..n as u64)
            .filter(|i| !protect.contains(i) && self.is_online(*i))
            .collect();
        // Deterministic selection.
        let mut rng = self.rng.fork(0xFA11);
        rng.shuffle(&mut candidates);
        let mut downed = Vec::new();
        for &i in candidates.iter().take(target) {
            self.set_online(i, false);
            downed.push(i);
        }
        downed
    }

    /// Restore every peer to online and a single partition.
    pub fn heal_all(&mut self) {
        for p in &mut self.peers {
            if !p.online {
                self.stats.peer_up_events += 1;
            }
            p.online = true;
            p.partition = 0;
        }
    }

    /// Split the network into `groups` partitions, assigning peers
    /// round-robin. Peers can only communicate within their group.
    pub fn partition_round_robin(&mut self, groups: u32) {
        let g = groups.max(1);
        for (i, p) in self.peers.iter_mut().enumerate() {
            p.partition = (i as u32) % g;
        }
    }

    /// Assign an explicit partition group to one peer.
    pub fn set_partition(&mut self, node: u64, group: u32) {
        if let Some(p) = self.peers.get_mut(node as usize) {
            p.partition = group;
        }
    }

    /// Partition group of a peer.
    pub fn partition_of(&self, node: u64) -> u32 {
        self.peers
            .get(node as usize)
            .map(|p| p.partition)
            .unwrap_or(u32::MAX)
    }

    /// Fraction of peers currently online.
    pub fn online_fraction(&self) -> f64 {
        if self.peers.is_empty() {
            return 0.0;
        }
        self.peers.iter().filter(|p| p.online).count() as f64 / self.peers.len() as f64
    }

    /// Can `from` currently exchange messages with `to`?
    pub fn can_reach(&self, from: u64, to: u64) -> bool {
        let (Some(a), Some(b)) = (self.peers.get(from as usize), self.peers.get(to as usize))
        else {
            return false;
        };
        a.online && b.online && a.partition == b.partition
    }

    // ----- RPC cost model ---------------------------------------------------------

    /// Simulate a request/response RPC of `request_bytes` + `response_bytes`
    /// between two peers. On success returns the round-trip latency
    /// (propagation both ways + transfer time); on failure returns the error
    /// and charges the timeout to the caller via the returned duration being
    /// embedded in the error path (callers use [`SimNet::rpc_or_timeout`]).
    pub fn rpc(
        &mut self,
        from: u64,
        to: u64,
        request_bytes: usize,
        response_bytes: usize,
    ) -> Result<SimDuration, RpcError> {
        if !self.is_online(from) {
            return Err(RpcError::SelfOffline);
        }
        if !self.is_online(to) {
            self.stats.failed_rpcs += 1;
            return Err(RpcError::PeerOffline);
        }
        let (za, zb, pa, pb) = {
            let a = &self.peers[from as usize];
            let b = &self.peers[to as usize];
            (a.zone, b.zone, a.partition, b.partition)
        };
        if pa != pb {
            self.stats.failed_rpcs += 1;
            return Err(RpcError::Partitioned);
        }
        if self.config.drop_probability > 0.0 && self.rng.gen_bool(self.config.drop_probability) {
            self.stats.dropped_messages += 1;
            self.stats.failed_rpcs += 1;
            return Err(RpcError::Dropped);
        }
        let prop_out = self.config.latency.sample(&mut self.rng, za, zb);
        let prop_back = self.config.latency.sample(&mut self.rng, zb, za);
        let transfer = self.transfer_time(request_bytes + response_bytes);
        self.stats.messages += 2;
        self.stats.bytes += (request_bytes + response_bytes) as u64;
        self.stats.rpcs += 1;
        Ok(prop_out + prop_back + transfer)
    }

    /// Like [`SimNet::rpc`] but a failure costs the configured timeout, which
    /// is what a real client experiences when a peer is dead.
    pub fn rpc_or_timeout(
        &mut self,
        from: u64,
        to: u64,
        request_bytes: usize,
        response_bytes: usize,
    ) -> (Result<(), RpcError>, SimDuration) {
        match self.rpc(from, to, request_bytes, response_bytes) {
            Ok(lat) => (Ok(()), lat),
            Err(RpcError::SelfOffline) => (Err(RpcError::SelfOffline), SimDuration::ZERO),
            Err(e) => (Err(e), self.config.timeout),
        }
    }

    /// One-way message (gossip, notifications). Returns the one-way latency.
    pub fn send(&mut self, from: u64, to: u64, bytes: usize) -> Result<SimDuration, RpcError> {
        if !self.is_online(from) {
            return Err(RpcError::SelfOffline);
        }
        if !self.can_reach(from, to) {
            self.stats.failed_rpcs += 1;
            return Err(if self.is_online(to) {
                RpcError::Partitioned
            } else {
                RpcError::PeerOffline
            });
        }
        if self.config.drop_probability > 0.0 && self.rng.gen_bool(self.config.drop_probability) {
            self.stats.dropped_messages += 1;
            return Err(RpcError::Dropped);
        }
        let (za, zb) = (self.peers[from as usize].zone, self.peers[to as usize].zone);
        let lat = self.config.latency.sample(&mut self.rng, za, zb) + self.transfer_time(bytes);
        self.stats.messages += 1;
        self.stats.bytes += bytes as u64;
        Ok(lat)
    }

    /// Transfer time of `bytes` at the configured bandwidth.
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        if bytes == 0 || self.config.bandwidth_bytes_per_sec == 0 {
            return SimDuration::ZERO;
        }
        let micros =
            (bytes as u128 * 1_000_000u128 / self.config.bandwidth_bytes_per_sec as u128) as u64;
        SimDuration::from_micros(micros)
    }
}

/// Convenience constructor for tests: LAN network with `n` peers.
pub fn lan(n: usize, seed: u64) -> SimNet {
    SimNet::new(n, NetConfig::lan(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpc_succeeds_between_online_peers() {
        let mut net = lan(4, 1);
        let lat = net.rpc(0, 1, 100, 200).unwrap();
        assert!(lat.as_micros() > 0);
        assert_eq!(net.stats().rpcs, 1);
        assert_eq!(net.stats().messages, 2);
        assert_eq!(net.stats().bytes, 300);
    }

    #[test]
    fn rpc_to_offline_peer_fails() {
        let mut net = lan(4, 2);
        net.set_online(2, false);
        assert_eq!(net.rpc(0, 2, 10, 10), Err(RpcError::PeerOffline));
        assert_eq!(net.stats().failed_rpcs, 1);
        let (res, lat) = net.rpc_or_timeout(0, 2, 10, 10);
        assert!(res.is_err());
        assert_eq!(lat, net.config().timeout);
    }

    #[test]
    fn rpc_from_offline_self_fails_without_timeout() {
        let mut net = lan(4, 3);
        net.set_online(0, false);
        assert_eq!(net.rpc(0, 1, 10, 10), Err(RpcError::SelfOffline));
    }

    #[test]
    fn partitions_block_traffic() {
        let mut net = lan(6, 4);
        net.partition_round_robin(2);
        // Peers 0 and 2 are both in group 0; 0 and 1 are split.
        assert!(net.can_reach(0, 2));
        assert!(!net.can_reach(0, 1));
        assert_eq!(net.rpc(0, 1, 1, 1), Err(RpcError::Partitioned));
        net.heal_all();
        assert!(net.can_reach(0, 1));
    }

    #[test]
    fn fail_fraction_respects_protection() {
        let mut net = lan(100, 5);
        let downed = net.fail_fraction(0.3, &[0, 1, 2]);
        assert_eq!(downed.len(), 30);
        assert!(net.is_online(0) && net.is_online(1) && net.is_online(2));
        assert!((net.online_fraction() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn drop_probability_drops_messages() {
        let mut cfg = NetConfig::lan();
        cfg.drop_probability = 1.0;
        let mut net = SimNet::new(3, cfg, 6);
        assert_eq!(net.rpc(0, 1, 1, 1), Err(RpcError::Dropped));
        assert_eq!(net.stats().dropped_messages, 1);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let net = lan(2, 7);
        let small = net.transfer_time(1_000);
        let large = net.transfer_time(1_000_000);
        assert!(large > small);
        assert_eq!(net.transfer_time(0), SimDuration::ZERO);
    }

    #[test]
    fn clock_advances() {
        let mut net = lan(2, 8);
        assert_eq!(net.now().as_micros(), 0);
        net.advance(SimDuration::from_secs(5));
        assert_eq!(net.now().as_micros(), 5_000_000);
    }

    #[test]
    fn add_peer_grows_network() {
        let mut net = lan(2, 9);
        let id = net.add_peer();
        assert_eq!(id, 2);
        assert_eq!(net.len(), 3);
        assert!(net.is_online(2));
        assert!(net.rpc(0, 2, 1, 1).is_ok());
    }

    #[test]
    fn zoned_config_and_zone_lookup() {
        let net = SimNet::new(8, NetConfig::zoned(4, 2_000, 60_000), 11);
        assert_eq!(net.zone_of(0), 0);
        assert_eq!(net.zone_of(5), 1);
        assert_eq!(net.zone_of(7), 3);
        assert_eq!(net.zone_of(99), usize::MAX, "unknown peer has no zone");
        // Same-zone RPCs are cheaper than cross-zone ones on average.
        let mut net = net;
        let intra: u64 = (0..40)
            .map(|_| net.rpc(0, 4, 16, 16).unwrap().as_micros())
            .sum();
        let inter: u64 = (0..40)
            .map(|_| net.rpc(0, 5, 16, 16).unwrap().as_micros())
            .sum();
        assert!(intra < inter, "intra={intra} inter={inter}");
    }

    #[test]
    fn peer_up_down_events_are_counted_once_per_transition() {
        let mut net = lan(4, 12);
        net.set_online(1, false);
        net.set_online(1, false); // no transition, no event
        assert_eq!(net.stats().peer_down_events, 1);
        assert_eq!(net.stats().peer_up_events, 0);
        net.set_online(1, true);
        assert_eq!(net.stats().peer_up_events, 1);
        net.set_online(2, false);
        net.set_online(3, false);
        net.heal_all();
        assert_eq!(net.stats().peer_up_events, 3);
        assert_eq!(net.stats().peer_down_events, 3);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = |seed: u64| {
            let mut net = SimNet::new(10, NetConfig::default(), seed);
            (0..20)
                .map(|i| net.rpc(i % 10, (i + 3) % 10, 64, 64).unwrap().as_micros())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
