//! The simulated network: liveness, partitions, message accounting and the
//! RPC cost model used by every protocol crate.

use crate::latency::LatencyModel;
use crate::stats::NetStats;
use qb_common::{DetRng, QbError, SimDuration, SimInstant};
use qb_trace::{SpanId, Tracer};
use std::collections::HashMap;

/// Static configuration of a simulated network.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct NetConfig {
    /// One-way latency model between peers.
    pub latency: LatencyModel,
    /// Probability that any single message is silently dropped.
    pub drop_probability: f64,
    /// Effective per-peer bandwidth in bytes per second; payload transfer
    /// time is added on top of propagation latency.
    pub bandwidth_bytes_per_sec: u64,
    /// Number of latency zones peers are spread over (round-robin).
    pub zones: usize,
    /// Latency charged when an RPC to a dead/unreachable peer times out.
    pub timeout: SimDuration,
    /// Maximum asynchronous operations a single link (or, for compound
    /// operations, a single source peer) can have in flight at once. An
    /// operation issued while the limit is reached queues behind the
    /// earliest completion, and the queueing delay is charged to
    /// [`NetStats`] — this is what makes pipelined overlap a modeled
    /// resource instead of free parallelism.
    pub max_in_flight_per_link: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            latency: LatencyModel::default(),
            drop_probability: 0.0,
            bandwidth_bytes_per_sec: 12_500_000, // ~100 Mbit/s
            zones: 8,
            timeout: SimDuration::from_millis(500),
            max_in_flight_per_link: 8,
        }
    }
}

impl NetConfig {
    /// A fast, lossless LAN configuration for unit tests.
    pub fn lan() -> NetConfig {
        NetConfig {
            latency: LatencyModel::lan(),
            drop_probability: 0.0,
            bandwidth_bytes_per_sec: 125_000_000,
            zones: 1,
            timeout: SimDuration::from_millis(50),
            max_in_flight_per_link: 8,
        }
    }

    /// A network whose peers cluster into `zones` latency classes
    /// (round-robin by peer id): `intra_micros` one-way within a zone,
    /// `inter_micros` across zones, both with ±20% jitter. The model behind
    /// the zone-aware gossip experiments (E12): same-zone RPCs are an order
    /// of magnitude cheaper than cross-zone ones, as in geo-distributed
    /// DWeb deployments.
    pub fn zoned(zones: usize, intra_micros: u64, inter_micros: u64) -> NetConfig {
        NetConfig {
            latency: LatencyModel::Zoned {
                intra_micros,
                inter_micros,
            },
            zones: zones.max(1),
            ..NetConfig::default()
        }
    }
}

/// Failure modes of a simulated RPC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// The peer is offline (crashed, churned out or DDoS'd).
    PeerOffline,
    /// The peer is unreachable because of a network partition.
    Partitioned,
    /// The message (or its reply) was dropped.
    Dropped,
    /// The calling node itself is offline.
    SelfOffline,
}

impl From<RpcError> for QbError {
    fn from(e: RpcError) -> QbError {
        QbError::Network(format!("{e:?}"))
    }
}

/// Handle to an in-flight asynchronous operation issued with
/// [`SimNet::send_async`] or [`SimNet::begin_async_op`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RpcHandle(u64);

/// Completion record of an asynchronous operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsyncCompletion {
    /// When the operation finished (queueing + service).
    pub completed_at: SimInstant,
    /// Service latency alone (propagation + transfer, or the wrapped
    /// compound operation's latency).
    pub latency: SimDuration,
    /// Time spent queued behind the link's in-flight limit before the
    /// operation could start.
    pub queue_delay: SimDuration,
}

/// Result of polling an in-flight operation at a given instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Poll {
    /// Still in flight; done no earlier than `completes_at`.
    Pending {
        /// The instant the operation will complete.
        completes_at: SimInstant,
    },
    /// Finished; the handle is retired.
    Ready(AsyncCompletion),
}

/// Span label for an async link: `from->to`, or `from->*` for compound
/// operations bounded per source peer.
fn link_label(link: (u64, Option<u64>)) -> String {
    match link.1 {
        Some(to) => format!("{}->{}", link.0, to),
        None => format!("{}->*", link.0),
    }
}

#[derive(Debug, Clone, Copy)]
struct InFlightOp {
    link: (u64, Option<u64>),
    latency: SimDuration,
    queue_delay: SimDuration,
    completes_at: SimInstant,
}

#[derive(Debug, Clone)]
struct PeerState {
    online: bool,
    zone: usize,
    /// Partition group; peers can only talk within the same group.
    partition: u32,
}

/// The simulated peer-to-peer network.
#[derive(Debug)]
pub struct SimNet {
    config: NetConfig,
    peers: Vec<PeerState>,
    rng: DetRng,
    clock: SimInstant,
    stats: NetStats,
    /// Operations currently in flight, by handle.
    in_flight: HashMap<u64, InFlightOp>,
    /// Completion instants of in-flight operations per link, for the
    /// per-link in-flight limit (kept pruned as operations retire).
    link_completions: HashMap<(u64, Option<u64>), Vec<SimInstant>>,
    next_handle: u64,
    /// Span recorder shared by every protocol layer (they all hold `&mut
    /// SimNet` already). Disabled by default; recording never touches
    /// [`NetStats`] — observation is free, traffic is not.
    tracer: Tracer,
}

impl SimNet {
    /// Create a network with `n` peers, all online, in one partition.
    pub fn new(n: usize, config: NetConfig, seed: u64) -> SimNet {
        let peers = (0..n)
            .map(|i| PeerState {
                online: true,
                zone: i % config.zones.max(1),
                partition: 0,
            })
            .collect();
        SimNet {
            config,
            peers,
            rng: DetRng::new(seed),
            clock: SimInstant::ZERO,
            stats: NetStats::default(),
            in_flight: HashMap::new(),
            link_completions: HashMap::new(),
            next_handle: 0,
            tracer: Tracer::new(),
        }
    }

    /// The span recorder. Protocol layers thread their spans through this
    /// (they all already hold `&mut SimNet`); it is disabled by default
    /// and every call on a disabled tracer is a no-op branch.
    pub fn tracer(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Read-only view of the span recorder.
    pub fn tracer_ref(&self) -> &Tracer {
        &self.tracer
    }

    /// Turn span recording on or off.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracer.set_enabled(on);
    }

    /// Is span recording on?
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }

    /// Drain everything recorded so far into a trace.
    pub fn take_trace(&mut self) -> qb_trace::Trace {
        self.tracer.take()
    }

    /// Number of peers (online or not).
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// True when the network has no peers.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Add a new peer (returns its index). Used by churn-with-growth setups.
    pub fn add_peer(&mut self) -> u64 {
        let idx = self.peers.len();
        self.peers.push(PeerState {
            online: true,
            zone: idx % self.config.zones.max(1),
            partition: 0,
        });
        idx as u64
    }

    /// Current logical time.
    pub fn now(&self) -> SimInstant {
        self.clock
    }

    /// Advance the logical clock (e.g. to model epochs between query batches).
    pub fn advance(&mut self, d: SimDuration) {
        self.clock += d;
    }

    /// Advance the logical clock to `at` (no-op when `at` is not in the
    /// future). Open-loop replay drivers use this to move the shared clock
    /// to each trace arrival's instant before admitting the query, instead
    /// of accumulating relative steps.
    pub fn advance_to(&mut self, at: SimInstant) {
        if at > self.clock {
            self.clock = at;
        }
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Reset traffic statistics (start of a measurement window).
    pub fn reset_stats(&mut self) {
        self.stats = NetStats::default();
    }

    /// Borrow the deterministic RNG (protocols share the network's stream).
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }

    /// Network configuration.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    // ----- liveness / partitions -------------------------------------------------

    /// Is the peer currently online?
    pub fn is_online(&self, node: u64) -> bool {
        self.peers
            .get(node as usize)
            .map(|p| p.online)
            .unwrap_or(false)
    }

    /// Latency zone of a peer (`peer % zones`).
    pub fn zone_of(&self, node: u64) -> usize {
        self.peers
            .get(node as usize)
            .map(|p| p.zone)
            .unwrap_or(usize::MAX)
    }

    /// Bring a peer online / take it offline. State transitions are counted
    /// as peer up/down events in [`crate::NetStats`] (the churn record the
    /// experiments report).
    pub fn set_online(&mut self, node: u64, online: bool) {
        if let Some(p) = self.peers.get_mut(node as usize) {
            if p.online != online {
                if online {
                    self.stats.peer_up_events += 1;
                } else {
                    self.stats.peer_down_events += 1;
                }
            }
            p.online = online;
        }
    }

    /// Take a uniformly random `fraction` of peers offline (crash / churn /
    /// DDoS victim model). Peers listed in `protect` are never taken down.
    /// Returns the indices that were taken offline.
    pub fn fail_fraction(&mut self, fraction: f64, protect: &[u64]) -> Vec<u64> {
        let n = self.peers.len();
        let target = ((n as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
        let mut candidates: Vec<u64> = (0..n as u64)
            .filter(|i| !protect.contains(i) && self.is_online(*i))
            .collect();
        // Deterministic selection.
        let mut rng = self.rng.fork(0xFA11);
        rng.shuffle(&mut candidates);
        let mut downed = Vec::new();
        for &i in candidates.iter().take(target) {
            self.set_online(i, false);
            downed.push(i);
        }
        downed
    }

    /// Restore every peer to online and a single partition.
    pub fn heal_all(&mut self) {
        for p in &mut self.peers {
            if !p.online {
                self.stats.peer_up_events += 1;
            }
            p.online = true;
            p.partition = 0;
        }
    }

    /// Split the network into `groups` partitions, assigning peers
    /// round-robin. Peers can only communicate within their group.
    pub fn partition_round_robin(&mut self, groups: u32) {
        let g = groups.max(1);
        for (i, p) in self.peers.iter_mut().enumerate() {
            p.partition = (i as u32) % g;
        }
    }

    /// Assign an explicit partition group to one peer.
    pub fn set_partition(&mut self, node: u64, group: u32) {
        if let Some(p) = self.peers.get_mut(node as usize) {
            p.partition = group;
        }
    }

    /// Partition group of a peer.
    pub fn partition_of(&self, node: u64) -> u32 {
        self.peers
            .get(node as usize)
            .map(|p| p.partition)
            .unwrap_or(u32::MAX)
    }

    /// Fraction of peers currently online.
    pub fn online_fraction(&self) -> f64 {
        if self.peers.is_empty() {
            return 0.0;
        }
        self.peers.iter().filter(|p| p.online).count() as f64 / self.peers.len() as f64
    }

    /// Can `from` currently exchange messages with `to`?
    pub fn can_reach(&self, from: u64, to: u64) -> bool {
        let (Some(a), Some(b)) = (self.peers.get(from as usize), self.peers.get(to as usize))
        else {
            return false;
        };
        a.online && b.online && a.partition == b.partition
    }

    // ----- RPC cost model ---------------------------------------------------------

    /// Simulate a request/response RPC of `request_bytes` + `response_bytes`
    /// between two peers. On success returns the round-trip latency
    /// (propagation both ways + transfer time); on failure returns the error
    /// and charges the timeout to the caller via the returned duration being
    /// embedded in the error path (callers use [`SimNet::rpc_or_timeout`]).
    pub fn rpc(
        &mut self,
        from: u64,
        to: u64,
        request_bytes: usize,
        response_bytes: usize,
    ) -> Result<SimDuration, RpcError> {
        let latency = self.sample_rpc(from, to, request_bytes, response_bytes)?;
        let (start, end) = (self.clock, self.clock + latency);
        self.tracer
            .record_with(None, "rpc", start, end, || format!("{from}->{to}"));
        Ok(latency)
    }

    /// The cost-model core shared by every RPC-shaped call: failure
    /// sampling plus message/byte accounting, returning the round-trip
    /// service latency. Does not record a span — callers place the span on
    /// whatever (possibly virtual) timeline the RPC executes on.
    fn sample_rpc(
        &mut self,
        from: u64,
        to: u64,
        request_bytes: usize,
        response_bytes: usize,
    ) -> Result<SimDuration, RpcError> {
        if !self.is_online(from) {
            return Err(RpcError::SelfOffline);
        }
        if !self.is_online(to) {
            self.stats.failed_rpcs += 1;
            return Err(RpcError::PeerOffline);
        }
        let (za, zb, pa, pb) = {
            let a = &self.peers[from as usize];
            let b = &self.peers[to as usize];
            (a.zone, b.zone, a.partition, b.partition)
        };
        if pa != pb {
            self.stats.failed_rpcs += 1;
            return Err(RpcError::Partitioned);
        }
        if self.config.drop_probability > 0.0 && self.rng.gen_bool(self.config.drop_probability) {
            self.stats.dropped_messages += 1;
            self.stats.failed_rpcs += 1;
            return Err(RpcError::Dropped);
        }
        let prop_out = self.config.latency.sample(&mut self.rng, za, zb);
        let prop_back = self.config.latency.sample(&mut self.rng, zb, za);
        let transfer = self.transfer_time(request_bytes + response_bytes);
        self.stats.messages += 2;
        self.stats.bytes += (request_bytes + response_bytes) as u64;
        self.stats.rpcs += 1;
        Ok(prop_out + prop_back + transfer)
    }

    /// Like [`SimNet::rpc`] but a failure costs the configured timeout, which
    /// is what a real client experiences when a peer is dead.
    pub fn rpc_or_timeout(
        &mut self,
        from: u64,
        to: u64,
        request_bytes: usize,
        response_bytes: usize,
    ) -> (Result<(), RpcError>, SimDuration) {
        match self.rpc(from, to, request_bytes, response_bytes) {
            Ok(lat) => (Ok(()), lat),
            Err(RpcError::SelfOffline) => (Err(RpcError::SelfOffline), SimDuration::ZERO),
            Err(e) => (Err(e), self.config.timeout),
        }
    }

    /// One-way message (gossip, notifications). Returns the one-way latency.
    pub fn send(&mut self, from: u64, to: u64, bytes: usize) -> Result<SimDuration, RpcError> {
        if !self.is_online(from) {
            return Err(RpcError::SelfOffline);
        }
        if !self.can_reach(from, to) {
            self.stats.failed_rpcs += 1;
            return Err(if self.is_online(to) {
                RpcError::Partitioned
            } else {
                RpcError::PeerOffline
            });
        }
        if self.config.drop_probability > 0.0 && self.rng.gen_bool(self.config.drop_probability) {
            self.stats.dropped_messages += 1;
            return Err(RpcError::Dropped);
        }
        let (za, zb) = (self.peers[from as usize].zone, self.peers[to as usize].zone);
        let lat = self.config.latency.sample(&mut self.rng, za, zb) + self.transfer_time(bytes);
        self.stats.messages += 1;
        self.stats.bytes += bytes as u64;
        let (start, end) = (self.clock, self.clock + lat);
        self.tracer
            .record_with(None, "send", start, end, || format!("{from}->{to}"));
        Ok(lat)
    }

    // ----- non-blocking request handles -------------------------------------------

    /// Issue a request/response RPC without blocking on its completion.
    /// Message/byte accounting and failure sampling happen immediately
    /// (exactly as in [`SimNet::rpc`]); the returned handle completes at
    /// `now + queueing + service latency` and is resolved with
    /// [`SimNet::poll_complete`]. At most
    /// [`NetConfig::max_in_flight_per_link`] operations may occupy the
    /// `from → to` link at once — excess requests queue behind the earliest
    /// completion, and the queueing delay is charged to [`NetStats`].
    pub fn send_async(
        &mut self,
        from: u64,
        to: u64,
        request_bytes: usize,
        response_bytes: usize,
    ) -> Result<RpcHandle, RpcError> {
        let service = self.rpc(from, to, request_bytes, response_bytes)?;
        Ok(self.enqueue_async((from, Some(to)), self.clock, service, None))
    }

    /// Issue a request/response RPC at virtual instant `at` (clamped to be
    /// no earlier than the shared clock) without blocking on its
    /// completion. This is the primitive event-driven callers build on: the
    /// DHT's lookup state machines issue each hop through it, so per-hop
    /// RPCs from *different* concurrent lookups interleave on the issuing
    /// peer's uplink instead of executing lookup-after-lookup.
    ///
    /// Failure sampling and message/byte accounting happen immediately
    /// (exactly as in [`SimNet::rpc`]); the `rpc` span is recorded on the
    /// virtual timeline `[at, at + service]` under `parent` (pass the
    /// enclosing lookup/fetch span so async traffic keeps the one nested
    /// trace shape). The operation occupies the **source peer's uplink**
    /// (the `from -> *` link, shared with [`SimNet::begin_async_op`]): a
    /// caller with more concurrent hops in flight than
    /// [`NetConfig::max_in_flight_per_link`] queues the excess behind the
    /// earliest completion and the queueing delay is charged to
    /// [`NetStats`].
    pub fn send_async_at(
        &mut self,
        from: u64,
        to: u64,
        request_bytes: usize,
        response_bytes: usize,
        at: SimInstant,
        parent: Option<SpanId>,
    ) -> Result<RpcHandle, RpcError> {
        let at = at.max(self.clock);
        let service = self.sample_rpc(from, to, request_bytes, response_bytes)?;
        self.tracer
            .record_with(parent, "rpc", at, at + service, || format!("{from}->{to}"));
        Ok(self.enqueue_async((from, None), at, service, parent))
    }

    /// Track an already-executed compound operation (e.g. a storage-DAG
    /// fetch whose messages and bytes were charged by its synchronous
    /// execution) as an in-flight asynchronous operation issued from `from`
    /// at `at`. The source peer's aggregate in-flight limit applies: a
    /// pipelined caller that issues more concurrent fetches than the peer's
    /// link capacity pays real queueing delay instead of getting free
    /// infinite parallelism. `at` may lie in the simulated future (pipeline
    /// drivers run on a virtual cursor ahead of the shared clock); the
    /// operation's queue/deliver spans are recorded under `parent`.
    pub fn begin_async_op(
        &mut self,
        from: u64,
        at: SimInstant,
        latency: SimDuration,
        parent: Option<SpanId>,
    ) -> RpcHandle {
        let at = at.max(self.clock);
        self.enqueue_async((from, None), at, latency, parent)
    }

    fn enqueue_async(
        &mut self,
        link: (u64, Option<u64>),
        at: SimInstant,
        latency: SimDuration,
        parent: Option<SpanId>,
    ) -> RpcHandle {
        let capacity = self.config.max_in_flight_per_link.max(1);
        let completions = self.link_completions.entry(link).or_default();
        completions.retain(|&c| c > at);
        completions.sort_unstable();
        let started_at = if completions.len() >= capacity {
            // Queue behind enough completions to free a slot.
            completions[completions.len() - capacity]
        } else {
            at
        };
        let queue_delay = started_at.since(at);
        let completes_at = started_at + latency;
        completions.push(completes_at);
        self.stats.async_ops += 1;
        if queue_delay > SimDuration::ZERO {
            self.stats.async_queued_ops += 1;
            self.stats.async_queue_delay_us += queue_delay.as_micros();
            self.tracer
                .record_with(parent, "net.queue", at, started_at, || link_label(link));
        }
        self.tracer
            .record_with(parent, "net.deliver", started_at, completes_at, || {
                link_label(link)
            });
        self.next_handle += 1;
        let handle = RpcHandle(self.next_handle);
        self.in_flight.insert(
            self.next_handle,
            InFlightOp {
                link,
                latency,
                queue_delay,
                completes_at,
            },
        );
        handle
    }

    /// Poll an in-flight operation at instant `at`. Returns `None` for an
    /// unknown (or already-retired) handle. A `Ready` result retires the
    /// handle; `Pending` reports when completion is due, so a driver can
    /// advance its virtual clock to exactly that instant.
    pub fn poll_complete(&mut self, handle: RpcHandle, at: SimInstant) -> Option<Poll> {
        let op = self.in_flight.get(&handle.0)?;
        if at < op.completes_at {
            return Some(Poll::Pending {
                completes_at: op.completes_at,
            });
        }
        let op = self.in_flight.remove(&handle.0).expect("checked above");
        if let Some(completions) = self.link_completions.get_mut(&op.link) {
            if let Some(pos) = completions.iter().position(|&c| c == op.completes_at) {
                completions.swap_remove(pos);
            }
            if completions.is_empty() {
                self.link_completions.remove(&op.link);
            }
        }
        Some(Poll::Ready(AsyncCompletion {
            completed_at: op.completes_at,
            latency: op.latency,
            queue_delay: op.queue_delay,
        }))
    }

    /// Cancel an in-flight operation: retire the handle and free its
    /// per-link in-flight slot immediately, so subsequently issued
    /// operations on the same link no longer queue behind it. Returns
    /// `false` for an unknown (or already-retired) handle.
    ///
    /// This is the hedge-loser path: the loser's messages and bytes were
    /// already charged at issue time (cancellation refunds nothing — the
    /// traffic happened), only its claim on future link capacity is
    /// released. Operations that already queued behind the cancelled one
    /// keep the start instants they computed at issue time; only
    /// operations issued *after* the cancellation see the freed slot.
    pub fn cancel_async(&mut self, handle: RpcHandle) -> bool {
        let Some(op) = self.in_flight.remove(&handle.0) else {
            return false;
        };
        if let Some(completions) = self.link_completions.get_mut(&op.link) {
            if let Some(pos) = completions.iter().position(|&c| c == op.completes_at) {
                completions.swap_remove(pos);
            }
            if completions.is_empty() {
                self.link_completions.remove(&op.link);
            }
        }
        true
    }

    /// Attribute one hedged fetch issued after a hedge timer expired.
    pub fn record_hedge_fired(&mut self) {
        self.stats.hedges_fired += 1;
    }

    /// Attribute one hedged fetch that beat its primary.
    pub fn record_hedge_won(&mut self) {
        self.stats.hedges_won += 1;
    }

    /// Attribute `bytes` of already-charged traffic whose response was
    /// discarded because the other leg of a hedged pair won.
    pub fn record_hedge_wasted(&mut self, bytes: u64) {
        self.stats.hedges_wasted_bytes += bytes;
    }

    /// When an in-flight operation will complete (`None` for an unknown or
    /// retired handle). Read-only — the handle stays live.
    pub fn async_completes_at(&self, handle: RpcHandle) -> Option<SimInstant> {
        self.in_flight.get(&handle.0).map(|op| op.completes_at)
    }

    /// Number of operations currently in flight (all links).
    pub fn async_in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Transfer time of `bytes` at the configured bandwidth.
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        if bytes == 0 || self.config.bandwidth_bytes_per_sec == 0 {
            return SimDuration::ZERO;
        }
        let micros =
            (bytes as u128 * 1_000_000u128 / self.config.bandwidth_bytes_per_sec as u128) as u64;
        SimDuration::from_micros(micros)
    }
}

/// Convenience constructor for tests: LAN network with `n` peers.
pub fn lan(n: usize, seed: u64) -> SimNet {
    SimNet::new(n, NetConfig::lan(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpc_succeeds_between_online_peers() {
        let mut net = lan(4, 1);
        let lat = net.rpc(0, 1, 100, 200).unwrap();
        assert!(lat.as_micros() > 0);
        assert_eq!(net.stats().rpcs, 1);
        assert_eq!(net.stats().messages, 2);
        assert_eq!(net.stats().bytes, 300);
    }

    #[test]
    fn rpc_to_offline_peer_fails() {
        let mut net = lan(4, 2);
        net.set_online(2, false);
        assert_eq!(net.rpc(0, 2, 10, 10), Err(RpcError::PeerOffline));
        assert_eq!(net.stats().failed_rpcs, 1);
        let (res, lat) = net.rpc_or_timeout(0, 2, 10, 10);
        assert!(res.is_err());
        assert_eq!(lat, net.config().timeout);
    }

    #[test]
    fn rpc_from_offline_self_fails_without_timeout() {
        let mut net = lan(4, 3);
        net.set_online(0, false);
        assert_eq!(net.rpc(0, 1, 10, 10), Err(RpcError::SelfOffline));
    }

    #[test]
    fn partitions_block_traffic() {
        let mut net = lan(6, 4);
        net.partition_round_robin(2);
        // Peers 0 and 2 are both in group 0; 0 and 1 are split.
        assert!(net.can_reach(0, 2));
        assert!(!net.can_reach(0, 1));
        assert_eq!(net.rpc(0, 1, 1, 1), Err(RpcError::Partitioned));
        net.heal_all();
        assert!(net.can_reach(0, 1));
    }

    #[test]
    fn fail_fraction_respects_protection() {
        let mut net = lan(100, 5);
        let downed = net.fail_fraction(0.3, &[0, 1, 2]);
        assert_eq!(downed.len(), 30);
        assert!(net.is_online(0) && net.is_online(1) && net.is_online(2));
        assert!((net.online_fraction() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn drop_probability_drops_messages() {
        let mut cfg = NetConfig::lan();
        cfg.drop_probability = 1.0;
        let mut net = SimNet::new(3, cfg, 6);
        assert_eq!(net.rpc(0, 1, 1, 1), Err(RpcError::Dropped));
        assert_eq!(net.stats().dropped_messages, 1);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let net = lan(2, 7);
        let small = net.transfer_time(1_000);
        let large = net.transfer_time(1_000_000);
        assert!(large > small);
        assert_eq!(net.transfer_time(0), SimDuration::ZERO);
    }

    #[test]
    fn clock_advances() {
        let mut net = lan(2, 8);
        assert_eq!(net.now().as_micros(), 0);
        net.advance(SimDuration::from_secs(5));
        assert_eq!(net.now().as_micros(), 5_000_000);
    }

    #[test]
    fn add_peer_grows_network() {
        let mut net = lan(2, 9);
        let id = net.add_peer();
        assert_eq!(id, 2);
        assert_eq!(net.len(), 3);
        assert!(net.is_online(2));
        assert!(net.rpc(0, 2, 1, 1).is_ok());
    }

    #[test]
    fn zoned_config_and_zone_lookup() {
        let net = SimNet::new(8, NetConfig::zoned(4, 2_000, 60_000), 11);
        assert_eq!(net.zone_of(0), 0);
        assert_eq!(net.zone_of(5), 1);
        assert_eq!(net.zone_of(7), 3);
        assert_eq!(net.zone_of(99), usize::MAX, "unknown peer has no zone");
        // Same-zone RPCs are cheaper than cross-zone ones on average.
        let mut net = net;
        let intra: u64 = (0..40)
            .map(|_| net.rpc(0, 4, 16, 16).unwrap().as_micros())
            .sum();
        let inter: u64 = (0..40)
            .map(|_| net.rpc(0, 5, 16, 16).unwrap().as_micros())
            .sum();
        assert!(intra < inter, "intra={intra} inter={inter}");
    }

    #[test]
    fn peer_up_down_events_are_counted_once_per_transition() {
        let mut net = lan(4, 12);
        net.set_online(1, false);
        net.set_online(1, false); // no transition, no event
        assert_eq!(net.stats().peer_down_events, 1);
        assert_eq!(net.stats().peer_up_events, 0);
        net.set_online(1, true);
        assert_eq!(net.stats().peer_up_events, 1);
        net.set_online(2, false);
        net.set_online(3, false);
        net.heal_all();
        assert_eq!(net.stats().peer_up_events, 3);
        assert_eq!(net.stats().peer_down_events, 3);
    }

    #[test]
    fn send_async_completes_at_the_service_latency() {
        let mut net = lan(4, 21);
        let h = net.send_async(0, 1, 100, 200).expect("online peers");
        assert_eq!(net.async_in_flight(), 1);
        assert_eq!(net.stats().rpcs, 1, "accounting happens at issue time");
        assert_eq!(net.stats().bytes, 300);
        let due = net.async_completes_at(h).expect("in flight");
        assert!(due > net.now());
        // Polling before completion reports when it is due.
        match net.poll_complete(h, net.now()) {
            Some(Poll::Pending { completes_at }) => assert_eq!(completes_at, due),
            other => panic!("expected pending, got {other:?}"),
        }
        // Polling at (or past) completion retires the handle.
        match net.poll_complete(h, due) {
            Some(Poll::Ready(done)) => {
                assert_eq!(done.completed_at, due);
                assert_eq!(done.queue_delay, SimDuration::ZERO);
                assert_eq!(done.latency, due.since(SimInstant::ZERO));
            }
            other => panic!("expected ready, got {other:?}"),
        }
        assert_eq!(net.async_in_flight(), 0);
        assert!(net.poll_complete(h, due).is_none(), "handle retired");
        assert_eq!(net.stats().async_ops, 1);
        assert_eq!(net.stats().async_queued_ops, 0);
    }

    #[test]
    fn send_async_fails_like_rpc() {
        let mut net = lan(4, 22);
        net.set_online(2, false);
        assert_eq!(net.send_async(0, 2, 1, 1), Err(RpcError::PeerOffline));
        assert_eq!(net.async_in_flight(), 0);
        assert_eq!(net.stats().failed_rpcs, 1);
    }

    #[test]
    fn link_capacity_queues_excess_operations() {
        let mut cfg = NetConfig::lan();
        cfg.max_in_flight_per_link = 2;
        let mut net = SimNet::new(3, cfg, 23);
        let t0 = net.now();
        let handles: Vec<RpcHandle> = (0..4)
            .map(|_| net.send_async(0, 1, 64, 64).unwrap())
            .collect();
        let completions: Vec<SimInstant> = handles
            .iter()
            .map(|&h| net.async_completes_at(h).unwrap())
            .collect();
        // The first two start immediately; the third starts when the
        // earliest completes, the fourth when the second completes.
        assert!(completions[2] > completions[0]);
        assert!(completions[3] > completions[1]);
        assert_eq!(net.stats().async_queued_ops, 2);
        assert!(net.stats().async_queue_delay_us > 0);
        // Retiring the queued operations reports their queueing delay.
        let far = t0 + SimDuration::from_secs(60);
        let mut total_queue = SimDuration::ZERO;
        for h in handles {
            match net.poll_complete(h, far) {
                Some(Poll::Ready(done)) => total_queue += done.queue_delay,
                other => panic!("expected ready, got {other:?}"),
            }
        }
        assert_eq!(total_queue.as_micros(), net.stats().async_queue_delay_us);
        assert!(net.link_completions.is_empty(), "tracker fully drained");
    }

    #[test]
    fn begin_async_op_tracks_compound_operations_per_source_peer() {
        let mut cfg = NetConfig::lan();
        cfg.max_in_flight_per_link = 1;
        let mut net = SimNet::new(3, cfg, 24);
        let at = net.now() + SimDuration::from_millis(5);
        let a = net.begin_async_op(0, at, SimDuration::from_millis(10), None);
        let b = net.begin_async_op(0, at, SimDuration::from_millis(10), None);
        // Different source peer: its own capacity, no queueing.
        let c = net.begin_async_op(1, at, SimDuration::from_millis(10), None);
        let done_a = net.async_completes_at(a).unwrap();
        let done_b = net.async_completes_at(b).unwrap();
        let done_c = net.async_completes_at(c).unwrap();
        assert_eq!(done_a, at + SimDuration::from_millis(10));
        assert_eq!(done_b, done_a + SimDuration::from_millis(10), "queued");
        assert_eq!(done_c, at + SimDuration::from_millis(10));
        // Messages/bytes are NOT double charged: the wrapped operation
        // already paid for them synchronously.
        assert_eq!(net.stats().messages, 0);
        assert_eq!(net.stats().async_ops, 3);
    }

    #[test]
    fn send_async_at_issues_on_a_virtual_instant() {
        let mut net = lan(4, 25);
        let at = net.now() + SimDuration::from_millis(7);
        let h = net.send_async_at(0, 1, 100, 200, at, None).expect("online");
        // Accounting happens at issue time, like the synchronous path.
        assert_eq!(net.stats().rpcs, 1);
        assert_eq!(net.stats().messages, 2);
        assert_eq!(net.stats().bytes, 300);
        let due = net.async_completes_at(h).expect("in flight");
        assert!(due > at, "service time elapses after the virtual instant");
        match net.poll_complete(h, due) {
            Some(Poll::Ready(done)) => {
                assert_eq!(done.completed_at, due);
                assert_eq!(done.queue_delay, SimDuration::ZERO);
            }
            other => panic!("expected ready, got {other:?}"),
        }
    }

    #[test]
    fn send_async_at_fails_like_rpc() {
        let mut net = lan(4, 26);
        net.set_online(2, false);
        let at = net.now();
        assert_eq!(
            net.send_async_at(0, 2, 1, 1, at, None),
            Err(RpcError::PeerOffline)
        );
        assert_eq!(net.async_in_flight(), 0);
        assert_eq!(net.stats().failed_rpcs, 1);
    }

    #[test]
    fn send_async_at_contends_on_the_source_uplink() {
        let mut cfg = NetConfig::lan();
        cfg.max_in_flight_per_link = 1;
        let mut net = SimNet::new(4, cfg, 27);
        let at = net.now();
        // Two hops from the same source to *different* destinations still
        // share the source uplink: the second queues behind the first.
        let a = net.send_async_at(0, 1, 64, 64, at, None).unwrap();
        let b = net.send_async_at(0, 2, 64, 64, at, None).unwrap();
        // A different source has its own uplink — no queueing.
        let c = net.send_async_at(3, 1, 64, 64, at, None).unwrap();
        let done_a = net.async_completes_at(a).unwrap();
        let done_b = net.async_completes_at(b).unwrap();
        let done_c = net.async_completes_at(c).unwrap();
        assert!(done_b > done_a, "second op queues behind the first");
        assert!(done_c.since(at) < done_b.since(at));
        assert_eq!(net.stats().async_queued_ops, 1);
        let far = at + SimDuration::from_secs(60);
        for h in [a, b, c] {
            net.poll_complete(h, far);
        }
    }

    #[test]
    fn cancel_async_frees_the_link_slot() {
        let mut cfg = NetConfig::lan();
        cfg.max_in_flight_per_link = 1;
        let mut net = SimNet::new(3, cfg, 28);
        let at = net.now();
        let a = net.send_async_at(0, 1, 64, 64, at, None).unwrap();
        let queued_before = net.stats().async_queued_ops;
        assert!(net.cancel_async(a), "live handle cancels");
        assert!(!net.cancel_async(a), "second cancel is a no-op");
        assert_eq!(net.async_in_flight(), 0);
        // The slot is free again: an op issued at the same instant starts
        // immediately instead of queueing behind the cancelled one.
        let b = net.send_async_at(0, 2, 64, 64, at, None).unwrap();
        assert_eq!(net.stats().async_queued_ops, queued_before, "no queueing");
        match net.poll_complete(b, at) {
            Some(Poll::Pending { .. }) => {}
            other => panic!("expected pending, got {other:?}"),
        }
        let due = net.async_completes_at(b).unwrap();
        match net.poll_complete(b, due) {
            Some(Poll::Ready(done)) => assert_eq!(done.queue_delay, SimDuration::ZERO),
            other => panic!("expected ready, got {other:?}"),
        }
        assert!(net.link_completions.is_empty(), "tracker fully drained");
    }

    #[test]
    fn cancel_async_keeps_charged_traffic() {
        let mut net = lan(3, 29);
        let at = net.now();
        let h = net.send_async_at(0, 1, 100, 200, at, None).unwrap();
        let bytes = net.stats().bytes;
        net.cancel_async(h);
        assert_eq!(net.stats().bytes, bytes, "cancellation refunds nothing");
        assert!(net.poll_complete(h, at).is_none(), "handle retired");
        net.record_hedge_fired();
        net.record_hedge_won();
        net.record_hedge_wasted(300);
        assert_eq!(net.stats().hedges_fired, 1);
        assert_eq!(net.stats().hedges_won, 1);
        assert_eq!(net.stats().hedges_wasted_bytes, 300);
    }

    #[test]
    fn send_async_at_is_deterministic() {
        let run = |seed: u64| {
            let mut net = SimNet::new(6, NetConfig::default(), seed);
            let at = net.now();
            (0..12u64)
                .map(|i| {
                    let h = net
                        .send_async_at(i % 6, (i + 1) % 6, 64, 64, at, None)
                        .unwrap();
                    net.async_completes_at(h).unwrap().as_micros()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn async_issue_is_deterministic() {
        let run = |seed: u64| {
            let mut net = SimNet::new(6, NetConfig::default(), seed);
            (0..12)
                .map(|i| {
                    let h = net.send_async(i % 6, (i + 1) % 6, 64, 64).unwrap();
                    net.async_completes_at(h).unwrap().as_micros()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn deterministic_across_runs() {
        let run = |seed: u64| {
            let mut net = SimNet::new(10, NetConfig::default(), seed);
            (0..20)
                .map(|i| net.rpc(i % 10, (i + 3) % 10, 64, 64).unwrap().as_micros())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    /// Drive a representative mix of traffic and return (stats, latencies).
    fn traffic_mix(tracing: bool) -> (NetStats, Vec<u64>) {
        let mut net = SimNet::new(8, NetConfig::default(), 77);
        net.set_tracing(tracing);
        let mut lats = Vec::new();
        for i in 0..6u64 {
            lats.push(net.rpc(i % 8, (i + 1) % 8, 256, 512).unwrap().as_micros());
            lats.push(net.send(i % 8, (i + 3) % 8, 128).unwrap().as_micros());
        }
        let handles: Vec<_> = (0..12)
            .map(|i| net.send_async(0, 1 + (i % 3), 64, 64).unwrap())
            .collect();
        for h in handles {
            let at = net.async_completes_at(h).unwrap();
            lats.push(at.as_micros());
            net.poll_complete(h, at);
        }
        (net.stats().clone(), lats)
    }

    #[test]
    fn tracing_never_touches_netstats_or_latencies() {
        // Observation is free, traffic is not: the full cost model —
        // stats and every sampled latency — is byte-identical whether the
        // tracer is recording or not.
        let (stats_off, lats_off) = traffic_mix(false);
        let (stats_on, lats_on) = traffic_mix(true);
        assert_eq!(stats_off, stats_on);
        assert_eq!(lats_off, lats_on);
    }

    #[test]
    fn disabled_tracer_records_no_spans() {
        let mut net = SimNet::new(4, NetConfig::default(), 5);
        net.rpc(0, 1, 64, 64).unwrap();
        net.send(1, 2, 64).unwrap();
        net.send_async(2, 3, 64, 64).unwrap();
        assert!(net.take_trace().is_empty());
    }

    #[test]
    fn traced_traffic_yields_link_attributed_spans() {
        let mut net = SimNet::new(4, NetConfig::default(), 5);
        net.set_tracing(true);
        net.rpc(0, 1, 64, 64).unwrap();
        net.send(1, 2, 64).unwrap();
        // Saturate link 3->2's in-flight capacity so a queue span appears.
        for _ in 0..(net.config().max_in_flight_per_link + 1) {
            net.send_async(3, 2, 64, 64).unwrap();
        }
        let trace = net.take_trace();
        let rpc = trace.named("rpc").next().expect("rpc span");
        assert_eq!(rpc.detail, "0->1");
        assert_eq!(trace.named("send").next().unwrap().detail, "1->2");
        assert!(trace.named("net.deliver").count() >= 1);
        let queue = trace.named("net.queue").next().expect("queue span");
        assert_eq!(queue.detail, "3->2");
        // Two identically seeded runs serialize identically.
        let rerun = |_: ()| {
            let mut net = SimNet::new(4, NetConfig::default(), 5);
            net.set_tracing(true);
            net.rpc(0, 1, 64, 64).unwrap();
            qb_trace::to_json(&net.take_trace())
        };
        assert_eq!(rerun(()), rerun(()));
    }
}
