//! Link graph and PageRank.
//!
//! QueenBee's worker bees "compute the page ranks, which are hosted in a
//! decentralized storage". This crate provides:
//!
//! * [`graph::LinkGraph`] — the page link graph built from the on-chain
//!   publish registry's out-links,
//! * [`pagerank()`] — the reference power-iteration PageRank,
//! * [`distributed`] — the decentralized variant: the graph is partitioned
//!   into blocks, each block is computed by a quorum of worker bees, results
//!   are combined by entry-wise median and bees whose submissions deviate are
//!   flagged (the defense against the paper's *collusion attack* on ranking
//!   data, quantified in experiment E6).

pub mod distributed;
pub mod graph;
pub mod pagerank;

pub use distributed::{BeeRankBehaviour, DecentralizedPageRank, RankRoundReport};
pub use graph::LinkGraph;
pub use pagerank::{pagerank, PageRankConfig};
