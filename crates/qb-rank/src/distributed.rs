//! Decentralized PageRank computed by worker bees, with redundancy-based
//! verification against manipulation (the paper's collusion attack).
//!
//! The graph's nodes are partitioned into blocks. In every round, each block
//! is assigned to a quorum of `q` bees; each bee independently computes the
//! new rank values for its block from the previous global vector. The block's
//! accepted values are the entry-wise **median** of the quorum submissions,
//! so a minority of colluding bees inside a quorum cannot move the result,
//! and any submission that deviates from the accepted values is flagged (and,
//! in the QueenBee engine, slashed).

use crate::graph::LinkGraph;
use crate::pagerank::PageRankConfig;
use std::collections::BTreeSet;

/// How a bee behaves when asked to compute a rank block.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum BeeRankBehaviour {
    /// Computes the block correctly.
    Honest,
    /// Inflates the rank of the listed target nodes by `factor` (collusion
    /// attack: boost the coalition's own pages).
    Inflate { targets: Vec<usize>, factor: f64 },
    /// Returns zeros without doing the work (free-riding).
    Lazy,
}

/// Outcome of a full decentralized PageRank run.
#[derive(Debug, Clone)]
pub struct RankRoundReport {
    /// Final rank vector (by node id).
    pub ranks: Vec<f64>,
    /// Iterations executed.
    pub rounds: usize,
    /// Bee indices flagged at least once for deviating from the accepted
    /// block values.
    pub flagged_bees: BTreeSet<usize>,
    /// Total block computations performed (work units, for reward payout).
    pub block_computations: u64,
    /// L1 distance to the honest reference computed on the same graph.
    pub l1_error_vs_reference: f64,
}

/// Configuration of the decentralized computation.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DecentralizedPageRank {
    /// Underlying PageRank parameters.
    pub pagerank: PageRankConfig,
    /// Number of graph blocks.
    pub num_blocks: usize,
    /// Quorum size: how many bees compute each block each round.
    pub quorum: usize,
    /// Relative deviation from the accepted value above which a submission is
    /// flagged as manipulated.
    pub flag_tolerance: f64,
}

impl Default for DecentralizedPageRank {
    fn default() -> Self {
        DecentralizedPageRank {
            pagerank: PageRankConfig::default(),
            num_blocks: 8,
            quorum: 3,
            flag_tolerance: 0.01,
        }
    }
}

impl DecentralizedPageRank {
    /// Nodes belonging to a block (contiguous ranges).
    pub fn block_nodes(&self, n: usize, block: usize) -> std::ops::Range<usize> {
        let blocks = self.num_blocks.max(1);
        let per = n.div_ceil(blocks);
        let start = (block * per).min(n);
        let end = ((block + 1) * per).min(n);
        start..end
    }

    /// One bee's computation of a block given the previous global vector.
    fn compute_block(
        graph: &LinkGraph,
        prev: &[f64],
        damping: f64,
        range: std::ops::Range<usize>,
        behaviour: &BeeRankBehaviour,
    ) -> Vec<f64> {
        let n = graph.len();
        let uniform = 1.0 / n as f64;
        // Dangling mass is global; every bee recomputes it (cheap).
        let dangling_mass: f64 = (0..n)
            .filter(|&u| graph.out_degree(u) == 0)
            .map(|u| prev[u])
            .sum();
        let base = (1.0 - damping) * uniform + damping * dangling_mass * uniform;
        let mut values = vec![0.0f64; range.len()];
        match behaviour {
            BeeRankBehaviour::Lazy => {
                // Returns the base value only — cheap but wrong.
                values.iter_mut().for_each(|v| *v = base);
            }
            _ => {
                // Honest computation (Inflate applies its distortion after).
                for (u, &p) in prev.iter().enumerate().take(n) {
                    let out = graph.out_links(u);
                    if out.is_empty() {
                        continue;
                    }
                    let share = p / out.len() as f64;
                    for &v in out {
                        if range.contains(&v) {
                            values[v - range.start] += share;
                        }
                    }
                }
                for v in values.iter_mut() {
                    *v = base + damping * *v;
                }
                if let BeeRankBehaviour::Inflate { targets, factor } = behaviour {
                    for &t in targets {
                        if range.contains(&t) {
                            values[t - range.start] *= factor;
                        }
                    }
                }
            }
        }
        values
    }

    /// Run the decentralized computation.
    ///
    /// * `bee_behaviours` — one entry per participating bee.
    /// * `assign` — deterministic assignment function: which bees compute a
    ///   given `(round, block)`; the engine derives this from bee ids so that
    ///   assignment cannot be chosen by the attacker. The default assignment
    ///   rotates bees across blocks.
    pub fn run(&self, graph: &LinkGraph, bee_behaviours: &[BeeRankBehaviour]) -> RankRoundReport {
        let n = graph.len();
        let num_bees = bee_behaviours.len();
        let mut flagged: BTreeSet<usize> = BTreeSet::new();
        let mut block_computations = 0u64;
        if n == 0 || num_bees == 0 {
            return RankRoundReport {
                ranks: vec![1.0 / n.max(1) as f64; n],
                rounds: 0,
                flagged_bees: flagged,
                block_computations,
                l1_error_vs_reference: 0.0,
            };
        }
        let quorum = self.quorum.max(1).min(num_bees);
        let uniform = 1.0 / n as f64;
        let mut rank = vec![uniform; n];
        let mut rounds = 0usize;

        for round in 0..self.pagerank.max_iterations {
            rounds = round + 1;
            let mut next = vec![0.0f64; n];
            for block in 0..self.num_blocks.max(1) {
                let range = self.block_nodes(n, block);
                if range.is_empty() {
                    continue;
                }
                // Deterministic rotating assignment of bees to this block.
                let mut submissions: Vec<(usize, Vec<f64>)> = Vec::with_capacity(quorum);
                for q in 0..quorum {
                    let bee = (block + round * 7 + q * (num_bees / quorum).max(1)) % num_bees;
                    let values = Self::compute_block(
                        graph,
                        &rank,
                        self.pagerank.damping,
                        range.clone(),
                        &bee_behaviours[bee],
                    );
                    block_computations += 1;
                    submissions.push((bee, values));
                }
                // Accepted value: entry-wise median of the quorum.
                let len = range.len();
                let mut accepted = vec![0.0f64; len];
                for i in 0..len {
                    let mut vals: Vec<f64> = submissions.iter().map(|(_, v)| v[i]).collect();
                    vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                    accepted[i] = vals[vals.len() / 2];
                }
                // Flag deviating submissions.
                for (bee, values) in &submissions {
                    let deviates = values.iter().zip(&accepted).any(|(v, a)| {
                        let denom = a.abs().max(1e-12);
                        (v - a).abs() / denom > self.flag_tolerance
                    });
                    if deviates {
                        flagged.insert(*bee);
                    }
                }
                next[range.clone()].copy_from_slice(&accepted);
            }
            let delta: f64 = next.iter().zip(&rank).map(|(a, b)| (a - b).abs()).sum();
            rank = next;
            if delta < self.pagerank.tolerance {
                break;
            }
        }

        let reference = crate::pagerank::pagerank(graph, &self.pagerank);
        let l1: f64 = reference
            .iter()
            .zip(&rank)
            .map(|(a, b)| (a - b).abs())
            .sum();
        RankRoundReport {
            ranks: rank,
            rounds,
            flagged_bees: flagged,
            block_computations,
            l1_error_vs_reference: l1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::pagerank;

    fn sample_graph() -> LinkGraph {
        let mut g = LinkGraph::new();
        for i in 0..30 {
            let links: Vec<String> = vec![
                format!("p{}", (i + 1) % 30),
                format!("p{}", (i * 7 + 3) % 30),
                "hub".to_string(),
            ];
            g.set_links(&format!("p{i}"), &links);
        }
        g.set_links("hub", &["p0".to_string(), "p3".to_string()]);
        g
    }

    #[test]
    fn honest_bees_match_reference_pagerank() {
        let g = sample_graph();
        let dpr = DecentralizedPageRank::default();
        let behaviours = vec![BeeRankBehaviour::Honest; 9];
        let report = dpr.run(&g, &behaviours);
        assert!(report.flagged_bees.is_empty(), "honest bees were flagged");
        assert!(
            report.l1_error_vs_reference < 1e-6,
            "error = {}",
            report.l1_error_vs_reference
        );
        let sum: f64 = report.ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(report.block_computations > 0);
    }

    #[test]
    fn minority_colluders_are_flagged_and_neutralized() {
        let g = sample_graph();
        let target = g.id_of("p5").unwrap();
        let dpr = DecentralizedPageRank {
            quorum: 3,
            ..DecentralizedPageRank::default()
        };
        // 2 colluders out of 9 bees inflate p5 by 100x.
        let mut behaviours = vec![BeeRankBehaviour::Honest; 9];
        behaviours[0] = BeeRankBehaviour::Inflate {
            targets: vec![target],
            factor: 100.0,
        };
        behaviours[1] = BeeRankBehaviour::Inflate {
            targets: vec![target],
            factor: 100.0,
        };
        let report = dpr.run(&g, &behaviours);
        assert!(report.flagged_bees.contains(&0) || report.flagged_bees.contains(&1));
        // The final ranks are still close to the honest reference.
        assert!(
            report.l1_error_vs_reference < 0.05,
            "collusion moved the ranks: {}",
            report.l1_error_vs_reference
        );
        let honest = pagerank(&g, &dpr.pagerank);
        let ratio = report.ranks[target] / honest[target];
        assert!(ratio < 2.0, "target inflated by {ratio}x despite defense");
    }

    #[test]
    fn majority_collusion_in_quorum_succeeds_without_larger_quorum() {
        // With quorum 1 there is no redundancy: a single colluder controls
        // its block. This is the "no defense" configuration of experiment E6.
        let g = sample_graph();
        let target = g.id_of("p5").unwrap();
        let dpr = DecentralizedPageRank {
            quorum: 1,
            num_blocks: 4,
            ..DecentralizedPageRank::default()
        };
        let behaviours = vec![
            BeeRankBehaviour::Inflate {
                targets: vec![target],
                factor: 50.0,
            };
            4
        ];
        let report = dpr.run(&g, &behaviours);
        let honest = pagerank(&g, &dpr.pagerank);
        assert!(
            report.ranks[target] > honest[target] * 2.0,
            "attack should succeed with quorum=1"
        );
    }

    #[test]
    fn lazy_bees_are_flagged() {
        let g = sample_graph();
        let dpr = DecentralizedPageRank::default();
        let mut behaviours = vec![BeeRankBehaviour::Honest; 6];
        behaviours[3] = BeeRankBehaviour::Lazy;
        let report = dpr.run(&g, &behaviours);
        assert!(report.flagged_bees.contains(&3));
        assert!(report.l1_error_vs_reference < 1e-6);
    }

    #[test]
    fn empty_graph_and_no_bees_are_handled() {
        let dpr = DecentralizedPageRank::default();
        let report = dpr.run(&LinkGraph::new(), &[BeeRankBehaviour::Honest]);
        assert_eq!(report.rounds, 0);
        let g = sample_graph();
        let report = dpr.run(&g, &[]);
        assert_eq!(report.rounds, 0);
        assert_eq!(report.ranks.len(), g.len());
    }

    #[test]
    fn block_partition_covers_all_nodes_exactly_once() {
        let dpr = DecentralizedPageRank {
            num_blocks: 7,
            ..DecentralizedPageRank::default()
        };
        let n = 100;
        let mut seen = vec![0u32; n];
        for b in 0..dpr.num_blocks {
            for i in dpr.block_nodes(n, b) {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }
}
