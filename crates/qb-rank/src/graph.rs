//! The page link graph.

use std::collections::HashMap;

/// A directed graph over page names.
#[derive(Debug, Clone, Default)]
pub struct LinkGraph {
    names: Vec<String>,
    ids: HashMap<String, usize>,
    out_edges: Vec<Vec<usize>>,
    in_degree: Vec<usize>,
}

impl LinkGraph {
    /// Empty graph.
    pub fn new() -> LinkGraph {
        LinkGraph::default()
    }

    /// Get or create the node for a page name.
    pub fn node(&mut self, name: &str) -> usize {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len();
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        self.out_edges.push(Vec::new());
        self.in_degree.push(0);
        id
    }

    /// Register (or replace) the out-links of a page. Links to not-yet-known
    /// pages create their nodes, mirroring how the registry can reference
    /// pages published later.
    pub fn set_links(&mut self, name: &str, out_links: &[String]) {
        let from = self.node(name);
        // Remove old edges' contribution to in-degree.
        let old = std::mem::take(&mut self.out_edges[from]);
        for &t in &old {
            self.in_degree[t] -= 1;
        }
        let mut edges = Vec::with_capacity(out_links.len());
        for link in out_links {
            if link == name {
                continue; // self-links carry no rank signal
            }
            let to = self.node(link);
            if !edges.contains(&to) {
                edges.push(to);
                self.in_degree[to] += 1;
            }
        }
        self.out_edges[from] = edges;
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Node id of a name, if known.
    pub fn id_of(&self, name: &str) -> Option<usize> {
        self.ids.get(name).copied()
    }

    /// Name of a node.
    pub fn name_of(&self, id: usize) -> &str {
        &self.names[id]
    }

    /// Out-neighbours of a node.
    pub fn out_links(&self, id: usize) -> &[usize] {
        &self.out_edges[id]
    }

    /// Out-degree of a node.
    pub fn out_degree(&self, id: usize) -> usize {
        self.out_edges[id].len()
    }

    /// In-degree of a node.
    pub fn in_degree(&self, id: usize) -> usize {
        self.in_degree[id]
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.out_edges.iter().map(|e| e.len()).sum()
    }

    /// All node names.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn links(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn nodes_are_created_on_demand_and_stable() {
        let mut g = LinkGraph::new();
        let a = g.node("a");
        let b = g.node("b");
        assert_ne!(a, b);
        assert_eq!(g.node("a"), a);
        assert_eq!(g.len(), 2);
        assert_eq!(g.name_of(a), "a");
        assert_eq!(g.id_of("b"), Some(b));
        assert_eq!(g.id_of("zzz"), None);
    }

    #[test]
    fn set_links_builds_edges_and_degrees() {
        let mut g = LinkGraph::new();
        g.set_links("home", &links(&["about", "blog", "about"]));
        g.set_links("blog", &links(&["home"]));
        assert_eq!(g.len(), 3);
        assert_eq!(g.edge_count(), 3, "duplicate links are collapsed");
        let home = g.id_of("home").unwrap();
        let about = g.id_of("about").unwrap();
        assert_eq!(g.out_degree(home), 2);
        assert_eq!(g.in_degree(about), 1);
        assert_eq!(g.in_degree(home), 1);
    }

    #[test]
    fn relinking_replaces_old_edges() {
        let mut g = LinkGraph::new();
        g.set_links("p", &links(&["x", "y"]));
        g.set_links("p", &links(&["z"]));
        let p = g.id_of("p").unwrap();
        assert_eq!(g.out_degree(p), 1);
        assert_eq!(g.in_degree(g.id_of("x").unwrap()), 0);
        assert_eq!(g.in_degree(g.id_of("z").unwrap()), 1);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_links_are_ignored() {
        let mut g = LinkGraph::new();
        g.set_links("p", &links(&["p", "q"]));
        assert_eq!(g.out_degree(g.id_of("p").unwrap()), 1);
    }
}
