//! Reference PageRank: power iteration with damping and dangling-node
//! redistribution.

use crate::graph::LinkGraph;
use std::collections::HashMap;

/// PageRank parameters.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct PageRankConfig {
    /// Damping factor (probability of following a link).
    pub damping: f64,
    /// Maximum power iterations.
    pub max_iterations: usize,
    /// L1 convergence tolerance.
    pub tolerance: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            max_iterations: 100,
            tolerance: 1e-9,
        }
    }
}

/// Compute PageRank over the graph. Returns a vector indexed by node id that
/// sums to 1 (for a non-empty graph).
pub fn pagerank(graph: &LinkGraph, config: &PageRankConfig) -> Vec<f64> {
    let n = graph.len();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..config.max_iterations {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling_mass = 0.0;
        for (u, &r) in rank.iter().enumerate() {
            let out = graph.out_links(u);
            if out.is_empty() {
                dangling_mass += r;
            } else {
                let share = r / out.len() as f64;
                for &v in out {
                    next[v] += share;
                }
            }
        }
        let base = (1.0 - config.damping) * uniform + config.damping * dangling_mass * uniform;
        let mut delta = 0.0;
        for v in 0..n {
            let new_val = base + config.damping * next[v];
            delta += (new_val - rank[v]).abs();
            next[v] = new_val;
        }
        std::mem::swap(&mut rank, &mut next);
        if delta < config.tolerance {
            break;
        }
    }
    rank
}

/// PageRank keyed by page name.
pub fn pagerank_by_name(graph: &LinkGraph, config: &PageRankConfig) -> HashMap<String, f64> {
    pagerank(graph, config)
        .into_iter()
        .enumerate()
        .map(|(i, r)| (graph.name_of(i).to_string(), r))
        .collect()
}

/// The `k` highest-ranked node ids, best first.
pub fn top_k(rank: &[f64], k: usize) -> Vec<usize> {
    let mut ids: Vec<usize> = (0..rank.len()).collect();
    ids.sort_by(|&a, &b| {
        rank[b]
            .partial_cmp(&rank[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    ids.truncate(k);
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use qb_common::DetRng;

    fn chain_graph(n: usize) -> LinkGraph {
        // 0 -> 1 -> 2 -> ... -> n-1 (and n-1 dangles)
        let mut g = LinkGraph::new();
        for i in 0..n {
            g.node(&format!("p{i}"));
        }
        for i in 0..n - 1 {
            g.set_links(&format!("p{i}"), &[format!("p{}", i + 1)]);
        }
        g
    }

    #[test]
    fn empty_graph_is_empty_rank() {
        assert!(pagerank(&LinkGraph::new(), &PageRankConfig::default()).is_empty());
    }

    #[test]
    fn ranks_sum_to_one() {
        let g = chain_graph(20);
        let r = pagerank(&g, &PageRankConfig::default());
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum={sum}");
        assert!(r.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn popular_pages_rank_higher() {
        // Star: many pages link to "hub"; hub links to one spoke.
        let mut g = LinkGraph::new();
        for i in 0..20 {
            g.set_links(&format!("spoke{i}"), &["hub".to_string()]);
        }
        g.set_links("hub", &["spoke0".to_string()]);
        let r = pagerank(&g, &PageRankConfig::default());
        let hub = g.id_of("hub").unwrap();
        let spoke5 = g.id_of("spoke5").unwrap();
        assert!(r[hub] > r[spoke5] * 5.0);
        let top = top_k(&r, 2);
        assert_eq!(top[0], hub);
    }

    #[test]
    fn disconnected_nodes_get_baseline_rank() {
        let mut g = LinkGraph::new();
        g.set_links("a", &["b".to_string()]);
        g.node("lonely");
        let r = pagerank(&g, &PageRankConfig::default());
        let lonely = g.id_of("lonely").unwrap();
        assert!(r[lonely] > 0.0);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn by_name_matches_by_id() {
        let g = chain_graph(5);
        let by_id = pagerank(&g, &PageRankConfig::default());
        let by_name = pagerank_by_name(&g, &PageRankConfig::default());
        for i in 0..5 {
            assert!((by_id[i] - by_name[&format!("p{i}")]).abs() < 1e-12);
        }
    }

    #[test]
    fn convergence_is_stable_across_iteration_budgets() {
        let g = chain_graph(30);
        let precise = pagerank(
            &g,
            &PageRankConfig {
                max_iterations: 500,
                tolerance: 1e-14,
                ..PageRankConfig::default()
            },
        );
        let default = pagerank(&g, &PageRankConfig::default());
        let l1: f64 = precise
            .iter()
            .zip(&default)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(l1 < 1e-6, "l1={l1}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn random_graphs_produce_valid_distributions(n in 2usize..60, seed in any::<u64>()) {
            let mut rng = DetRng::new(seed);
            let mut g = LinkGraph::new();
            for i in 0..n {
                g.node(&format!("p{i}"));
            }
            for i in 0..n {
                let degree = rng.gen_index(4);
                let links: Vec<String> = (0..degree)
                    .map(|_| format!("p{}", rng.gen_index(n)))
                    .collect();
                g.set_links(&format!("p{i}"), &links);
            }
            let r = pagerank(&g, &PageRankConfig::default());
            let sum: f64 = r.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6);
            prop_assert!(r.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }
}
