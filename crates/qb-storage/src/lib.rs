//! Content-addressed decentralized storage (the IPFS role in Figure 1).
//!
//! Objects (web pages, index shards, rank vectors) are split into chunks,
//! each chunk becomes a [`Block`] addressed by the SHA-256 of its bytes, and
//! a merkle [`Manifest`] lists the chunk cids. The manifest itself is a block
//! whose cid is the object's identifier — so any bit flip anywhere in the
//! object changes the root cid, which is exactly the tamper-proofness the
//! paper attributes to the DWeb.
//!
//! Availability comes from replication: an object is pinned on `r` peers and
//! every peer that fetches it keeps the blocks in a bounded LRU cache and
//! registers itself as a provider, so popular content gets cheaper and more
//! resilient to serve over time (the paper's "better browsing experiences"
//! claim, quantified in experiment E1).

pub mod block;
pub mod chunker;
pub mod dag;
pub mod network;
pub mod store;

pub use block::Block;
pub use chunker::{chunk_content_defined, chunk_fixed, ChunkerConfig};
pub use dag::Manifest;
pub use network::{FetchStats, ObjectRef, StorageConfig, StorageNetwork};
pub use store::{BlockStore, LruBlockStore, MemoryBlockStore};
