//! Local block stores.

use crate::block::Block;
use qb_common::Cid;
use std::collections::{HashMap, VecDeque};

/// Interface of a local block store.
pub trait BlockStore {
    /// Insert a block (idempotent).
    fn put(&mut self, block: Block);
    /// Fetch a block by cid.
    fn get(&self, cid: &Cid) -> Option<&Block>;
    /// Does the store hold this cid?
    fn has(&self, cid: &Cid) -> bool;
    /// Remove a block; returns true when something was removed.
    fn remove(&mut self, cid: &Cid) -> bool;
    /// Number of blocks held.
    fn len(&self) -> usize;
    /// True when no blocks are held.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Total bytes held.
    fn total_bytes(&self) -> usize;
}

/// Unbounded in-memory store (pinned / published content).
#[derive(Debug, Default, Clone)]
pub struct MemoryBlockStore {
    blocks: HashMap<Cid, Block>,
    bytes: usize,
}

impl MemoryBlockStore {
    /// Create an empty store.
    pub fn new() -> MemoryBlockStore {
        MemoryBlockStore::default()
    }

    /// Iterate over stored cids.
    pub fn cids(&self) -> impl Iterator<Item = &Cid> {
        self.blocks.keys()
    }

    /// Mutable access used only by the tamper-injection experiment (E4):
    /// replaces the stored bytes *without* recomputing the cid, simulating a
    /// malicious or corrupted replica.
    pub fn corrupt(&mut self, cid: &Cid, new_data: Vec<u8>) -> bool {
        if let Some(b) = self.blocks.get_mut(cid) {
            *b = Block::new_unchecked(*cid, new_data);
            true
        } else {
            false
        }
    }
}

impl BlockStore for MemoryBlockStore {
    fn put(&mut self, block: Block) {
        let added = block.len();
        if let Some(old) = self.blocks.insert(block.cid(), block) {
            self.bytes -= old.len();
        }
        self.bytes += added;
    }

    fn get(&self, cid: &Cid) -> Option<&Block> {
        self.blocks.get(cid)
    }

    fn has(&self, cid: &Cid) -> bool {
        self.blocks.contains_key(cid)
    }

    fn remove(&mut self, cid: &Cid) -> bool {
        if let Some(b) = self.blocks.remove(cid) {
            self.bytes -= b.len();
            true
        } else {
            false
        }
    }

    fn len(&self) -> usize {
        self.blocks.len()
    }

    fn total_bytes(&self) -> usize {
        self.bytes
    }
}

/// Bounded LRU block store used as the per-peer cache of fetched content.
#[derive(Debug, Clone)]
pub struct LruBlockStore {
    capacity_bytes: usize,
    blocks: HashMap<Cid, Block>,
    order: VecDeque<Cid>,
    bytes: usize,
    /// Cache hits observed through [`LruBlockStore::get_touch`].
    pub hits: u64,
    /// Cache misses observed through [`LruBlockStore::get_touch`].
    pub misses: u64,
}

impl LruBlockStore {
    /// Create a cache bounded to `capacity_bytes`.
    pub fn new(capacity_bytes: usize) -> LruBlockStore {
        LruBlockStore {
            capacity_bytes,
            blocks: HashMap::new(),
            order: VecDeque::new(),
            bytes: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity_bytes
    }

    /// Replace a cached block's bytes in place, keeping the claimed cid
    /// (tamper-injection experiments). Returns true if the cid was cached.
    pub fn corrupt(&mut self, cid: &Cid, new_data: Vec<u8>) -> bool {
        match self.blocks.get_mut(cid) {
            Some(slot) => {
                let replacement = Block::new_unchecked(*cid, new_data);
                self.bytes = self.bytes - slot.len() + replacement.len();
                *slot = replacement;
                true
            }
            None => false,
        }
    }

    /// Get and record hit/miss statistics, refreshing recency on hit.
    pub fn get_touch(&mut self, cid: &Cid) -> Option<Block> {
        if let Some(b) = self.blocks.get(cid).cloned() {
            self.hits += 1;
            self.touch(cid);
            Some(b)
        } else {
            self.misses += 1;
            None
        }
    }

    fn touch(&mut self, cid: &Cid) {
        if let Some(pos) = self.order.iter().position(|c| c == cid) {
            self.order.remove(pos);
            self.order.push_back(*cid);
        }
    }

    fn evict_to_fit(&mut self, incoming: usize) {
        while self.bytes + incoming > self.capacity_bytes && !self.order.is_empty() {
            if let Some(old) = self.order.pop_front() {
                if let Some(b) = self.blocks.remove(&old) {
                    self.bytes -= b.len();
                }
            }
        }
    }
}

impl BlockStore for LruBlockStore {
    fn put(&mut self, block: Block) {
        if block.len() > self.capacity_bytes {
            return; // Never cache something larger than the whole cache.
        }
        if self.blocks.contains_key(&block.cid()) {
            self.touch(&block.cid());
            return;
        }
        self.evict_to_fit(block.len());
        self.bytes += block.len();
        self.order.push_back(block.cid());
        self.blocks.insert(block.cid(), block);
    }

    fn get(&self, cid: &Cid) -> Option<&Block> {
        self.blocks.get(cid)
    }

    fn has(&self, cid: &Cid) -> bool {
        self.blocks.contains_key(cid)
    }

    fn remove(&mut self, cid: &Cid) -> bool {
        if let Some(b) = self.blocks.remove(cid) {
            self.bytes -= b.len();
            self.order.retain(|c| c != cid);
            true
        } else {
            false
        }
    }

    fn len(&self) -> usize {
        self.blocks.len()
    }

    fn total_bytes(&self) -> usize {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_store_put_get_remove() {
        let mut s = MemoryBlockStore::new();
        let b = Block::new(&b"data"[..]);
        let cid = b.cid();
        s.put(b.clone());
        s.put(b.clone()); // idempotent
        assert_eq!(s.len(), 1);
        assert_eq!(s.total_bytes(), 4);
        assert!(s.has(&cid));
        assert_eq!(s.get(&cid).unwrap().data().as_ref(), b"data");
        assert!(s.remove(&cid));
        assert!(!s.remove(&cid));
        assert!(s.is_empty());
        assert_eq!(s.total_bytes(), 0);
    }

    #[test]
    fn corrupt_breaks_verification() {
        let mut s = MemoryBlockStore::new();
        let b = Block::new(&b"honest bytes"[..]);
        let cid = b.cid();
        s.put(b);
        assert!(s.corrupt(&cid, b"evil bytes".to_vec()));
        assert!(!s.get(&cid).unwrap().verify());
        assert!(!s.corrupt(&Cid::for_data(b"other"), vec![]));
    }

    #[test]
    fn lru_evicts_oldest_first() {
        let mut cache = LruBlockStore::new(30);
        let b1 = Block::new(vec![1u8; 10]);
        let b2 = Block::new(vec![2u8; 10]);
        let b3 = Block::new(vec![3u8; 10]);
        let b4 = Block::new(vec![4u8; 10]);
        cache.put(b1.clone());
        cache.put(b2.clone());
        cache.put(b3.clone());
        assert_eq!(cache.len(), 3);
        cache.put(b4.clone());
        assert_eq!(cache.len(), 3);
        assert!(!cache.has(&b1.cid()), "oldest block should be evicted");
        assert!(cache.has(&b4.cid()));
        assert!(cache.total_bytes() <= 30);
    }

    #[test]
    fn lru_touch_refreshes_recency_and_counts_hits() {
        let mut cache = LruBlockStore::new(30);
        let b1 = Block::new(vec![1u8; 10]);
        let b2 = Block::new(vec![2u8; 10]);
        let b3 = Block::new(vec![3u8; 10]);
        cache.put(b1.clone());
        cache.put(b2.clone());
        cache.put(b3.clone());
        // Touch b1 so b2 becomes the eviction victim.
        assert!(cache.get_touch(&b1.cid()).is_some());
        assert!(cache.get_touch(&Cid::for_data(b"missing")).is_none());
        assert_eq!(cache.hits, 1);
        assert_eq!(cache.misses, 1);
        cache.put(Block::new(vec![4u8; 10]));
        assert!(cache.has(&b1.cid()));
        assert!(!cache.has(&b2.cid()));
    }

    #[test]
    fn lru_rejects_oversized_blocks() {
        let mut cache = LruBlockStore::new(8);
        cache.put(Block::new(vec![0u8; 64]));
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 8);
    }
}
