//! Object manifests: the merkle root tying an object's chunks together.

use qb_common::{varint, Cid, Hash256, QbError, QbResult};

const MANIFEST_MAGIC: &[u8; 6] = b"QBDAG1";

/// A manifest lists the chunk cids of an object in order. The manifest is
/// itself stored as a block; the cid of that block is the object's root cid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Chunk cids in order.
    pub chunks: Vec<Cid>,
    /// Total object size in bytes.
    pub total_len: u64,
}

impl Manifest {
    /// Build a manifest from chunk data (computing each chunk's cid).
    pub fn from_chunks(chunks: &[Vec<u8>]) -> Manifest {
        Manifest {
            chunks: chunks.iter().map(|c| Cid::for_data(c)).collect(),
            total_len: chunks.iter().map(|c| c.len() as u64).sum(),
        }
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Serialize to bytes (deterministic binary format).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 10 + self.chunks.len() * 32);
        out.extend_from_slice(MANIFEST_MAGIC);
        varint::encode_u64(self.total_len, &mut out);
        varint::encode_u64(self.chunks.len() as u64, &mut out);
        for c in &self.chunks {
            out.extend_from_slice(c.0.as_bytes());
        }
        out
    }

    /// Parse a manifest from bytes.
    pub fn decode(data: &[u8]) -> QbResult<Manifest> {
        if data.len() < MANIFEST_MAGIC.len() || &data[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
            return Err(QbError::Codec("not a manifest (bad magic)".into()));
        }
        let mut pos = MANIFEST_MAGIC.len();
        let (total_len, p) = varint::decode_u64(data, pos)?;
        pos = p;
        let (count, p) = varint::decode_u64(data, pos)?;
        pos = p;
        if count > 1_000_000 {
            return Err(QbError::Codec(format!("unreasonable chunk count {count}")));
        }
        let mut chunks = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let end = pos + 32;
            let bytes = data
                .get(pos..end)
                .ok_or_else(|| QbError::Codec("truncated manifest".into()))?;
            let mut arr = [0u8; 32];
            arr.copy_from_slice(bytes);
            chunks.push(Cid(Hash256::from_bytes(arr)));
            pos = end;
        }
        if pos != data.len() {
            return Err(QbError::Codec("trailing bytes after manifest".into()));
        }
        Ok(Manifest { chunks, total_len })
    }

    /// The root cid: cid of the encoded manifest.
    pub fn root_cid(&self) -> Cid {
        Cid::for_data(&self.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip() {
        let chunks = vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()];
        let m = Manifest::from_chunks(&chunks);
        assert_eq!(m.chunk_count(), 3);
        assert_eq!(m.total_len, 11);
        let decoded = Manifest::decode(&m.encode()).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn root_cid_changes_when_any_chunk_changes() {
        let a = Manifest::from_chunks(&[b"aaa".to_vec(), b"bbb".to_vec()]);
        let b = Manifest::from_chunks(&[b"aaa".to_vec(), b"bbc".to_vec()]);
        assert_ne!(a.root_cid(), b.root_cid());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Manifest::decode(b"").is_err());
        assert!(Manifest::decode(b"NOTMAGIC").is_err());
        let mut good = Manifest::from_chunks(&[b"x".to_vec()]).encode();
        good.truncate(good.len() - 5);
        assert!(Manifest::decode(&good).is_err());
        // Trailing junk is rejected too.
        let mut padded = Manifest::from_chunks(&[b"x".to_vec()]).encode();
        padded.push(0);
        assert!(Manifest::decode(&padded).is_err());
    }

    #[test]
    fn empty_object_manifest() {
        let m = Manifest::from_chunks(&[Vec::new()]);
        assert_eq!(m.total_len, 0);
        assert_eq!(m.chunk_count(), 1);
        let decoded = Manifest::decode(&m.encode()).unwrap();
        assert_eq!(decoded, m);
    }

    proptest! {
        #[test]
        fn round_trip_prop(chunk_sizes in proptest::collection::vec(0usize..64, 0..50)) {
            let chunks: Vec<Vec<u8>> = chunk_sizes
                .iter()
                .enumerate()
                .map(|(i, &s)| vec![i as u8; s])
                .collect();
            let m = Manifest::from_chunks(&chunks);
            prop_assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
        }
    }
}
