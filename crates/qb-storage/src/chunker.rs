//! Chunking: splitting an object into blocks.
//!
//! Two strategies are provided. Fixed-size chunking is simple and fast;
//! content-defined chunking (a gear-hash rolling window) re-synchronises
//! chunk boundaries after inserts/deletes so that updated versions of a page
//! share most of their blocks with the previous version — which matters for
//! the DWeb because a page update should not force re-replication of the
//! whole page.

/// Chunker parameters.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ChunkerConfig {
    /// Minimum chunk size in bytes (content-defined only).
    pub min_size: usize,
    /// Average/target chunk size in bytes.
    pub target_size: usize,
    /// Maximum chunk size in bytes.
    pub max_size: usize,
}

impl Default for ChunkerConfig {
    fn default() -> Self {
        ChunkerConfig {
            min_size: 2 * 1024,
            target_size: 8 * 1024,
            max_size: 32 * 1024,
        }
    }
}

impl ChunkerConfig {
    /// Tiny chunks, used in tests so multi-chunk paths are exercised with
    /// small inputs.
    pub fn tiny() -> ChunkerConfig {
        ChunkerConfig {
            min_size: 16,
            target_size: 64,
            max_size: 256,
        }
    }
}

/// Split into fixed-size chunks of `size` bytes (the last chunk may be
/// shorter). An empty input yields a single empty chunk so that every object
/// has at least one block.
pub fn chunk_fixed(data: &[u8], size: usize) -> Vec<Vec<u8>> {
    let size = size.max(1);
    if data.is_empty() {
        return vec![Vec::new()];
    }
    data.chunks(size).map(|c| c.to_vec()).collect()
}

/// Gear table for the rolling hash, generated deterministically from a fixed
/// seed so chunk boundaries are stable across runs and machines.
fn gear_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut state = 0x9E3779B97F4A7C15u64;
    for entry in table.iter_mut() {
        // SplitMix64 step.
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        *entry = z ^ (z >> 31);
    }
    table
}

/// Content-defined chunking with a gear rolling hash.
pub fn chunk_content_defined(data: &[u8], config: &ChunkerConfig) -> Vec<Vec<u8>> {
    if data.is_empty() {
        return vec![Vec::new()];
    }
    let min = config.min_size.max(1);
    let max = config.max_size.max(min);
    let target = config.target_size.clamp(min, max).max(2);
    // Boundary when the top bits of the hash are zero; mask size derived from
    // the target chunk size (power of two).
    let bits = (target as f64).log2().round() as u32;
    let mask: u64 = if bits >= 63 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    let table = gear_table();

    let mut chunks = Vec::new();
    let mut start = 0usize;
    let mut hash: u64 = 0;
    let mut i = 0usize;
    while i < data.len() {
        hash = (hash << 1).wrapping_add(table[data[i] as usize]);
        let len = i - start + 1;
        let at_boundary = len >= min && (hash & mask) == 0;
        if at_boundary || len >= max {
            chunks.push(data[start..=i].to_vec());
            start = i + 1;
            hash = 0;
        }
        i += 1;
    }
    if start < data.len() {
        chunks.push(data[start..].to_vec());
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use qb_common::Cid;

    #[test]
    fn fixed_chunks_reassemble() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 255) as u8).collect();
        let chunks = chunk_fixed(&data, 1024);
        assert_eq!(chunks.len(), 10);
        let rejoined: Vec<u8> = chunks.concat();
        assert_eq!(rejoined, data);
    }

    #[test]
    fn empty_input_yields_one_empty_chunk() {
        assert_eq!(chunk_fixed(&[], 8).len(), 1);
        assert_eq!(chunk_content_defined(&[], &ChunkerConfig::tiny()).len(), 1);
    }

    #[test]
    fn content_defined_chunks_reassemble_and_respect_max() {
        let mut data = Vec::new();
        for i in 0..5_000u32 {
            data.extend_from_slice(&i.to_le_bytes());
        }
        let cfg = ChunkerConfig::tiny();
        let chunks = chunk_content_defined(&data, &cfg);
        assert!(chunks.len() > 1);
        assert_eq!(chunks.concat(), data);
        for (i, c) in chunks.iter().enumerate() {
            if i + 1 < chunks.len() {
                assert!(c.len() <= cfg.max_size, "chunk {i} too large: {}", c.len());
                assert!(c.len() >= cfg.min_size.min(cfg.max_size));
            }
        }
    }

    #[test]
    fn small_edit_preserves_most_chunks() {
        // The point of content-defined chunking: an insertion near the front
        // should not change the chunk boundaries (and hence cids) of the tail.
        let mut rng_state = 12345u64;
        let mut data = Vec::with_capacity(200_000);
        for _ in 0..200_000 {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            data.push((rng_state >> 33) as u8);
        }
        let cfg = ChunkerConfig::default();
        let original: Vec<Cid> = chunk_content_defined(&data, &cfg)
            .iter()
            .map(|c| Cid::for_data(c))
            .collect();
        let mut edited = data.clone();
        edited.splice(1000..1000, b"INSERTED EDIT".iter().copied());
        let new_cids: Vec<Cid> = chunk_content_defined(&edited, &cfg)
            .iter()
            .map(|c| Cid::for_data(c))
            .collect();
        let original_set: std::collections::HashSet<_> = original.iter().collect();
        let shared = new_cids.iter().filter(|c| original_set.contains(c)).count();
        assert!(
            shared * 2 > new_cids.len(),
            "only {shared}/{} chunks shared after a small edit",
            new_cids.len()
        );
    }

    #[test]
    fn fixed_chunking_shares_nothing_after_insert() {
        // Contrast case motivating content-defined chunking.
        let data: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
        let original: Vec<Cid> = chunk_fixed(&data, 4096)
            .iter()
            .map(|c| Cid::for_data(c))
            .collect();
        let mut edited = data.clone();
        edited.insert(0, 0xAA);
        let new_cids: Vec<Cid> = chunk_fixed(&edited, 4096)
            .iter()
            .map(|c| Cid::for_data(c))
            .collect();
        let original_set: std::collections::HashSet<_> = original.iter().collect();
        let shared = new_cids.iter().filter(|c| original_set.contains(c)).count();
        assert!(shared <= 1);
    }

    proptest! {
        #[test]
        fn chunking_always_reassembles(data in proptest::collection::vec(any::<u8>(), 0..8192),
                                       size in 1usize..512) {
            let fixed = chunk_fixed(&data, size);
            prop_assert_eq!(fixed.concat(), data.clone());
            let cdc = chunk_content_defined(&data, &ChunkerConfig::tiny());
            prop_assert_eq!(cdc.concat(), data);
        }
    }
}
