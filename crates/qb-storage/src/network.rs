//! The distributed storage layer: publishing, replication, cached retrieval.

use crate::block::Block;
use crate::chunker::{chunk_content_defined, chunk_fixed, ChunkerConfig};
use crate::dag::Manifest;
use crate::store::{BlockStore, LruBlockStore, MemoryBlockStore};
use qb_common::{Cid, QbError, QbResult, SimDuration};
use qb_dht::DhtNetwork;
use qb_simnet::SimNet;

/// Storage layer configuration.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct StorageConfig {
    /// Number of peers an object is pinned on (including the publisher).
    pub replication: usize,
    /// Chunker parameters.
    pub chunker: ChunkerConfig,
    /// Use content-defined chunking (true) or fixed-size chunking (false).
    pub content_defined: bool,
    /// Per-peer cache capacity in bytes.
    pub cache_bytes: usize,
    /// Whether peers that fetched an object announce themselves as providers
    /// (the DWeb "devices also serve their cached data" behaviour).
    pub announce_cached: bool,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            replication: 3,
            chunker: ChunkerConfig::default(),
            content_defined: true,
            cache_bytes: 8 * 1024 * 1024,
            announce_cached: true,
        }
    }
}

impl StorageConfig {
    /// Small configuration for unit tests.
    pub fn small() -> StorageConfig {
        StorageConfig {
            replication: 2,
            chunker: ChunkerConfig::tiny(),
            content_defined: true,
            cache_bytes: 64 * 1024,
            announce_cached: true,
        }
    }
}

/// Reference to a stored object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ObjectRef {
    /// Root cid (cid of the manifest block).
    pub root: Cid,
    /// Total object size in bytes.
    pub total_len: u64,
    /// Number of chunks.
    pub chunk_count: usize,
}

/// Cost accounting of a publish or fetch operation.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FetchStats {
    /// End-to-end latency charged to the caller.
    pub latency: SimDuration,
    /// RPC attempts issued (DHT + block transfers).
    pub messages: u64,
    /// Payload bytes moved across the network.
    pub bytes: u64,
    /// Blocks served from the local cache/pinned store.
    pub cache_hits: u64,
    /// Blocks that failed hash verification (tampering detected).
    pub integrity_failures: u64,
    /// True when the whole object was served locally.
    pub from_local: bool,
}

/// Per-peer storage state plus the distributed publish/fetch operations.
#[derive(Debug)]
pub struct StorageNetwork {
    config: StorageConfig,
    pinned: Vec<MemoryBlockStore>,
    caches: Vec<LruBlockStore>,
}

impl StorageNetwork {
    /// Create storage state for `n` peers.
    pub fn new(n: usize, config: StorageConfig) -> StorageNetwork {
        StorageNetwork {
            pinned: (0..n).map(|_| MemoryBlockStore::new()).collect(),
            caches: (0..n)
                .map(|_| LruBlockStore::new(config.cache_bytes))
                .collect(),
            config,
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &StorageConfig {
        &self.config
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.pinned.len()
    }

    /// True when the storage network has no peers.
    pub fn is_empty(&self) -> bool {
        self.pinned.is_empty()
    }

    /// The pinned store of a peer (tests and the tamper experiment use this).
    pub fn pinned_store_mut(&mut self, peer: u64) -> &mut MemoryBlockStore {
        &mut self.pinned[peer as usize]
    }

    /// Pinned store of a peer (read-only).
    pub fn pinned_store(&self, peer: u64) -> &MemoryBlockStore {
        &self.pinned[peer as usize]
    }

    /// Cache hit/miss counters of a peer's LRU cache.
    pub fn cache_stats(&self, peer: u64) -> (u64, u64) {
        let c = &self.caches[peer as usize];
        (c.hits, c.misses)
    }

    fn chunk(&self, data: &[u8]) -> Vec<Vec<u8>> {
        if self.config.content_defined {
            chunk_content_defined(data, &self.config.chunker)
        } else {
            chunk_fixed(data, self.config.chunker.target_size)
        }
    }

    fn block_on_peer(&self, peer: u64, cid: &Cid) -> Option<Block> {
        self.pinned[peer as usize]
            .get(cid)
            .cloned()
            .or_else(|| self.caches[peer as usize].get(cid).cloned())
    }

    /// Does `peer` hold every block of the object locally?
    fn holds_object(&self, peer: u64, root: &Cid) -> Option<(Manifest, Vec<Block>)> {
        let manifest_block = self.block_on_peer(peer, root)?;
        let manifest = Manifest::decode(manifest_block.data()).ok()?;
        let mut blocks = Vec::with_capacity(manifest.chunks.len());
        for c in &manifest.chunks {
            blocks.push(self.block_on_peer(peer, c)?);
        }
        Some((manifest, blocks))
    }

    /// Publish an object from `from`: chunk it, pin it locally, replicate it
    /// to the closest peers to its root key and announce providers in the DHT.
    pub fn put_object(
        &mut self,
        net: &mut SimNet,
        dht: &mut DhtNetwork,
        from: u64,
        data: &[u8],
    ) -> QbResult<(ObjectRef, FetchStats)> {
        if !net.is_online(from) {
            return Err(QbError::NodeOffline(from));
        }
        let chunks = self.chunk(data);
        let manifest = Manifest::from_chunks(&chunks);
        let manifest_block = Block::new(manifest.encode());
        let root = manifest_block.cid();
        let object_ref = ObjectRef {
            root,
            total_len: manifest.total_len,
            chunk_count: manifest.chunk_count(),
        };

        let mut stats = FetchStats::default();

        // Pin locally.
        self.pinned[from as usize].put(manifest_block.clone());
        for c in &chunks {
            self.pinned[from as usize].put(Block::new(c.clone()));
        }

        // Announce the publisher as a provider.
        let provider_key = root.to_dht_key();
        let put = dht.add_provider(net, from, provider_key)?;
        stats.latency += put.latency;
        stats.messages += put.messages;

        // Replicate to the r-1 online peers closest to the root key.
        if self.config.replication > 1 {
            let targets = dht.closest_online_global(net, &root.0, self.config.replication + 1);
            let mut replicated = 0usize;
            for target in targets {
                if target.index == from || replicated + 1 >= self.config.replication {
                    if replicated + 1 >= self.config.replication {
                        break;
                    }
                    continue;
                }
                let payload: usize = data.len() + manifest_block.len();
                let (res, lat) = net.rpc_or_timeout(from, target.index, payload, 16);
                stats.latency += lat;
                stats.messages += 1;
                if res.is_ok() {
                    stats.bytes += payload as u64;
                    self.pinned[target.index as usize].put(manifest_block.clone());
                    for c in &chunks {
                        self.pinned[target.index as usize].put(Block::new(c.clone()));
                    }
                    if let Ok(ann) = dht.add_provider(net, target.index, provider_key) {
                        stats.messages += ann.messages;
                    }
                    replicated += 1;
                }
            }
        }
        Ok((object_ref, stats))
    }

    /// Fetch an object by root cid, verifying every block.
    pub fn get_object(
        &mut self,
        net: &mut SimNet,
        dht: &mut DhtNetwork,
        from: u64,
        root: Cid,
    ) -> QbResult<(Vec<u8>, FetchStats)> {
        if !net.is_online(from) {
            return Err(QbError::NodeOffline(from));
        }
        let mut stats = FetchStats::default();

        // Fast path: everything is already local.
        if let Some((manifest, blocks)) = self.holds_object(from, &root) {
            stats.from_local = true;
            stats.cache_hits = 1 + manifest.chunk_count() as u64;
            let mut data = Vec::with_capacity(manifest.total_len as usize);
            for b in blocks {
                data.extend_from_slice(b.data());
            }
            return Ok((data, stats));
        }

        // Find providers through the DHT.
        let (providers, lat, msgs) = dht.get_providers(net, from, root.to_dht_key())?;
        stats.latency += lat;
        stats.messages += msgs;
        let providers: Vec<u64> = providers
            .iter()
            .map(|p| p.index)
            .filter(|&p| p != from)
            .collect();
        if providers.is_empty() {
            return Err(QbError::NotFound(format!("no remote providers for {root}")));
        }

        // Fetch and verify the manifest.
        let mut manifest: Option<Manifest> = None;
        for &p in &providers {
            let Some(remote) = self.block_on_peer(p, &root) else {
                continue;
            };
            stats.messages += 1;
            let (res, lat) = net.rpc_or_timeout(from, p, 64, remote.len());
            stats.latency += lat;
            if res.is_err() {
                continue;
            }
            stats.bytes += remote.len() as u64;
            match Block::from_parts(root, remote.data().clone()) {
                Ok(verified) => {
                    if let Ok(m) = Manifest::decode(verified.data()) {
                        self.caches[from as usize].put(verified);
                        manifest = Some(m);
                        break;
                    }
                    stats.integrity_failures += 1;
                }
                Err(_) => {
                    stats.integrity_failures += 1;
                }
            }
        }
        let manifest = manifest.ok_or_else(|| {
            if stats.integrity_failures > 0 {
                QbError::IntegrityViolation {
                    expected: root.to_hex(),
                    actual: "corrupted copies from all providers".into(),
                }
            } else {
                QbError::NotFound(format!("manifest {root} unavailable"))
            }
        })?;

        // Fetch every chunk, preferring the local cache, then providers.
        let mut data = Vec::with_capacity(manifest.total_len as usize);
        for chunk_cid in &manifest.chunks {
            if let Some(local) = self.caches[from as usize].get_touch(chunk_cid) {
                stats.cache_hits += 1;
                data.extend_from_slice(local.data());
                continue;
            }
            if let Some(pinned) = self.pinned[from as usize].get(chunk_cid).cloned() {
                stats.cache_hits += 1;
                data.extend_from_slice(pinned.data());
                continue;
            }
            let mut fetched = false;
            for &p in &providers {
                let Some(remote) = self.block_on_peer(p, chunk_cid) else {
                    continue;
                };
                stats.messages += 1;
                let (res, lat) = net.rpc_or_timeout(from, p, 64, remote.len());
                stats.latency += lat;
                if res.is_err() {
                    continue;
                }
                stats.bytes += remote.len() as u64;
                match Block::from_parts(*chunk_cid, remote.data().clone()) {
                    Ok(verified) => {
                        data.extend_from_slice(verified.data());
                        self.caches[from as usize].put(verified);
                        fetched = true;
                        break;
                    }
                    Err(_) => {
                        stats.integrity_failures += 1;
                    }
                }
            }
            if !fetched {
                return Err(if stats.integrity_failures > 0 {
                    QbError::IntegrityViolation {
                        expected: chunk_cid.to_hex(),
                        actual: "all providers returned corrupted data".into(),
                    }
                } else {
                    QbError::NotFound(format!("chunk {chunk_cid} unavailable"))
                });
            }
        }

        // The fetcher now serves the object from its cache.
        if self.config.announce_cached {
            if let Ok(ann) = dht.add_provider(net, from, root.to_dht_key()) {
                stats.messages += ann.messages;
            }
        }
        Ok((data, stats))
    }

    /// Corrupt the pinned copy of a block on a specific peer (experiment E4:
    /// tamper injection). Returns true if the peer held the block.
    pub fn corrupt_pinned(&mut self, peer: u64, cid: &Cid, evil: Vec<u8>) -> bool {
        self.pinned[peer as usize].corrupt(cid, evil)
    }

    /// Peers that hold a pinned copy of the given block.
    pub fn pinned_holders(&self, cid: &Cid) -> Vec<u64> {
        (0..self.pinned.len() as u64)
            .filter(|&p| self.pinned[p as usize].has(cid))
            .collect()
    }

    /// Peers that hold a cached (non-pinned) copy of the given block. Peers
    /// that fetched an object serve it from their caches afterwards, so a
    /// complete tamper experiment must corrupt these copies too.
    pub fn cached_holders(&self, cid: &Cid) -> Vec<u64> {
        (0..self.caches.len() as u64)
            .filter(|&p| self.caches[p as usize].has(cid))
            .collect()
    }

    /// Corrupt the cached copy of a block on a specific peer. Returns true if
    /// the peer had the block cached.
    pub fn corrupt_cached(&mut self, peer: u64, cid: &Cid, evil: Vec<u8>) -> bool {
        self.caches[peer as usize].corrupt(cid, evil)
    }

    /// Corrupt every copy of a block anywhere in the network — pinned
    /// replicas and peer caches alike. Returns the number of copies
    /// corrupted. This is the strongest tamper-injection an attacker
    /// controlling every holder could mount.
    pub fn corrupt_all_copies(&mut self, cid: &Cid, evil: &[u8]) -> usize {
        let mut corrupted = 0;
        for p in self.pinned_holders(cid) {
            if self.corrupt_pinned(p, cid, evil.to_vec()) {
                corrupted += 1;
            }
        }
        for p in self.cached_holders(cid) {
            if self.corrupt_cached(p, cid, evil.to_vec()) {
                corrupted += 1;
            }
        }
        corrupted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_dht::DhtConfig;
    use qb_simnet::NetConfig;

    fn setup(n: usize, seed: u64) -> (SimNet, DhtNetwork, StorageNetwork) {
        let mut net = SimNet::new(n, NetConfig::lan(), seed);
        let dht = DhtNetwork::build(&mut net, DhtConfig::small());
        let storage = StorageNetwork::new(n, StorageConfig::small());
        (net, dht, storage)
    }

    fn sample_data(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn put_then_get_from_another_peer() {
        let (mut net, mut dht, mut storage) = setup(24, 1);
        let data = sample_data(5000);
        let (obj, put_stats) = storage.put_object(&mut net, &mut dht, 3, &data).unwrap();
        assert_eq!(obj.total_len, 5000);
        assert!(obj.chunk_count >= 1);
        assert!(put_stats.messages > 0);
        let (fetched, stats) = storage
            .get_object(&mut net, &mut dht, 17, obj.root)
            .unwrap();
        assert_eq!(fetched, data);
        assert!(!stats.from_local);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn second_fetch_is_served_locally() {
        let (mut net, mut dht, mut storage) = setup(24, 2);
        let data = sample_data(2000);
        let (obj, _) = storage.put_object(&mut net, &mut dht, 0, &data).unwrap();
        let _ = storage.get_object(&mut net, &mut dht, 9, obj.root).unwrap();
        let (again, stats) = storage.get_object(&mut net, &mut dht, 9, obj.root).unwrap();
        assert_eq!(again, data);
        assert!(stats.from_local);
        assert_eq!(stats.messages, 0);
        assert_eq!(stats.latency, SimDuration::ZERO);
    }

    #[test]
    fn cached_peer_becomes_a_provider() {
        let (mut net, mut dht, mut storage) = setup(32, 3);
        let data = sample_data(3000);
        let (obj, _) = storage.put_object(&mut net, &mut dht, 0, &data).unwrap();
        let _ = storage.get_object(&mut net, &mut dht, 5, obj.root).unwrap();
        // Kill the publisher and its replicas; the cached copy at peer 5 must
        // keep the object available.
        net.set_online(0, false);
        for holder in storage.pinned_holders(&obj.root) {
            net.set_online(holder, false);
        }
        let (fetched, _) = storage
            .get_object(&mut net, &mut dht, 20, obj.root)
            .unwrap();
        assert_eq!(fetched, data);
    }

    #[test]
    fn replication_allows_publisher_failure() {
        let (mut net, mut dht, mut storage) = setup(32, 4);
        let data = sample_data(4000);
        let (obj, _) = storage.put_object(&mut net, &mut dht, 2, &data).unwrap();
        let holders = storage.pinned_holders(&obj.root);
        assert!(holders.len() >= 2, "expected replication, got {holders:?}");
        net.set_online(2, false);
        let (fetched, _) = storage
            .get_object(&mut net, &mut dht, 25, obj.root)
            .unwrap();
        assert_eq!(fetched, data);
    }

    #[test]
    fn missing_object_is_not_found() {
        let (mut net, mut dht, mut storage) = setup(16, 5);
        let err = storage
            .get_object(&mut net, &mut dht, 1, Cid::for_data(b"never published"))
            .unwrap_err();
        assert!(err.is_availability());
    }

    #[test]
    fn tampered_replica_is_detected_and_routed_around() {
        let (mut net, mut dht, mut storage) = setup(32, 6);
        let data = sample_data(1500);
        let (obj, _) = storage.put_object(&mut net, &mut dht, 0, &data).unwrap();
        // Corrupt one replica's copy of the manifest.
        let holders = storage.pinned_holders(&obj.root);
        let victim = *holders.iter().find(|&&h| h != 0).unwrap_or(&holders[0]);
        assert!(storage.corrupt_pinned(victim, &obj.root, b"evil manifest".to_vec()));
        // Fetch still succeeds (another provider has an honest copy) and the
        // corruption is either avoided or detected, never silently accepted.
        let (fetched, stats) = storage
            .get_object(&mut net, &mut dht, 21, obj.root)
            .unwrap();
        assert_eq!(fetched, data);
        let _ = stats;
    }

    #[test]
    fn all_copies_tampered_is_an_integrity_error() {
        let (mut net, mut dht, mut storage) = setup(24, 7);
        let data = sample_data(800);
        let (obj, _) = storage.put_object(&mut net, &mut dht, 0, &data).unwrap();
        for holder in storage.pinned_holders(&obj.root) {
            storage.corrupt_pinned(holder, &obj.root, b"evil".to_vec());
        }
        let err = storage
            .get_object(&mut net, &mut dht, 10, obj.root)
            .unwrap_err();
        assert!(matches!(err, QbError::IntegrityViolation { .. }));
    }

    #[test]
    fn offline_requester_is_rejected() {
        let (mut net, mut dht, mut storage) = setup(8, 8);
        net.set_online(4, false);
        assert!(matches!(
            storage.get_object(&mut net, &mut dht, 4, Cid::for_data(b"x")),
            Err(QbError::NodeOffline(4))
        ));
        assert!(matches!(
            storage.put_object(&mut net, &mut dht, 4, b"data"),
            Err(QbError::NodeOffline(4))
        ));
    }
}
