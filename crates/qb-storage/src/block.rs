//! Blocks: the unit of content-addressed storage.

use bytes::Bytes;
use qb_common::{Cid, QbError, QbResult};

/// An immutable, content-addressed blob of bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    cid: Cid,
    data: Bytes,
}

impl Block {
    /// Create a block from raw bytes (computes the cid).
    pub fn new(data: impl Into<Bytes>) -> Block {
        let data = data.into();
        Block {
            cid: Cid::for_data(&data),
            data,
        }
    }

    /// Reconstruct a block received from an untrusted peer and verify that
    /// the bytes match the claimed cid. This is the tamper-detection gate.
    pub fn from_parts(cid: Cid, data: impl Into<Bytes>) -> QbResult<Block> {
        let data = data.into();
        let actual = Cid::for_data(&data);
        if actual != cid {
            return Err(QbError::IntegrityViolation {
                expected: cid.to_hex(),
                actual: actual.to_hex(),
            });
        }
        Ok(Block { cid, data })
    }

    /// Construct without verification. Only used by the simulation to model a
    /// malicious or faulty peer handing out corrupted data; honest code paths
    /// always go through [`Block::from_parts`].
    pub fn new_unchecked(cid: Cid, data: impl Into<Bytes>) -> Block {
        Block {
            cid,
            data: data.into(),
        }
    }

    /// The block's content identifier.
    pub fn cid(&self) -> Cid {
        self.cid
    }

    /// The block's bytes.
    pub fn data(&self) -> &Bytes {
        &self.data
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for a zero-length block.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Re-verify the stored bytes against the cid.
    pub fn verify(&self) -> bool {
        self.cid.verify(&self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_block_verifies() {
        let b = Block::new(&b"hello dweb"[..]);
        assert!(b.verify());
        assert_eq!(b.len(), 10);
        assert!(!b.is_empty());
    }

    #[test]
    fn from_parts_accepts_matching_cid() {
        let data = b"page body".to_vec();
        let cid = Cid::for_data(&data);
        let b = Block::from_parts(cid, data).unwrap();
        assert_eq!(b.cid(), cid);
    }

    #[test]
    fn from_parts_rejects_tampered_data() {
        let data = b"original".to_vec();
        let cid = Cid::for_data(&data);
        let err = Block::from_parts(cid, b"tampered".to_vec()).unwrap_err();
        assert!(matches!(err, QbError::IntegrityViolation { .. }));
    }

    #[test]
    fn unchecked_block_fails_verification_when_corrupt() {
        let cid = Cid::for_data(b"real content");
        let fake = Block::new_unchecked(cid, &b"malicious content"[..]);
        assert!(!fake.verify());
    }

    proptest! {
        #[test]
        fn cid_is_deterministic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let a = Block::new(data.clone());
            let b = Block::new(data);
            prop_assert_eq!(a.cid(), b.cid());
        }
    }
}
