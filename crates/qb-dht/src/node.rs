//! Per-node DHT state: routing table, record store and provider lists.

use crate::routing::RoutingTable;
use crate::DhtConfig;
use qb_common::{DhtKey, NodeId, SimInstant};
use std::collections::HashMap;

/// A value stored in the DHT under a key.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Record {
    /// Key under which the record is stored.
    pub key: DhtKey,
    /// Opaque value bytes (serialized pointers, registry entries, ...).
    pub value: Vec<u8>,
    /// Node that originally published the record.
    pub publisher: NodeId,
    /// Simulation time at which the record expires.
    pub expires_at: SimInstant,
    /// Monotonically increasing version; a replica only overwrites its copy
    /// with a higher version (last-writer-wins on version).
    pub version: u64,
}

/// The local state of one DHT participant.
#[derive(Debug, Clone)]
pub struct DhtNode {
    /// This node's identity.
    pub id: NodeId,
    /// Kademlia routing table.
    pub routing: RoutingTable,
    records: HashMap<DhtKey, Record>,
    providers: HashMap<DhtKey, Vec<NodeId>>,
}

impl DhtNode {
    /// Create a fresh node with an empty routing table.
    pub fn new(id: NodeId, config: &DhtConfig) -> DhtNode {
        DhtNode {
            id,
            routing: RoutingTable::new(id.key, config.k),
            records: HashMap::new(),
            providers: HashMap::new(),
        }
    }

    /// Handle a `STORE` RPC: keep the record if it is newer than what we have.
    /// Returns true when the record was accepted.
    pub fn store(&mut self, record: Record) -> bool {
        match self.records.get(&record.key) {
            Some(existing) if existing.version > record.version => false,
            _ => {
                self.records.insert(record.key, record);
                true
            }
        }
    }

    /// Handle a `FIND_VALUE` RPC: return the record if present and not expired.
    pub fn find_value(&self, key: &DhtKey, now: SimInstant) -> Option<&Record> {
        self.records.get(key).filter(|r| r.expires_at > now)
    }

    /// Drop expired records; returns how many were removed.
    pub fn expire_records(&mut self, now: SimInstant) -> usize {
        let before = self.records.len();
        self.records.retain(|_, r| r.expires_at > now);
        before - self.records.len()
    }

    /// All live records (used for republish).
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.records.values()
    }

    /// Number of records held locally.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// Handle an `ADD_PROVIDER` RPC.
    pub fn add_provider(&mut self, key: DhtKey, provider: NodeId) {
        let list = self.providers.entry(key).or_default();
        if !list.iter().any(|p| p.index == provider.index) {
            list.push(provider);
        }
    }

    /// Handle a `GET_PROVIDERS` RPC.
    pub fn get_providers(&self, key: &DhtKey) -> Vec<NodeId> {
        self.providers.get(key).cloned().unwrap_or_default()
    }

    /// Remove a provider (e.g. after it was observed dead).
    pub fn remove_provider(&mut self, key: &DhtKey, provider: &NodeId) {
        if let Some(list) = self.providers.get_mut(key) {
            list.retain(|p| p.index != provider.index);
        }
    }

    /// Handle a `FIND_NODE` RPC: return our `count` closest contacts to the
    /// target, plus ourselves implicitly handled by the caller.
    pub fn find_node(&self, target: &qb_common::Hash256, count: usize) -> Vec<NodeId> {
        self.routing.closest(target, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_common::SimDuration;

    fn record(key_label: &str, version: u64, expires: u64) -> Record {
        Record {
            key: DhtKey::from_bytes(key_label.as_bytes()),
            value: format!("value-{version}").into_bytes(),
            publisher: NodeId::from_index(9),
            expires_at: SimInstant::ZERO + SimDuration::from_secs(expires),
            version,
        }
    }

    #[test]
    fn store_and_find() {
        let mut n = DhtNode::new(NodeId::from_index(1), &DhtConfig::small());
        let r = record("k", 1, 100);
        assert!(n.store(r.clone()));
        let found = n.find_value(&r.key, SimInstant::ZERO).unwrap();
        assert_eq!(found.value, r.value);
        assert_eq!(n.record_count(), 1);
    }

    #[test]
    fn stale_version_does_not_overwrite() {
        let mut n = DhtNode::new(NodeId::from_index(1), &DhtConfig::small());
        assert!(n.store(record("k", 5, 100)));
        assert!(!n.store(record("k", 3, 100)));
        let key = DhtKey::from_bytes(b"k");
        assert_eq!(n.find_value(&key, SimInstant::ZERO).unwrap().version, 5);
        // Equal or newer versions do overwrite.
        assert!(n.store(record("k", 5, 200)));
        assert!(n.store(record("k", 7, 200)));
    }

    #[test]
    fn expired_records_are_invisible_and_collectable() {
        let mut n = DhtNode::new(NodeId::from_index(1), &DhtConfig::small());
        n.store(record("k", 1, 10));
        let key = DhtKey::from_bytes(b"k");
        let late = SimInstant::ZERO + SimDuration::from_secs(11);
        assert!(n.find_value(&key, late).is_none());
        assert_eq!(n.expire_records(late), 1);
        assert_eq!(n.record_count(), 0);
    }

    #[test]
    fn provider_lists_deduplicate() {
        let mut n = DhtNode::new(NodeId::from_index(1), &DhtConfig::small());
        let key = DhtKey::from_bytes(b"content");
        n.add_provider(key, NodeId::from_index(2));
        n.add_provider(key, NodeId::from_index(2));
        n.add_provider(key, NodeId::from_index(3));
        assert_eq!(n.get_providers(&key).len(), 2);
        n.remove_provider(&key, &NodeId::from_index(2));
        assert_eq!(n.get_providers(&key).len(), 1);
        assert!(n.get_providers(&DhtKey::from_bytes(b"other")).is_empty());
    }

    #[test]
    fn find_node_returns_closest_contacts() {
        let cfg = DhtConfig::small();
        let mut n = DhtNode::new(NodeId::from_index(0), &cfg);
        for i in 1..30 {
            n.routing.observe(NodeId::from_index(i), false);
        }
        let target = NodeId::from_index(100).key;
        let found = n.find_node(&target, 3);
        assert_eq!(found.len(), 3);
        for w in found.windows(2) {
            assert!(w[0].key.xor(&target) <= w[1].key.xor(&target));
        }
    }
}
