//! Kademlia distributed hash table over the simulated network.
//!
//! This is the routing substrate of the DWeb in the QueenBee vision: provider
//! records for content-addressed blocks, page-name registry pointers and
//! inverted-index shard pointers are all stored as DHT records at the `k`
//! nodes whose identifiers are closest (XOR metric) to the record key.
//!
//! The implementation follows the Kademlia paper: 256-bit keys, k-buckets
//! with least-recently-seen eviction policy, iterative α-parallel lookups,
//! `STORE`/`FIND_VALUE`/`FIND_NODE`/`ADD_PROVIDER`/`GET_PROVIDERS` RPCs, TTL
//! based record expiry and periodic republish. All traffic flows through
//! [`qb_simnet::SimNet`], so lookups observe latency, churn, partitions and
//! message loss, and every experiment can account hops, messages and bytes.
//!
//! Lookups are **event driven**: the per-lookup state machine in
//! [`lookup`] keeps up to α RPC handles in flight via
//! [`qb_simnet::SimNet::send_async_at`] and advances on completions, so
//! hops from different concurrent lookups interleave on contended links.
//! The synchronous entry points ([`DhtNetwork::lookup_nodes`],
//! [`DhtNetwork::get_record`], …) drive the same machine eagerly.

pub mod lookup;
pub mod network;
pub mod node;
pub mod routing;

pub use lookup::{LookupMachine, LookupStep};
pub use network::{DhtNetwork, GetOutcome, LookupOutcome, PutOutcome};
pub use node::{DhtNode, Record};
pub use routing::RoutingTable;

use qb_common::SimDuration;

/// Tunable parameters of the DHT.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DhtConfig {
    /// Replication parameter: bucket size and number of storage replicas.
    pub k: usize,
    /// Lookup parallelism.
    pub alpha: usize,
    /// Time-to-live of stored records before they must be republished.
    pub record_ttl: SimDuration,
    /// Approximate request size in bytes used for traffic accounting.
    pub request_bytes: usize,
    /// Approximate per-contact response size in bytes (node descriptors).
    pub contact_bytes: usize,
    /// Maximum number of iterative lookup rounds before giving up.
    pub max_rounds: usize,
}

impl Default for DhtConfig {
    fn default() -> Self {
        DhtConfig {
            k: 20,
            alpha: 3,
            record_ttl: SimDuration::from_secs(3600),
            request_bytes: 72,
            contact_bytes: 40,
            max_rounds: 20,
        }
    }
}

impl DhtConfig {
    /// Small configuration used in unit tests (tiny networks).
    pub fn small() -> DhtConfig {
        DhtConfig {
            k: 4,
            alpha: 2,
            ..DhtConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = DhtConfig::default();
        assert!(c.k >= c.alpha);
        assert!(c.max_rounds > 0);
        let s = DhtConfig::small();
        assert!(s.k < c.k);
    }
}
