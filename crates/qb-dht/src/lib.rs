//! Kademlia distributed hash table over the simulated network.
//!
//! This is the routing substrate of the DWeb in the QueenBee vision: provider
//! records for content-addressed blocks, page-name registry pointers and
//! inverted-index shard pointers are all stored as DHT records at the `k`
//! nodes whose identifiers are closest (XOR metric) to the record key.
//!
//! The implementation follows the Kademlia paper: 256-bit keys, k-buckets
//! with least-recently-seen eviction policy, iterative α-parallel lookups,
//! `STORE`/`FIND_VALUE`/`FIND_NODE`/`ADD_PROVIDER`/`GET_PROVIDERS` RPCs, TTL
//! based record expiry and periodic republish. All traffic flows through
//! [`qb_simnet::SimNet`], so lookups observe latency, churn, partitions and
//! message loss, and every experiment can account hops, messages and bytes.
//!
//! Lookups are **event driven**: the per-lookup state machine in
//! [`lookup`] keeps up to α RPC handles in flight via
//! [`qb_simnet::SimNet::send_async_at`] and advances on completions, so
//! hops from different concurrent lookups interleave on contended links.
//! The synchronous entry points ([`DhtNetwork::lookup_nodes`],
//! [`DhtNetwork::get_record`], …) drive the same machine eagerly.

pub mod lookup;
pub mod network;
pub mod node;
pub mod routing;

pub use lookup::{HedgeStats, LookupMachine, LookupStep};
pub use network::{DhtNetwork, GetOutcome, LookupOutcome, PutOutcome};
pub use node::{DhtNode, Record};
pub use routing::RoutingTable;

use qb_common::SimDuration;

/// Tunable parameters of the DHT.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DhtConfig {
    /// Replication parameter: bucket size and number of storage replicas.
    pub k: usize,
    /// Lookup parallelism.
    pub alpha: usize,
    /// Time-to-live of stored records before they must be republished.
    pub record_ttl: SimDuration,
    /// Approximate request size in bytes used for traffic accounting.
    pub request_bytes: usize,
    /// Approximate per-contact response size in bytes (node descriptors).
    pub contact_bytes: usize,
    /// Maximum number of iterative lookup rounds before giving up.
    pub max_rounds: usize,
    /// Hedged-fetch knobs (off by default).
    pub hedge: HedgeConfig,
}

/// Tail-cutting hedged fetches: a value lookup arms a timer at the
/// origin's adaptive p95 RTT and, on expiry, issues one extra speculative
/// RPC to the next-closest unqueried replica. The first version-satisfying
/// response wins and the loser is cancelled ([`qb_simnet::SimNet::cancel_async`]);
/// every hedge is charged to [`qb_simnet::NetStats`] like any other RPC
/// and attributed under `hedges_fired` / `hedges_won` /
/// `hedges_wasted_bytes`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HedgeConfig {
    /// Master switch. Off keeps the lookup path byte-identical to the
    /// unhedged machine.
    pub enabled: bool,
    /// Safety valve: at most this percentage of an origin's value fetches
    /// may fire a hedge (so a uniformly slow network cannot double total
    /// traffic). 5 means one hedge per twenty fetches.
    pub percent: u32,
    /// Observed successful RTTs an origin must accumulate before its p95
    /// is trusted to arm hedge timers.
    pub min_rtt_samples: u64,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            enabled: false,
            percent: 5,
            min_rtt_samples: 16,
        }
    }
}

impl HedgeConfig {
    /// An enabled configuration with the default budget knobs.
    pub fn enabled() -> HedgeConfig {
        HedgeConfig {
            enabled: true,
            ..HedgeConfig::default()
        }
    }
}

impl Default for DhtConfig {
    fn default() -> Self {
        DhtConfig {
            k: 20,
            alpha: 3,
            record_ttl: SimDuration::from_secs(3600),
            request_bytes: 72,
            contact_bytes: 40,
            max_rounds: 20,
            hedge: HedgeConfig::default(),
        }
    }
}

impl DhtConfig {
    /// Small configuration used in unit tests (tiny networks).
    pub fn small() -> DhtConfig {
        DhtConfig {
            k: 4,
            alpha: 2,
            ..DhtConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = DhtConfig::default();
        assert!(c.k >= c.alpha);
        assert!(c.max_rounds > 0);
        assert!(!c.hedge.enabled, "hedging is opt-in");
        assert!(c.hedge.percent > 0 && c.hedge.min_rtt_samples > 0);
        let s = DhtConfig::small();
        assert!(s.k < c.k);
    }

    #[test]
    fn hedge_config_enabled_keeps_the_budget_defaults() {
        let h = HedgeConfig::enabled();
        assert!(h.enabled);
        assert_eq!(h.percent, HedgeConfig::default().percent);
        assert_eq!(h.min_rtt_samples, HedgeConfig::default().min_rtt_samples);
    }
}
