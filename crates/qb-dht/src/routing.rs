//! K-bucket routing table.

use qb_common::{Hash256, NodeId};

/// A Kademlia routing table: 256 buckets indexed by the length of the common
/// key prefix with the local node, each holding at most `k` contacts ordered
/// from least- to most-recently seen.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    local: Hash256,
    k: usize,
    buckets: Vec<Vec<NodeId>>,
}

impl RoutingTable {
    /// Create an empty routing table for a node whose key is `local`.
    pub fn new(local: Hash256, k: usize) -> RoutingTable {
        RoutingTable {
            local,
            k: k.max(1),
            buckets: vec![Vec::new(); 257],
        }
    }

    /// Key of the owning node.
    pub fn local_key(&self) -> Hash256 {
        self.local
    }

    /// Bucket index for a peer key (common prefix length, capped at 256).
    fn bucket_index(&self, key: &Hash256) -> usize {
        self.local.common_prefix_len(key).min(256)
    }

    /// Record that we heard from `peer`. Moves it to the most-recently-seen
    /// position; inserts it if there is room; otherwise the least recently
    /// seen contact is evicted when `evict_stale` is true (we model the
    /// "ping the oldest" rule as: the caller decides whether the oldest is
    /// stale), else the new contact is dropped (classic Kademlia behaviour).
    pub fn observe(&mut self, peer: NodeId, evict_stale: bool) {
        if peer.key == self.local {
            return;
        }
        let idx = self.bucket_index(&peer.key);
        let bucket = &mut self.buckets[idx];
        if let Some(pos) = bucket.iter().position(|c| c.key == peer.key) {
            let c = bucket.remove(pos);
            bucket.push(c);
            return;
        }
        if bucket.len() < self.k {
            bucket.push(peer);
        } else if evict_stale {
            bucket.remove(0);
            bucket.push(peer);
        }
    }

    /// Remove a peer that failed to respond.
    pub fn remove(&mut self, peer: &NodeId) {
        let idx = self.bucket_index(&peer.key);
        self.buckets[idx].retain(|c| c.key != peer.key);
    }

    /// Does the table contain this peer?
    pub fn contains(&self, peer: &NodeId) -> bool {
        let idx = self.bucket_index(&peer.key);
        self.buckets[idx].iter().any(|c| c.key == peer.key)
    }

    /// Total number of contacts.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).sum()
    }

    /// True when the table holds no contacts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `count` contacts closest to `target` by XOR distance.
    pub fn closest(&self, target: &Hash256, count: usize) -> Vec<NodeId> {
        let mut all: Vec<NodeId> = self.buckets.iter().flatten().copied().collect();
        all.sort_by_key(|a| a.key.xor(target));
        all.truncate(count);
        all
    }

    /// All contacts (unordered).
    pub fn contacts(&self) -> Vec<NodeId> {
        self.buckets.iter().flatten().copied().collect()
    }

    /// Maximum bucket occupancy (used by tests to check the ≤ k invariant).
    pub fn max_bucket_len(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use qb_common::NodeId;

    fn node(i: u64) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn observe_inserts_and_touches() {
        let local = node(0);
        let mut rt = RoutingTable::new(local.key, 4);
        rt.observe(node(1), false);
        rt.observe(node(2), false);
        assert_eq!(rt.len(), 2);
        assert!(rt.contains(&node(1)));
        // Observing again does not duplicate.
        rt.observe(node(1), false);
        assert_eq!(rt.len(), 2);
    }

    #[test]
    fn never_contains_self() {
        let local = node(0);
        let mut rt = RoutingTable::new(local.key, 4);
        rt.observe(local, true);
        assert_eq!(rt.len(), 0);
    }

    #[test]
    fn buckets_never_exceed_k() {
        let local = node(0);
        let k = 3;
        let mut rt = RoutingTable::new(local.key, k);
        for i in 1..200 {
            rt.observe(node(i), false);
        }
        assert!(rt.max_bucket_len() <= k);
    }

    #[test]
    fn eviction_replaces_least_recently_seen() {
        let local = node(0);
        // k = 1 so each bucket holds exactly one contact.
        let mut rt = RoutingTable::new(local.key, 1);
        // Find two nodes in the same bucket.
        let mut same_bucket: Vec<NodeId> = Vec::new();
        let target_bucket = local.key.common_prefix_len(&node(1).key);
        for i in 1..5000 {
            if local.key.common_prefix_len(&node(i).key) == target_bucket {
                same_bucket.push(node(i));
                if same_bucket.len() == 2 {
                    break;
                }
            }
        }
        assert_eq!(same_bucket.len(), 2);
        rt.observe(same_bucket[0], true);
        rt.observe(same_bucket[1], true);
        assert!(rt.contains(&same_bucket[1]));
        assert!(!rt.contains(&same_bucket[0]));
        // Without eviction the newcomer is dropped instead.
        let mut rt2 = RoutingTable::new(local.key, 1);
        rt2.observe(same_bucket[0], false);
        rt2.observe(same_bucket[1], false);
        assert!(rt2.contains(&same_bucket[0]));
        assert!(!rt2.contains(&same_bucket[1]));
    }

    #[test]
    fn closest_returns_sorted_by_distance() {
        let local = node(0);
        let mut rt = RoutingTable::new(local.key, 20);
        for i in 1..50 {
            rt.observe(node(i), false);
        }
        let target = node(77).key;
        let closest = rt.closest(&target, 5);
        assert_eq!(closest.len(), 5);
        for w in closest.windows(2) {
            assert!(w[0].key.xor(&target) <= w[1].key.xor(&target));
        }
        // The first element really is the global minimum among contacts.
        let best = rt
            .contacts()
            .into_iter()
            .min_by(|a, b| a.key.xor(&target).cmp(&b.key.xor(&target)))
            .unwrap();
        assert_eq!(closest[0].key, best.key);
    }

    #[test]
    fn remove_deletes_contact() {
        let local = node(0);
        let mut rt = RoutingTable::new(local.key, 4);
        rt.observe(node(1), false);
        assert!(rt.contains(&node(1)));
        rt.remove(&node(1));
        assert!(!rt.contains(&node(1)));
        assert!(rt.is_empty());
    }

    proptest! {
        #[test]
        fn invariants_hold_under_random_operations(ops in proptest::collection::vec((any::<u16>(), any::<bool>()), 0..500),
                                                   k in 1usize..8) {
            let local = node(0);
            let mut rt = RoutingTable::new(local.key, k);
            for (i, evict) in ops {
                rt.observe(node(i as u64), evict);
            }
            prop_assert!(rt.max_bucket_len() <= k);
            prop_assert!(!rt.contains(&local));
            // No duplicates overall.
            let mut keys: Vec<_> = rt.contacts().into_iter().map(|c| c.key).collect();
            let before = keys.len();
            keys.sort();
            keys.dedup();
            prop_assert_eq!(before, keys.len());
        }
    }
}
