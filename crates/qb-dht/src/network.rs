//! The DHT overlay: bootstrap, iterative lookups, record and provider
//! operations, all executed over the simulated network.

use crate::node::{DhtNode, Record};
use crate::DhtConfig;
use qb_common::{DhtKey, Hash256, NodeId, QbError, QbResult, SimDuration, SimInstant};
use qb_simnet::{parallel_latency, Poll, RpcError, RpcHandle, SimNet};

/// Result of an iterative node lookup.
#[derive(Debug, Clone)]
pub struct LookupOutcome {
    /// The closest nodes found, nearest first.
    pub closest: Vec<NodeId>,
    /// Deepest hop generation reached (a follow-up issued on the completion
    /// of a generation-`g` hop is generation `g + 1`).
    pub hops: usize,
    /// RPC attempts issued (successful or not).
    pub messages: u64,
    /// End-to-end latency charged to the caller.
    pub latency: SimDuration,
    /// Portion of the latency spent queueing on the requester's uplink
    /// (non-zero only when concurrent operations contend for the link).
    pub queue_delay: SimDuration,
}

/// Result of storing a record.
#[derive(Debug, Clone)]
pub struct PutOutcome {
    /// Replicas that accepted the record.
    pub stored_on: Vec<NodeId>,
    /// End-to-end latency (lookup + parallel store round).
    pub latency: SimDuration,
    /// RPC attempts issued.
    pub messages: u64,
}

/// Result of retrieving a record.
#[derive(Debug, Clone)]
pub struct GetOutcome {
    /// The record found.
    pub record: Record,
    /// Number of iterative rounds before the value was located.
    pub hops: usize,
    /// RPC attempts issued.
    pub messages: u64,
    /// End-to-end latency charged to the caller.
    pub latency: SimDuration,
}

/// All DHT participants plus the overlay-level operations.
///
/// Node `i` of the overlay corresponds to peer `i` of the [`SimNet`] passed
/// to every operation, so liveness and partitions automatically apply.
#[derive(Debug)]
pub struct DhtNetwork {
    pub(crate) config: DhtConfig,
    pub(crate) nodes: Vec<DhtNode>,
    /// Per-origin hedging state (RTT histograms and the fired-hedge
    /// budget); empty until [`crate::HedgeConfig::enabled`] turns hedging
    /// on.
    pub(crate) hedge: std::collections::HashMap<u64, crate::lookup::OriginHedge>,
}

impl DhtNetwork {
    /// Create a DHT with one participant per simulated peer and bootstrap the
    /// routing tables (each node joins through a random existing node and
    /// then looks up its own identifier, exactly like a real Kademlia join).
    pub fn build(net: &mut SimNet, config: DhtConfig) -> DhtNetwork {
        let n = net.len();
        let nodes: Vec<DhtNode> = (0..n as u64)
            .map(|i| DhtNode::new(NodeId::from_index(i), &config))
            .collect();
        let mut dht = DhtNetwork {
            config,
            nodes,
            hedge: std::collections::HashMap::new(),
        };
        dht.bootstrap(net);
        dht
    }

    /// Overlay configuration.
    pub fn config(&self) -> &DhtConfig {
        &self.config
    }

    /// One origin's hedging counters — the safety-valve budget the E17
    /// experiment asserts on (`hedges ≤ max(1, fetches × percent / 100)`).
    pub fn hedge_stats(&self, origin: u64) -> crate::lookup::HedgeStats {
        self.hedge
            .get(&origin)
            .map(|h| crate::lookup::HedgeStats {
                fetches: h.fetches,
                hedges: h.hedges,
                rtt_samples: h.rtt.count(),
            })
            .unwrap_or_default()
    }

    /// Number of participants.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the overlay has no participants.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node's local state.
    pub fn node(&self, index: u64) -> &DhtNode {
        &self.nodes[index as usize]
    }

    /// Mutable access to a node's local state.
    pub fn node_mut(&mut self, index: u64) -> &mut DhtNode {
        &mut self.nodes[index as usize]
    }

    /// Ground-truth closest online nodes to a key (bypasses routing tables);
    /// used by tests and by the experiment harness to validate lookups.
    pub fn closest_online_global(&self, net: &SimNet, key: &Hash256, count: usize) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self
            .nodes
            .iter()
            .map(|n| n.id)
            .filter(|id| net.is_online(id.index))
            .collect();
        ids.sort_by_key(|a| a.key.xor(key));
        ids.truncate(count);
        ids
    }

    fn bootstrap(&mut self, net: &mut SimNet) {
        let n = self.nodes.len();
        if n <= 1 {
            return;
        }
        for i in 1..n as u64 {
            // Contact a random already-joined node.
            let peer = net.rng().gen_range(i);
            let peer_id = self.nodes[peer as usize].id;
            self.nodes[i as usize].routing.observe(peer_id, true);
            let self_id = self.nodes[i as usize].id;
            self.nodes[peer as usize].routing.observe(self_id, true);
            // Self-lookup wires the new node into the right buckets along the path.
            let target = self.nodes[i as usize].id.key;
            let _ = self.iterative_find(net, i, target, None, 0);
        }
        // A second pass of random lookups tightens routing tables for small n.
        for i in 0..n as u64 {
            let random_target = Hash256::digest_parts(&[b"refresh:", &i.to_be_bytes()]);
            let _ = self.iterative_find(net, i, random_target, None, 0);
        }
    }

    /// Iterative Kademlia lookup, run to completion on its own timeline
    /// anchored at the current clock (event-driven callers use
    /// [`DhtNetwork::lookup_begin`] / [`DhtNetwork::lookup_poll`] directly
    /// — this is the same state machine, driven eagerly). When `want_value`
    /// is set the lookup stops as soon as a queried node returns the record
    /// with a version of at least `min_version`; replicas below that are
    /// remembered (best version wins) but the lookup keeps digging, so a
    /// reader that knows a newer version exists is never satisfied by a
    /// lagging replica it happens to meet first — including its own local
    /// store.
    fn iterative_find(
        &mut self,
        net: &mut SimNet,
        from: u64,
        target: Hash256,
        want_value: Option<DhtKey>,
        min_version: u64,
    ) -> (LookupOutcome, Option<Record>) {
        let at = net.now();
        let machine = self.lookup_begin(net, from, target, want_value, min_version, at, None);
        self.lookup_drive(net, machine)
    }

    /// Fan out one RPC per member of `targets` at virtual instant `at`
    /// (store / provider announce rounds), wait for all of them, and apply
    /// `apply` to each target whose RPC succeeded, in issue order. Returns
    /// the accepted targets, the instant the slowest attempt finished
    /// (failures cost the configured timeout) and the number of attempts.
    #[allow(clippy::too_many_arguments)]
    fn fan_out_round(
        &mut self,
        net: &mut SimNet,
        from: u64,
        targets: &[NodeId],
        request_bytes: usize,
        response_bytes: usize,
        at: SimInstant,
        mut apply: impl FnMut(&mut DhtNetwork, NodeId) -> bool,
    ) -> (Vec<NodeId>, SimInstant, u64) {
        let mut pending: Vec<(Option<RpcHandle>, NodeId, SimInstant)> = Vec::new();
        let mut messages = 0u64;
        for target in targets {
            messages += 1;
            match net.send_async_at(from, target.index, request_bytes, response_bytes, at, None) {
                Ok(handle) => {
                    let completes_at = net.async_completes_at(handle).expect("just issued");
                    pending.push((Some(handle), *target, completes_at));
                }
                Err(RpcError::SelfOffline) => pending.push((None, *target, at)),
                Err(_) => pending.push((None, *target, at + net.config().timeout)),
            }
        }
        let mut accepted = Vec::new();
        let mut end = at;
        for (handle, target, completes_at) in pending {
            end = end.max(completes_at);
            let ok = match handle {
                Some(handle) => matches!(
                    net.poll_complete(handle, completes_at),
                    Some(Poll::Ready(_))
                ),
                None => false,
            };
            if ok && apply(self, target) {
                accepted.push(target);
            }
        }
        (accepted, end, messages)
    }

    /// Locate the `k` closest nodes to `target`.
    pub fn lookup_nodes(
        &mut self,
        net: &mut SimNet,
        from: u64,
        target: Hash256,
    ) -> QbResult<LookupOutcome> {
        if !net.is_online(from) {
            return Err(QbError::NodeOffline(from));
        }
        let (outcome, _) = self.iterative_find(net, from, target, None, 0);
        if outcome.closest.is_empty() {
            return Err(QbError::DhtLookupFailed(target.short()));
        }
        Ok(outcome)
    }

    /// Store a record on the `k` closest nodes to its key.
    pub fn put_record(
        &mut self,
        net: &mut SimNet,
        from: u64,
        key: DhtKey,
        value: Vec<u8>,
        version: u64,
    ) -> QbResult<PutOutcome> {
        let t0 = net.now();
        let lookup = self.lookup_nodes(net, from, key.0)?;
        let record = Record {
            key,
            value,
            publisher: self.nodes[from as usize].id,
            expires_at: net.now() + self.config.record_ttl,
            version,
        };
        let replicas: Vec<NodeId> = lookup.closest.iter().take(self.config.k).copied().collect();
        let (stored_on, end, round_messages) = self.fan_out_round(
            net,
            from,
            &replicas,
            self.config.request_bytes + record.value.len(),
            16,
            t0 + lookup.latency,
            |dht, target| dht.nodes[target.index as usize].store(record.clone()),
        );
        // The publisher always keeps its own copy (it can serve it while online).
        self.nodes[from as usize].store(record);
        if stored_on.is_empty() {
            return Err(QbError::DhtLookupFailed(format!(
                "no replica accepted record {}",
                key.to_hex()
            )));
        }
        Ok(PutOutcome {
            stored_on,
            latency: end.since(t0),
            messages: lookup.messages + round_messages,
        })
    }

    /// Retrieve a record by key.
    pub fn get_record(&mut self, net: &mut SimNet, from: u64, key: DhtKey) -> QbResult<GetOutcome> {
        self.get_record_fresh(net, from, key, 0)
    }

    /// Like [`DhtNetwork::get_record`], but the lookup is only satisfied by
    /// a replica of version at least `min_version`: lagging replicas (the
    /// caller's own local store included) are skipped and the lookup digs
    /// further, falling back to the freshest replica found only when nothing
    /// newer is reachable. Callers that track versions externally (the
    /// engine's monotonic per-term shard counters) use this to never read
    /// back a shard older than one they have already seen.
    pub fn get_record_fresh(
        &mut self,
        net: &mut SimNet,
        from: u64,
        key: DhtKey,
        min_version: u64,
    ) -> QbResult<GetOutcome> {
        if !net.is_online(from) {
            return Err(QbError::NodeOffline(from));
        }
        let (outcome, value) = self.iterative_find(net, from, key.0, Some(key), min_version);
        match value {
            Some(record) => Ok(GetOutcome {
                record,
                hops: outcome.hops,
                messages: outcome.messages,
                latency: outcome.latency,
            }),
            None => Err(QbError::DhtLookupFailed(key.to_hex())),
        }
    }

    /// Announce that `from` can provide the content addressed by `key`.
    pub fn add_provider(
        &mut self,
        net: &mut SimNet,
        from: u64,
        key: DhtKey,
    ) -> QbResult<PutOutcome> {
        let t0 = net.now();
        let lookup = self.lookup_nodes(net, from, key.0)?;
        let provider = self.nodes[from as usize].id;
        let replicas: Vec<NodeId> = lookup.closest.iter().take(self.config.k).copied().collect();
        let (stored_on, end, round_messages) = self.fan_out_round(
            net,
            from,
            &replicas,
            self.config.request_bytes,
            16,
            t0 + lookup.latency,
            |dht, target| {
                dht.nodes[target.index as usize].add_provider(key, provider);
                true
            },
        );
        self.nodes[from as usize].add_provider(key, provider);
        if stored_on.is_empty() {
            return Err(QbError::DhtLookupFailed(format!(
                "no node accepted provider record {}",
                key.to_hex()
            )));
        }
        Ok(PutOutcome {
            stored_on,
            latency: end.since(t0),
            messages: lookup.messages + round_messages,
        })
    }

    /// Find providers for `key`. Returns the provider list and the latency.
    pub fn get_providers(
        &mut self,
        net: &mut SimNet,
        from: u64,
        key: DhtKey,
    ) -> QbResult<(Vec<NodeId>, SimDuration, u64)> {
        if !net.is_online(from) {
            return Err(QbError::NodeOffline(from));
        }
        // Providers known locally are free.
        let local = self.nodes[from as usize].get_providers(&key);
        if !local.is_empty() {
            return Ok((local, SimDuration::ZERO, 0));
        }
        let lookup = self.lookup_nodes(net, from, key.0)?;
        let mut providers: Vec<NodeId> = Vec::new();
        let mut latencies = Vec::new();
        let mut messages = lookup.messages;
        for target in lookup.closest.iter().take(self.config.k) {
            messages += 1;
            let (res, lat) = net.rpc_or_timeout(from, target.index, self.config.request_bytes, 256);
            latencies.push(lat);
            if res.is_ok() {
                for p in self.nodes[target.index as usize].get_providers(&key) {
                    if !providers.iter().any(|e| e.index == p.index) {
                        providers.push(p);
                    }
                }
                if !providers.is_empty() {
                    break;
                }
            }
        }
        if providers.is_empty() {
            return Err(QbError::NotFound(format!("providers for {}", key.to_hex())));
        }
        Ok((
            providers,
            lookup.latency + parallel_latency(&latencies),
            messages,
        ))
    }

    /// Republish every record each node holds to the current closest replicas
    /// (Kademlia's periodic republish). Returns the number of records pushed.
    pub fn republish_all(&mut self, net: &mut SimNet) -> usize {
        let mut pushed = 0;
        for i in 0..self.nodes.len() as u64 {
            if !net.is_online(i) {
                continue;
            }
            let records: Vec<Record> = self.nodes[i as usize].records().cloned().collect();
            for rec in records {
                if rec.expires_at <= net.now() {
                    continue;
                }
                if self
                    .put_record(net, i, rec.key, rec.value.clone(), rec.version)
                    .is_ok()
                {
                    pushed += 1;
                }
            }
        }
        pushed
    }

    /// Expire stale records on every node. Returns the number removed.
    pub fn expire_all(&mut self, net: &SimNet) -> usize {
        let now = net.now();
        self.nodes.iter_mut().map(|n| n.expire_records(now)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_simnet::{NetConfig, SimNet};

    fn setup(n: usize, seed: u64) -> (SimNet, DhtNetwork) {
        let mut net = SimNet::new(n, NetConfig::lan(), seed);
        let dht = DhtNetwork::build(&mut net, DhtConfig::small());
        (net, dht)
    }

    #[test]
    fn bootstrap_populates_routing_tables() {
        let (_net, dht) = setup(32, 1);
        for i in 0..32u64 {
            assert!(
                !dht.node(i).routing.is_empty(),
                "node {i} has an empty routing table"
            );
        }
    }

    #[test]
    fn lookup_finds_globally_closest_nodes() {
        let (mut net, mut dht) = setup(64, 2);
        let target = Hash256::digest(b"some target key");
        let outcome = dht.lookup_nodes(&mut net, 5, target).unwrap();
        assert!(!outcome.closest.is_empty());
        let truth = dht.closest_online_global(&net, &target, 1);
        // The nearest node found must be the true global nearest.
        assert_eq!(outcome.closest[0].index, truth[0].index);
        assert!(outcome.messages > 0);
        assert!(outcome.latency.as_micros() > 0);
    }

    #[test]
    fn put_then_get_round_trips() {
        let (mut net, mut dht) = setup(48, 3);
        let key = DhtKey::for_term("decentralized");
        let put = dht
            .put_record(&mut net, 7, key, b"posting-list-pointer".to_vec(), 1)
            .unwrap();
        assert!(!put.stored_on.is_empty());
        let got = dht.get_record(&mut net, 33, key).unwrap();
        assert_eq!(got.record.value, b"posting-list-pointer");
        assert_eq!(got.record.version, 1);
    }

    #[test]
    fn get_missing_key_fails() {
        let (mut net, mut dht) = setup(16, 4);
        let err = dht
            .get_record(&mut net, 0, DhtKey::for_term("nonexistent"))
            .unwrap_err();
        assert!(matches!(err, QbError::DhtLookupFailed(_)));
    }

    #[test]
    fn newer_version_wins_on_update() {
        let (mut net, mut dht) = setup(32, 5);
        let key = DhtKey::for_page_name("example.dweb");
        dht.put_record(&mut net, 1, key, b"v1".to_vec(), 1).unwrap();
        dht.put_record(&mut net, 2, key, b"v2".to_vec(), 2).unwrap();
        let got = dht.get_record(&mut net, 20, key).unwrap();
        assert_eq!(got.record.value, b"v2");
    }

    #[test]
    fn records_survive_replica_failures() {
        let (mut net, mut dht) = setup(64, 6);
        let key = DhtKey::for_term("resilience");
        let put = dht
            .put_record(&mut net, 0, key, b"survives".to_vec(), 1)
            .unwrap();
        // Kill half of the replicas that accepted the record.
        let kill = put.stored_on.len() / 2;
        for r in put.stored_on.iter().take(kill) {
            net.set_online(r.index, false);
        }
        let got = dht.get_record(&mut net, 40, key).unwrap();
        assert_eq!(got.record.value, b"survives");
    }

    #[test]
    fn providers_can_be_announced_and_found() {
        let (mut net, mut dht) = setup(48, 7);
        let key = DhtKey::from_bytes(b"some content cid");
        dht.add_provider(&mut net, 11, key).unwrap();
        let (providers, _lat, _msgs) = dht.get_providers(&mut net, 30, key).unwrap();
        assert!(providers.iter().any(|p| p.index == 11));
    }

    #[test]
    fn offline_requester_is_rejected() {
        let (mut net, mut dht) = setup(16, 8);
        net.set_online(3, false);
        assert!(matches!(
            dht.lookup_nodes(&mut net, 3, Hash256::digest(b"t")),
            Err(QbError::NodeOffline(3))
        ));
    }

    #[test]
    fn expiry_removes_records_and_republish_restores_liveness() {
        let (mut net, mut dht) = setup(32, 9);
        let key = DhtKey::for_term("ttl");
        dht.put_record(&mut net, 0, key, b"short-lived".to_vec(), 1)
            .unwrap();
        // Advance beyond the TTL and expire.
        net.advance(dht.config().record_ttl + SimDuration::from_secs(1));
        let removed = dht.expire_all(&net);
        assert!(removed > 0);
        assert!(dht.get_record(&mut net, 5, key).is_err());
    }

    #[test]
    fn hops_scale_logarithmically() {
        // Not a strict asymptotic test, just: hops stay small as n grows.
        let (mut net, mut dht) = setup(128, 10);
        let target = Hash256::digest(b"scaling probe");
        let outcome = dht.lookup_nodes(&mut net, 0, target).unwrap();
        assert!(outcome.hops <= 10, "hops = {}", outcome.hops);
    }

    #[test]
    fn traced_lookup_records_one_hop_span_per_rpc() {
        let (mut net, mut dht) = setup(64, 11);
        net.take_trace(); // drop bootstrap-era spans (tracing was off anyway)
        net.set_tracing(true);
        let target = Hash256::digest(b"observed lookup");
        let outcome = dht.lookup_nodes(&mut net, 9, target).unwrap();
        let trace = net.take_trace();
        let lookup = trace.named("dht.lookup").next().expect("lookup span");
        // One hop span per RPC attempt, all direct children of the lookup.
        assert_eq!(
            trace
                .children(lookup.id)
                .filter(|s| s.name == "dht.hop")
                .count() as u64,
            outcome.messages
        );
        // The span covers exactly the lookup's accumulated latency, and
        // every per-RPC span nests inside it (rpc under its dht.hop).
        assert_eq!(lookup.duration(), outcome.latency);
        for rpc in trace.named("rpc") {
            assert_eq!(trace.root_of(rpc.id), lookup.id);
        }
    }

    #[test]
    fn concurrent_lookups_interleave_on_a_contended_uplink() {
        use crate::lookup::LookupStep;
        // One in-flight operation per link: without event-driven lookups the
        // second lookup could only start after the first fully finished.
        let mut cfg = NetConfig::lan();
        cfg.max_in_flight_per_link = 1;
        let mut net = SimNet::new(64, cfg, 12);
        let mut dht = DhtNetwork::build(&mut net, DhtConfig::small());
        let t0 = net.now();
        let mut a = dht.lookup_begin(
            &mut net,
            9,
            Hash256::digest(b"interleave target a"),
            None,
            0,
            t0,
            None,
        );
        let mut b = dht.lookup_begin(
            &mut net,
            9,
            Hash256::digest(b"interleave target b"),
            None,
            0,
            t0,
            None,
        );
        let mut order = Vec::new();
        let mut cursor = t0;
        loop {
            let (done_a, done_b) = (a.completed_rpcs(), b.completed_rpcs());
            let step_a = dht.lookup_poll(&mut net, &mut a, cursor);
            let step_b = dht.lookup_poll(&mut net, &mut b, cursor);
            order.extend(std::iter::repeat_n(
                'a',
                (a.completed_rpcs() - done_a) as usize,
            ));
            order.extend(std::iter::repeat_n(
                'b',
                (b.completed_rpcs() - done_b) as usize,
            ));
            cursor = match (step_a, step_b) {
                (LookupStep::Ready, LookupStep::Ready) => break,
                (LookupStep::Ready, LookupStep::Pending { next_event_at })
                | (LookupStep::Pending { next_event_at }, LookupStep::Ready) => next_event_at,
                (
                    LookupStep::Pending { next_event_at: na },
                    LookupStep::Pending { next_event_at: nb },
                ) => na.min(nb),
            };
        }
        let (oa, _) = a.into_result();
        let (ob, _) = b.into_result();
        assert!(!oa.closest.is_empty() && !ob.closest.is_empty());
        // Per-hop completions interleave: some of b's hops complete before
        // a's last hop and vice versa — the lookups genuinely overlap
        // instead of serializing lookup-after-lookup.
        let first_a = order
            .iter()
            .position(|&c| c == 'a')
            .expect("a completed hops");
        let first_b = order
            .iter()
            .position(|&c| c == 'b')
            .expect("b completed hops");
        let last_a = order.iter().rposition(|&c| c == 'a').unwrap();
        let last_b = order.iter().rposition(|&c| c == 'b').unwrap();
        assert!(
            first_b < last_a && first_a < last_b,
            "hops did not interleave: {order:?}"
        );
        // The contended uplink charged real queueing delay.
        assert!(net.stats().async_queued_ops > 0);
        assert!(oa.queue_delay + ob.queue_delay > SimDuration::ZERO);
    }

    /// A lossy LAN plus a workload of puts-then-gets, with hedging either
    /// off or configured via `tweak`. Returns the network, the overlay and
    /// the keys that were stored.
    fn lossy_setup(
        seed: u64,
        tweak: impl FnOnce(&mut crate::HedgeConfig),
    ) -> (SimNet, DhtNetwork, Vec<DhtKey>) {
        let mut cfg = NetConfig::lan();
        cfg.drop_probability = 0.08;
        let mut net = SimNet::new(48, cfg, seed);
        let mut dcfg = DhtConfig::small();
        // Single-flight walks: with lookup parallelism a dropped probe's
        // siblings carry the lookup, so α = 1 is the regime where a drop
        // stalls the walk and only the hedge timer can rescue it.
        dcfg.alpha = 1;
        tweak(&mut dcfg.hedge);
        let mut dht = DhtNetwork::build(&mut net, dcfg);
        let keys: Vec<DhtKey> = (0..30)
            .map(|i| DhtKey::for_term(&format!("hedge-workload-{i}")))
            .collect();
        for (i, key) in keys.iter().enumerate() {
            dht.put_record(
                &mut net,
                (i % 8) as u64,
                *key,
                format!("value-{i}").into_bytes(),
                1,
            )
            .unwrap();
        }
        (net, dht, keys)
    }

    #[test]
    fn hedges_rescue_dropped_primaries_and_return_identical_records() {
        let run = |enabled: bool| {
            let (mut net, mut dht, keys) = lossy_setup(17, |h| {
                if enabled {
                    h.enabled = true;
                    h.percent = 50;
                    h.min_rtt_samples = 8;
                }
            });
            let mut total = SimDuration::ZERO;
            let mut records = Vec::new();
            for key in &keys {
                let got = dht.get_record(&mut net, 40, *key).unwrap();
                total += got.latency;
                records.push(got.record);
            }
            let stats = net.stats().clone();
            (total, records, stats, dht.hedge_stats(40))
        };
        let (slow, base_records, base_stats, _) = run(false);
        let (fast, hedged_records, hedged_stats, origin) = run(true);
        // Hedge traffic is real and attributed.
        assert_eq!(base_stats.hedges_fired, 0);
        assert!(hedged_stats.hedges_fired > 0, "no hedge fired");
        assert!(hedged_stats.hedges_won <= hedged_stats.hedges_fired);
        // Nearly every get hits the network (a handful short-circuit when
        // the reader happens to be a natural replica of the key).
        assert!(origin.fetches >= 20, "fetches = {}", origin.fetches);
        assert!(origin.rtt_samples > 0);
        // The race never changes what a read returns: byte-identical
        // records with hedging on and off.
        assert_eq!(base_records, hedged_records);
        // Cutting the drop→timeout tail is the whole point.
        assert!(
            fast < slow,
            "hedged total {fast:?} not below unhedged {slow:?}"
        );
    }

    #[test]
    fn hedge_budget_caps_the_fire_rate() {
        let (mut net, mut dht, keys) = lossy_setup(23, |h| {
            h.enabled = true;
            h.min_rtt_samples = 8;
        });
        for _ in 0..4 {
            for key in &keys {
                let _ = dht.get_record(&mut net, 40, *key);
            }
        }
        let s = dht.hedge_stats(40);
        let percent = dht.config().hedge.percent as u64;
        assert!(
            s.hedges * 100 <= s.fetches * percent,
            "budget violated: {} hedges over {} fetches",
            s.hedges,
            s.fetches
        );
        assert_eq!(net.stats().hedges_fired, s.hedges);
    }

    #[test]
    fn unarmed_hedging_is_bit_identical_to_disabled() {
        // Enabled hedging whose timer can never arm (impossible sample
        // floor) must replay the exact run of the disabled configuration:
        // same RNG draws, latencies, hops and messages.
        let run = |enabled: bool| {
            let (mut net, mut dht, keys) = lossy_setup(31, |h| {
                if enabled {
                    h.enabled = true;
                    h.min_rtt_samples = u64::MAX;
                }
            });
            let outcomes: Vec<_> = keys
                .iter()
                .map(|key| {
                    let got = dht.get_record(&mut net, 12, *key).unwrap();
                    (got.record, got.hops, got.messages, got.latency)
                })
                .collect();
            (outcomes, net.stats().clone())
        };
        let (base, base_stats) = run(false);
        let (armed_off, stats) = run(true);
        assert_eq!(base, armed_off);
        assert_eq!(base_stats.messages, stats.messages);
        assert_eq!(base_stats.bytes, stats.bytes);
        assert_eq!(stats.hedges_fired, 0);
    }

    #[test]
    fn hedge_spans_nest_under_their_lookup() {
        let (mut net, mut dht, keys) = lossy_setup(17, |h| {
            h.enabled = true;
            h.percent = 50;
            h.min_rtt_samples = 8;
        });
        net.take_trace();
        net.set_tracing(true);
        let before = net.stats().hedges_fired;
        for key in &keys {
            let _ = dht.get_record(&mut net, 40, *key);
        }
        let fired = net.stats().hedges_fired - before;
        assert!(fired > 0, "workload fired no hedge");
        let trace = net.take_trace();
        let hedges: Vec<_> = trace.named("fetch.hedge").collect();
        assert_eq!(hedges.len() as u64, fired);
        for hedge in hedges {
            let root = trace.root_of(hedge.id);
            let root_span = trace.named("dht.lookup").find(|s| s.id == root);
            assert!(
                root_span.is_some(),
                "fetch.hedge span not rooted under a dht.lookup span"
            );
        }
    }
}
