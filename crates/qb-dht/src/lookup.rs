//! Event-driven Kademlia lookup state machine.
//!
//! [`LookupMachine`] replaces the old synchronous round loop: instead of
//! blocking on α RPCs per round, a lookup keeps **up to α RPC handles in
//! flight** via [`qb_simnet::SimNet::send_async_at`] and advances on
//! completions delivered by [`qb_simnet::SimNet::poll_complete`]. Because
//! every hop is an in-flight operation on the requester's uplink, hops from
//! *different* concurrent lookups interleave on a contended link and every
//! queue delay is charged to [`qb_simnet::NetStats`].
//!
//! # States
//!
//! A machine is in exactly one of three states:
//!
//! 1. **Short-circuited** — a value lookup whose local replica already
//!    satisfies `min_version` finishes at construction with zero cost and
//!    no span (there was no network activity to trace).
//! 2. **Running** — one or more RPCs in flight. [`DhtNetwork::lookup_poll`]
//!    processes every completion due at the polled instant in completion
//!    order, then refills the frontier; it reports
//!    [`LookupStep::Pending`] with the next completion instant so a driver
//!    can advance to exactly the next event.
//! 3. **Done** — the frontier is exhausted (or the value was found, or the
//!    RPC budget ran out) and no RPC remains in flight.
//!    [`LookupMachine::into_result`] yields the [`LookupOutcome`] plus the
//!    freshest record seen.
//!
//! # α-frontier invariants
//!
//! * At most `alpha` RPCs are in flight at any instant.
//! * An RPC is only issued to the closest (XOR metric) not-yet-queried,
//!   not-failed candidate among the `k` closest known live contacts — the
//!   frontier never digs past the current top-`k`.
//! * Each peer is queried at most once per lookup; failures remove the peer
//!   from both the shortlist and the requester's routing table.
//! * Completions are processed in (completion instant, issue order) order,
//!   so a run is bit-identical for a given seed regardless of how the
//!   driver batches its polls.
//! * Total RPCs are bounded by `max_rounds × alpha`, the same budget the
//!   synchronous loop had.
//!
//! # Termination rule
//!
//! The machine issues no further RPCs once (a) a value lookup has been
//! satisfied by a replica with `version ≥ min_version`, (b) every
//! non-failed candidate among the `k` closest known has been queried, or
//! (c) the RPC budget is exhausted. It reports [`LookupStep::Ready`] when
//! additionally the last in-flight RPC has completed; the closest-node list
//! is then the `k` closest non-failed contacts discovered. This is the same
//! fixed point the synchronous loop reached via its "top-k all queried and
//! no progress" round check: a closer contact always enters the top-`k`
//! unqueried and therefore keeps the frontier alive.
//!
//! # Tracing
//!
//! The lookup records one `dht.lookup` span (under the caller-supplied
//! parent, or the innermost open span) and one `dht.hop` span per RPC
//! attempt. Hop spans are created off the stack discipline with explicit
//! parents so interleaved lookups keep disjoint, correctly-nested trees;
//! the underlying `rpc` / `net.queue` / `net.deliver` spans nest under
//! their hop.

use crate::network::{DhtNetwork, LookupOutcome};
use crate::node::Record;
use qb_common::{DhtKey, Hash256, LatencyHistogram, NodeId, SimDuration, SimInstant};
use qb_simnet::{Poll, RpcError, RpcHandle, SimNet};
use qb_trace::SpanId;
use std::collections::HashSet;

/// Per-origin hedging state kept on the [`DhtNetwork`]: the adaptive RTT
/// histogram the hedge timer is derived from, and the fired-hedge budget.
#[derive(Debug, Default)]
pub(crate) struct OriginHedge {
    /// Successful hop RTTs observed from this origin (timeouts excluded —
    /// the timer must stay near the healthy p95, not chase the tail it is
    /// meant to cut).
    pub(crate) rtt: LatencyHistogram,
    /// Value lookups this origin started over the network.
    pub(crate) fetches: u64,
    /// Hedges this origin fired.
    pub(crate) hedges: u64,
}

/// Read-only snapshot of one origin's hedging counters
/// ([`DhtNetwork::hedge_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HedgeStats {
    /// Value lookups the origin started over the network.
    pub fetches: u64,
    /// Hedges the origin fired.
    pub hedges: u64,
    /// Successful RTT samples backing the origin's adaptive p95.
    pub rtt_samples: u64,
}

/// What a [`DhtNetwork::lookup_poll`] call observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupStep {
    /// RPCs remain in flight; the earliest completes at `next_event_at`.
    Pending {
        /// Instant of the next completion — poll again at (or after) it.
        next_event_at: SimInstant,
    },
    /// The lookup has finished; take the result with
    /// [`LookupMachine::into_result`].
    Ready,
}

/// One RPC attempt in flight. `handle` is `None` for an attempt that failed
/// at issue time (offline peer, partition, drop): the failure still costs
/// the configured timeout on the lookup's timeline, exactly like the
/// synchronous `rpc_or_timeout` path did.
#[derive(Debug)]
struct InFlightRpc {
    handle: Option<RpcHandle>,
    peer: NodeId,
    issued_at: SimInstant,
    completes_at: SimInstant,
    generation: usize,
    is_hedge: bool,
    hop_span: Option<SpanId>,
}

/// An in-progress iterative lookup (see the module docs for the state
/// machine). Create with [`DhtNetwork::lookup_begin`], advance with
/// [`DhtNetwork::lookup_poll`], and consume with
/// [`LookupMachine::into_result`].
#[derive(Debug)]
pub struct LookupMachine {
    target: Hash256,
    from: u64,
    want_value: Option<DhtKey>,
    min_version: u64,
    started_at: SimInstant,
    span: Option<SpanId>,
    shortlist: Vec<NodeId>,
    queried: HashSet<u64>,
    failed: HashSet<u64>,
    in_flight: Vec<InFlightRpc>,
    found_value: Option<Record>,
    messages: u64,
    completed: u64,
    rpc_budget: u64,
    k: usize,
    alpha: usize,
    request_bytes: usize,
    response_bytes: usize,
    hops: usize,
    satisfied: bool,
    finished_at: SimInstant,
    queue_delay: SimDuration,
    /// Is hedging enabled for this machine (gates RTT sampling, the timer
    /// and the early cancel-on-satisfy path — off keeps the machine
    /// byte-identical to the unhedged one)?
    hedging: bool,
    /// When the armed hedge timer expires (`None`: not armed or already
    /// fired).
    hedge_deadline: Option<SimInstant>,
    /// Was a hedge timer armed for this lookup? An armed lookup is a
    /// managed race: it finishes at the first version-satisfying response
    /// and cancels every loser still in flight. Unarmed lookups keep the
    /// baseline drain-every-completion semantics bit for bit.
    armed: bool,
    /// Did this lookup fire a hedge?
    hedged: bool,
    result: Option<(LookupOutcome, Option<Record>)>,
}

impl LookupMachine {
    /// True once the lookup has finished and holds its result.
    pub fn is_done(&self) -> bool {
        self.result.is_some()
    }

    /// RPC attempts whose completion has been processed so far. Grows
    /// monotonically as the machine is polled; tests use it to observe how
    /// hops of concurrent lookups interleave.
    pub fn completed_rpcs(&self) -> u64 {
        self.completed
    }

    /// The lookup result. Panics when the machine is not [`Self::is_done`].
    pub fn into_result(self) -> (LookupOutcome, Option<Record>) {
        self.result.expect("lookup not finished; poll until Ready")
    }

    /// Retire any in-flight handles without processing their results, so an
    /// aborted driver leaves no orphaned operations in the network.
    pub fn abandon(&mut self, net: &mut SimNet) {
        for op in self.in_flight.drain(..) {
            if let Some(handle) = op.handle {
                net.poll_complete(handle, op.completes_at);
            }
        }
    }

    fn fresh_enough(&self) -> bool {
        self.found_value
            .as_ref()
            .is_some_and(|r| r.version >= self.min_version)
    }

    /// The closest not-yet-queried, not-failed candidate among the `k`
    /// closest non-failed known contacts (the α-frontier rule).
    fn next_candidate(&mut self) -> Option<NodeId> {
        self.shortlist.sort_by_key(|a| a.key.xor(&self.target));
        self.shortlist
            .iter()
            .filter(|c| !self.failed.contains(&c.index))
            .take(self.k)
            .find(|c| !self.queried.contains(&c.index))
            .copied()
    }
}

impl DhtNetwork {
    /// Start an iterative lookup from peer `from` at virtual instant `at`.
    ///
    /// `want_value` turns the node lookup into a value lookup that is
    /// satisfied by a replica with `version ≥ min_version` (see
    /// [`DhtNetwork::get_record_fresh`] for the freshness semantics).
    /// Trace spans nest under `parent`; pass `None` to attach under the
    /// innermost open span. The first α RPCs are issued (and paid for)
    /// immediately; drive the machine with [`DhtNetwork::lookup_poll`].
    #[allow(clippy::too_many_arguments)]
    pub fn lookup_begin(
        &mut self,
        net: &mut SimNet,
        from: u64,
        target: Hash256,
        want_value: Option<DhtKey>,
        min_version: u64,
        at: SimInstant,
        parent: Option<SpanId>,
    ) -> LookupMachine {
        let config = self.config();
        let mut machine = LookupMachine {
            target,
            from,
            want_value,
            min_version,
            started_at: at,
            span: None,
            shortlist: Vec::new(),
            queried: HashSet::new(),
            failed: HashSet::new(),
            in_flight: Vec::new(),
            found_value: None,
            messages: 0,
            completed: 0,
            rpc_budget: (config.max_rounds * config.alpha.max(1)) as u64,
            k: config.k,
            alpha: config.alpha.max(1),
            request_bytes: config.request_bytes,
            response_bytes: config.contact_bytes * config.k,
            hops: 0,
            satisfied: false,
            finished_at: at,
            queue_delay: SimDuration::ZERO,
            hedging: config.hedge.enabled,
            hedge_deadline: None,
            armed: false,
            hedged: false,
            result: None,
        };

        // A local replica that satisfies the freshness requirement
        // short-circuits the whole lookup; a provably stale one is kept as
        // a fallback while the network is searched.
        if let Some(key) = machine.want_value {
            if let Some(rec) = self.nodes[from as usize].find_value(&key, net.now()) {
                if rec.version >= machine.min_version {
                    machine.result = Some((
                        LookupOutcome {
                            closest: vec![self.nodes[from as usize].id],
                            hops: 0,
                            messages: 0,
                            latency: SimDuration::ZERO,
                            queue_delay: SimDuration::ZERO,
                        },
                        Some(rec.clone()),
                    ));
                    return machine;
                }
                machine.found_value = Some(rec.clone());
            }
        }

        machine.shortlist = self.nodes[from as usize].routing.closest(&target, config.k);
        machine.queried.insert(from);
        // Value lookups that hit the network count against the origin's
        // hedge budget; the timer arms at the adaptive p95 once enough
        // successful RTTs have been observed and the budget allows it.
        if machine.hedging && machine.want_value.is_some() {
            let percent = config.hedge.percent as u64;
            let min_samples = config.hedge.min_rtt_samples;
            let h = self.hedge.entry(from).or_default();
            h.fetches += 1;
            if h.rtt.count() >= min_samples && (h.hedges + 1) * 100 <= h.fetches * percent {
                machine.hedge_deadline = Some(at + h.rtt.value_at_quantile(0.95));
                machine.armed = true;
            }
        }
        machine.span = net.tracer().record_with(parent, "dht.lookup", at, at, || {
            format!("{} from {}", target.short(), from)
        });
        self.lookup_issue(net, &mut machine, at, 1);
        machine
    }

    /// Advance a lookup at instant `at`: process every completion due by
    /// then (in completion order, refilling the frontier after each) and
    /// report either the next event instant or readiness.
    pub fn lookup_poll(
        &mut self,
        net: &mut SimNet,
        machine: &mut LookupMachine,
        at: SimInstant,
    ) -> LookupStep {
        if machine.is_done() {
            return LookupStep::Ready;
        }
        // Process due completions one at a time, earliest first (ties break
        // on issue order), so results are independent of how the driver
        // batches its polls.
        loop {
            // An expired hedge timer fires before any later completion; a
            // completion due at the very same instant wins (it may already
            // satisfy the lookup, making the hedge moot).
            if let Some(deadline) = machine.hedge_deadline {
                if deadline <= at {
                    let next_due = machine.in_flight.iter().map(|op| op.completes_at).min();
                    if next_due.is_none_or(|d| deadline < d) {
                        machine.hedge_deadline = None;
                        if !machine.satisfied {
                            self.hedge_fire(net, machine, deadline);
                        }
                        continue;
                    }
                }
            }
            let due = machine
                .in_flight
                .iter()
                .enumerate()
                .filter(|(_, op)| op.completes_at <= at)
                .min_by_key(|(i, op)| (op.completes_at, *i))
                .map(|(i, _)| i);
            let Some(i) = due else { break };
            let op = machine.in_flight.remove(i);
            let mut completed_at = op.completes_at;
            let ok = match op.handle {
                Some(handle) => match net.poll_complete(handle, op.completes_at) {
                    Some(Poll::Ready(done)) => {
                        machine.queue_delay += done.queue_delay;
                        completed_at = done.completed_at;
                        true
                    }
                    _ => false,
                },
                None => false,
            };
            net.tracer().close(op.hop_span, completed_at);
            machine.completed += 1;
            machine.finished_at = machine.finished_at.max(completed_at);
            if ok {
                // Feed the origin's adaptive hedge timer with successful
                // RTTs only — timeouts would drag the p95 toward the very
                // tail the hedge is meant to cut.
                if machine.hedging {
                    let h = self.hedge.entry(machine.from).or_default();
                    h.rtt.record(completed_at.since(op.issued_at));
                    // Progress re-arms the timer: the samples are per-RPC
                    // RTTs, so the p95 deadline guards the *current* hop,
                    // not the whole multi-round lookup — without the
                    // re-arm every healthy lookup that needs a second
                    // round blows the one-hop deadline, fires a benign
                    // hedge and starves the valve's budget just when a
                    // genuine drop needs rescuing. Re-arming also revives
                    // a lookup whose first hedge answered but did not
                    // satisfy: the dropped original still squats on the α
                    // window until its timeout, so each hedge response
                    // that makes progress earns the walk another timer
                    // (the valve and the RPC budget still cap the total).
                    if !machine.satisfied && machine.armed {
                        machine.hedge_deadline = Some(completed_at + h.rtt.value_at_quantile(0.95));
                    }
                }
                // Successful contact: update both routing tables.
                let from_id = self.nodes[machine.from as usize].id;
                self.nodes[op.peer.index as usize]
                    .routing
                    .observe(from_id, true);
                let cand_id = self.nodes[op.peer.index as usize].id;
                self.nodes[machine.from as usize]
                    .routing
                    .observe(cand_id, true);
                // Value check: keep the freshest replica seen so far.
                if let Some(key) = machine.want_value {
                    if !machine.fresh_enough() {
                        if let Some(rec) =
                            self.nodes[op.peer.index as usize].find_value(&key, net.now())
                        {
                            if machine
                                .found_value
                                .as_ref()
                                .is_none_or(|best| rec.version > best.version)
                            {
                                machine.found_value = Some(rec.clone());
                            }
                        }
                        if machine.fresh_enough() {
                            machine.satisfied = true;
                        }
                    }
                }
                // A satisfied lookup stops expanding the frontier (the
                // satisfying hop's contacts are discarded, matching the
                // synchronous loop's break-before-merge).
                if !machine.satisfied {
                    for c in
                        self.nodes[op.peer.index as usize].find_node(&machine.target, machine.k)
                    {
                        if c.index != machine.from
                            && !machine.shortlist.iter().any(|e| e.index == c.index)
                        {
                            machine.shortlist.push(c);
                        }
                    }
                }
            } else {
                machine.failed.insert(op.peer.index);
                let cand_id = self.nodes[op.peer.index as usize].id;
                self.nodes[machine.from as usize].routing.remove(&cand_id);
            }
            // Once an armed lookup is satisfied the race is decided: credit
            // the winner, cancel every loser still in flight (freeing its
            // link slot) and charge a losing *hedge's* already-paid traffic
            // as wasted — a cancelled regular RPC was work the baseline
            // would also have discarded, just without freeing the slot.
            // Issue-failed attempts (handle `None`) were never charged, so
            // they waste nothing.
            if machine.satisfied && machine.armed {
                if op.is_hedge {
                    net.record_hedge_won();
                }
                for loser in std::mem::take(&mut machine.in_flight) {
                    if let Some(handle) = loser.handle {
                        let cancelled = net.cancel_async(handle);
                        if cancelled && loser.is_hedge {
                            net.record_hedge_wasted(
                                (machine.request_bytes + machine.response_bytes) as u64,
                            );
                        }
                    }
                    net.tracer().close(loser.hop_span, completed_at);
                }
                machine.hedge_deadline = None;
                break;
            }
            self.lookup_issue(net, machine, completed_at, op.generation + 1);
        }
        match machine.in_flight.iter().map(|op| op.completes_at).min() {
            Some(next) => {
                let next_event_at = match machine.hedge_deadline {
                    Some(d) if d < next => d,
                    _ => next,
                };
                LookupStep::Pending { next_event_at }
            }
            None => {
                machine.hedge_deadline = None;
                self.lookup_finish(net, machine);
                LookupStep::Ready
            }
        }
    }

    /// Refill the frontier at instant `at`: issue RPCs to the closest
    /// eligible candidates until α are in flight, the budget is spent, or
    /// the frontier is exhausted.
    fn lookup_issue(
        &mut self,
        net: &mut SimNet,
        machine: &mut LookupMachine,
        at: SimInstant,
        generation: usize,
    ) {
        while !machine.satisfied
            && machine.in_flight.len() < machine.alpha
            && machine.messages < machine.rpc_budget
        {
            let Some(cand) = machine.next_candidate() else {
                break;
            };
            machine.queried.insert(cand.index);
            machine.messages += 1;
            machine.hops = machine.hops.max(generation);
            let hop_span = net
                .tracer()
                .record_with(machine.span, "dht.hop", at, at, || {
                    format!("gen {} -> {}", generation, cand.index)
                });
            let entry = match net.send_async_at(
                machine.from,
                cand.index,
                machine.request_bytes,
                machine.response_bytes,
                at,
                hop_span,
            ) {
                Ok(handle) => InFlightRpc {
                    handle: Some(handle),
                    peer: cand,
                    issued_at: at,
                    completes_at: net.async_completes_at(handle).expect("just issued"),
                    generation,
                    is_hedge: false,
                    hop_span,
                },
                Err(err) => {
                    // A failed attempt costs the timeout on the lookup's
                    // timeline (an offline requester pays nothing), exactly
                    // like the synchronous rpc_or_timeout path.
                    let cost = if err == RpcError::SelfOffline {
                        SimDuration::ZERO
                    } else {
                        net.config().timeout
                    };
                    InFlightRpc {
                        handle: None,
                        peer: cand,
                        issued_at: at,
                        completes_at: at + cost,
                        generation,
                        is_hedge: false,
                        hop_span,
                    }
                }
            };
            machine.in_flight.push(entry);
        }
    }

    /// Fire the hedge at instant `at`: one extra speculative RPC to the
    /// next-closest unqueried replica, traced as a `fetch.hedge` child of
    /// the lookup span. The budget is re-checked at fire time (other
    /// lookups from the same origin may have fired hedges since this one
    /// armed its timer) and the attempt respects the lookup's RPC budget;
    /// it deliberately ignores α — the hedge is the one sanctioned
    /// over-subscription.
    fn hedge_fire(&mut self, net: &mut SimNet, machine: &mut LookupMachine, at: SimInstant) {
        if machine.messages >= machine.rpc_budget {
            return;
        }
        let Some(cand) = machine.next_candidate() else {
            return;
        };
        let percent = self.config().hedge.percent as u64;
        let h = self.hedge.entry(machine.from).or_default();
        if (h.hedges + 1) * 100 > h.fetches * percent {
            return;
        }
        h.hedges += 1;
        machine.hedged = true;
        machine.queried.insert(cand.index);
        machine.messages += 1;
        net.record_hedge_fired();
        let generation = machine.hops.max(1);
        let hop_span = net
            .tracer()
            .record_with(machine.span, "fetch.hedge", at, at, || {
                format!("hedge -> {}", cand.index)
            });
        let entry = match net.send_async_at(
            machine.from,
            cand.index,
            machine.request_bytes,
            machine.response_bytes,
            at,
            hop_span,
        ) {
            Ok(handle) => InFlightRpc {
                handle: Some(handle),
                peer: cand,
                issued_at: at,
                completes_at: net.async_completes_at(handle).expect("just issued"),
                generation,
                is_hedge: true,
                hop_span,
            },
            Err(err) => {
                let cost = if err == RpcError::SelfOffline {
                    SimDuration::ZERO
                } else {
                    net.config().timeout
                };
                InFlightRpc {
                    handle: None,
                    peer: cand,
                    issued_at: at,
                    completes_at: at + cost,
                    generation,
                    is_hedge: true,
                    hop_span,
                }
            }
        };
        machine.in_flight.push(entry);
    }

    fn lookup_finish(&mut self, net: &mut SimNet, machine: &mut LookupMachine) {
        net.tracer().close(machine.span, machine.finished_at);
        let mut closest = machine.shortlist.clone();
        closest.retain(|c| !machine.failed.contains(&c.index));
        closest.sort_by_key(|a| a.key.xor(&machine.target));
        closest.truncate(machine.k);
        machine.result = Some((
            LookupOutcome {
                closest,
                hops: machine.hops,
                messages: machine.messages,
                latency: machine.finished_at.since(machine.started_at),
                queue_delay: machine.queue_delay,
            },
            machine.found_value.take(),
        ));
    }

    /// Run a lookup machine to completion on its own timeline (the
    /// synchronous entry points build on this).
    pub(crate) fn lookup_drive(
        &mut self,
        net: &mut SimNet,
        mut machine: LookupMachine,
    ) -> (LookupOutcome, Option<Record>) {
        let mut at = machine.started_at;
        loop {
            match self.lookup_poll(net, &mut machine, at) {
                LookupStep::Ready => return machine.into_result(),
                LookupStep::Pending { next_event_at } => at = next_event_at,
            }
        }
    }
}
