//! Event-driven Kademlia lookup state machine.
//!
//! [`LookupMachine`] replaces the old synchronous round loop: instead of
//! blocking on α RPCs per round, a lookup keeps **up to α RPC handles in
//! flight** via [`qb_simnet::SimNet::send_async_at`] and advances on
//! completions delivered by [`qb_simnet::SimNet::poll_complete`]. Because
//! every hop is an in-flight operation on the requester's uplink, hops from
//! *different* concurrent lookups interleave on a contended link and every
//! queue delay is charged to [`qb_simnet::NetStats`].
//!
//! # States
//!
//! A machine is in exactly one of three states:
//!
//! 1. **Short-circuited** — a value lookup whose local replica already
//!    satisfies `min_version` finishes at construction with zero cost and
//!    no span (there was no network activity to trace).
//! 2. **Running** — one or more RPCs in flight. [`DhtNetwork::lookup_poll`]
//!    processes every completion due at the polled instant in completion
//!    order, then refills the frontier; it reports
//!    [`LookupStep::Pending`] with the next completion instant so a driver
//!    can advance to exactly the next event.
//! 3. **Done** — the frontier is exhausted (or the value was found, or the
//!    RPC budget ran out) and no RPC remains in flight.
//!    [`LookupMachine::into_result`] yields the [`LookupOutcome`] plus the
//!    freshest record seen.
//!
//! # α-frontier invariants
//!
//! * At most `alpha` RPCs are in flight at any instant.
//! * An RPC is only issued to the closest (XOR metric) not-yet-queried,
//!   not-failed candidate among the `k` closest known live contacts — the
//!   frontier never digs past the current top-`k`.
//! * Each peer is queried at most once per lookup; failures remove the peer
//!   from both the shortlist and the requester's routing table.
//! * Completions are processed in (completion instant, issue order) order,
//!   so a run is bit-identical for a given seed regardless of how the
//!   driver batches its polls.
//! * Total RPCs are bounded by `max_rounds × alpha`, the same budget the
//!   synchronous loop had.
//!
//! # Termination rule
//!
//! The machine issues no further RPCs once (a) a value lookup has been
//! satisfied by a replica with `version ≥ min_version`, (b) every
//! non-failed candidate among the `k` closest known has been queried, or
//! (c) the RPC budget is exhausted. It reports [`LookupStep::Ready`] when
//! additionally the last in-flight RPC has completed; the closest-node list
//! is then the `k` closest non-failed contacts discovered. This is the same
//! fixed point the synchronous loop reached via its "top-k all queried and
//! no progress" round check: a closer contact always enters the top-`k`
//! unqueried and therefore keeps the frontier alive.
//!
//! # Tracing
//!
//! The lookup records one `dht.lookup` span (under the caller-supplied
//! parent, or the innermost open span) and one `dht.hop` span per RPC
//! attempt. Hop spans are created off the stack discipline with explicit
//! parents so interleaved lookups keep disjoint, correctly-nested trees;
//! the underlying `rpc` / `net.queue` / `net.deliver` spans nest under
//! their hop.

use crate::network::{DhtNetwork, LookupOutcome};
use crate::node::Record;
use qb_common::{DhtKey, Hash256, NodeId, SimDuration, SimInstant};
use qb_simnet::{Poll, RpcError, RpcHandle, SimNet};
use qb_trace::SpanId;
use std::collections::HashSet;

/// What a [`DhtNetwork::lookup_poll`] call observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupStep {
    /// RPCs remain in flight; the earliest completes at `next_event_at`.
    Pending {
        /// Instant of the next completion — poll again at (or after) it.
        next_event_at: SimInstant,
    },
    /// The lookup has finished; take the result with
    /// [`LookupMachine::into_result`].
    Ready,
}

/// One RPC attempt in flight. `handle` is `None` for an attempt that failed
/// at issue time (offline peer, partition, drop): the failure still costs
/// the configured timeout on the lookup's timeline, exactly like the
/// synchronous `rpc_or_timeout` path did.
#[derive(Debug)]
struct InFlightRpc {
    handle: Option<RpcHandle>,
    peer: NodeId,
    completes_at: SimInstant,
    generation: usize,
    hop_span: Option<SpanId>,
}

/// An in-progress iterative lookup (see the module docs for the state
/// machine). Create with [`DhtNetwork::lookup_begin`], advance with
/// [`DhtNetwork::lookup_poll`], and consume with
/// [`LookupMachine::into_result`].
#[derive(Debug)]
pub struct LookupMachine {
    target: Hash256,
    from: u64,
    want_value: Option<DhtKey>,
    min_version: u64,
    started_at: SimInstant,
    span: Option<SpanId>,
    shortlist: Vec<NodeId>,
    queried: HashSet<u64>,
    failed: HashSet<u64>,
    in_flight: Vec<InFlightRpc>,
    found_value: Option<Record>,
    messages: u64,
    completed: u64,
    rpc_budget: u64,
    k: usize,
    alpha: usize,
    request_bytes: usize,
    response_bytes: usize,
    hops: usize,
    satisfied: bool,
    finished_at: SimInstant,
    queue_delay: SimDuration,
    result: Option<(LookupOutcome, Option<Record>)>,
}

impl LookupMachine {
    /// True once the lookup has finished and holds its result.
    pub fn is_done(&self) -> bool {
        self.result.is_some()
    }

    /// RPC attempts whose completion has been processed so far. Grows
    /// monotonically as the machine is polled; tests use it to observe how
    /// hops of concurrent lookups interleave.
    pub fn completed_rpcs(&self) -> u64 {
        self.completed
    }

    /// The lookup result. Panics when the machine is not [`Self::is_done`].
    pub fn into_result(self) -> (LookupOutcome, Option<Record>) {
        self.result.expect("lookup not finished; poll until Ready")
    }

    /// Retire any in-flight handles without processing their results, so an
    /// aborted driver leaves no orphaned operations in the network.
    pub fn abandon(&mut self, net: &mut SimNet) {
        for op in self.in_flight.drain(..) {
            if let Some(handle) = op.handle {
                net.poll_complete(handle, op.completes_at);
            }
        }
    }

    fn fresh_enough(&self) -> bool {
        self.found_value
            .as_ref()
            .is_some_and(|r| r.version >= self.min_version)
    }

    /// The closest not-yet-queried, not-failed candidate among the `k`
    /// closest non-failed known contacts (the α-frontier rule).
    fn next_candidate(&mut self) -> Option<NodeId> {
        self.shortlist.sort_by_key(|a| a.key.xor(&self.target));
        self.shortlist
            .iter()
            .filter(|c| !self.failed.contains(&c.index))
            .take(self.k)
            .find(|c| !self.queried.contains(&c.index))
            .copied()
    }
}

impl DhtNetwork {
    /// Start an iterative lookup from peer `from` at virtual instant `at`.
    ///
    /// `want_value` turns the node lookup into a value lookup that is
    /// satisfied by a replica with `version ≥ min_version` (see
    /// [`DhtNetwork::get_record_fresh`] for the freshness semantics).
    /// Trace spans nest under `parent`; pass `None` to attach under the
    /// innermost open span. The first α RPCs are issued (and paid for)
    /// immediately; drive the machine with [`DhtNetwork::lookup_poll`].
    #[allow(clippy::too_many_arguments)]
    pub fn lookup_begin(
        &mut self,
        net: &mut SimNet,
        from: u64,
        target: Hash256,
        want_value: Option<DhtKey>,
        min_version: u64,
        at: SimInstant,
        parent: Option<SpanId>,
    ) -> LookupMachine {
        let config = self.config();
        let mut machine = LookupMachine {
            target,
            from,
            want_value,
            min_version,
            started_at: at,
            span: None,
            shortlist: Vec::new(),
            queried: HashSet::new(),
            failed: HashSet::new(),
            in_flight: Vec::new(),
            found_value: None,
            messages: 0,
            completed: 0,
            rpc_budget: (config.max_rounds * config.alpha.max(1)) as u64,
            k: config.k,
            alpha: config.alpha.max(1),
            request_bytes: config.request_bytes,
            response_bytes: config.contact_bytes * config.k,
            hops: 0,
            satisfied: false,
            finished_at: at,
            queue_delay: SimDuration::ZERO,
            result: None,
        };

        // A local replica that satisfies the freshness requirement
        // short-circuits the whole lookup; a provably stale one is kept as
        // a fallback while the network is searched.
        if let Some(key) = machine.want_value {
            if let Some(rec) = self.nodes[from as usize].find_value(&key, net.now()) {
                if rec.version >= machine.min_version {
                    machine.result = Some((
                        LookupOutcome {
                            closest: vec![self.nodes[from as usize].id],
                            hops: 0,
                            messages: 0,
                            latency: SimDuration::ZERO,
                            queue_delay: SimDuration::ZERO,
                        },
                        Some(rec.clone()),
                    ));
                    return machine;
                }
                machine.found_value = Some(rec.clone());
            }
        }

        machine.shortlist = self.nodes[from as usize].routing.closest(&target, config.k);
        machine.queried.insert(from);
        machine.span = net.tracer().record_with(parent, "dht.lookup", at, at, || {
            format!("{} from {}", target.short(), from)
        });
        self.lookup_issue(net, &mut machine, at, 1);
        machine
    }

    /// Advance a lookup at instant `at`: process every completion due by
    /// then (in completion order, refilling the frontier after each) and
    /// report either the next event instant or readiness.
    pub fn lookup_poll(
        &mut self,
        net: &mut SimNet,
        machine: &mut LookupMachine,
        at: SimInstant,
    ) -> LookupStep {
        if machine.is_done() {
            return LookupStep::Ready;
        }
        // Process due completions one at a time, earliest first (ties break
        // on issue order), so results are independent of how the driver
        // batches its polls.
        loop {
            let due = machine
                .in_flight
                .iter()
                .enumerate()
                .filter(|(_, op)| op.completes_at <= at)
                .min_by_key(|(i, op)| (op.completes_at, *i))
                .map(|(i, _)| i);
            let Some(i) = due else { break };
            let op = machine.in_flight.remove(i);
            let mut completed_at = op.completes_at;
            let ok = match op.handle {
                Some(handle) => match net.poll_complete(handle, op.completes_at) {
                    Some(Poll::Ready(done)) => {
                        machine.queue_delay += done.queue_delay;
                        completed_at = done.completed_at;
                        true
                    }
                    _ => false,
                },
                None => false,
            };
            net.tracer().close(op.hop_span, completed_at);
            machine.completed += 1;
            machine.finished_at = machine.finished_at.max(completed_at);
            if ok {
                // Successful contact: update both routing tables.
                let from_id = self.nodes[machine.from as usize].id;
                self.nodes[op.peer.index as usize]
                    .routing
                    .observe(from_id, true);
                let cand_id = self.nodes[op.peer.index as usize].id;
                self.nodes[machine.from as usize]
                    .routing
                    .observe(cand_id, true);
                // Value check: keep the freshest replica seen so far.
                if let Some(key) = machine.want_value {
                    if !machine.fresh_enough() {
                        if let Some(rec) =
                            self.nodes[op.peer.index as usize].find_value(&key, net.now())
                        {
                            if machine
                                .found_value
                                .as_ref()
                                .is_none_or(|best| rec.version > best.version)
                            {
                                machine.found_value = Some(rec.clone());
                            }
                        }
                        if machine.fresh_enough() {
                            machine.satisfied = true;
                        }
                    }
                }
                // A satisfied lookup stops expanding the frontier (the
                // satisfying hop's contacts are discarded, matching the
                // synchronous loop's break-before-merge).
                if !machine.satisfied {
                    for c in
                        self.nodes[op.peer.index as usize].find_node(&machine.target, machine.k)
                    {
                        if c.index != machine.from
                            && !machine.shortlist.iter().any(|e| e.index == c.index)
                        {
                            machine.shortlist.push(c);
                        }
                    }
                }
            } else {
                machine.failed.insert(op.peer.index);
                let cand_id = self.nodes[op.peer.index as usize].id;
                self.nodes[machine.from as usize].routing.remove(&cand_id);
            }
            self.lookup_issue(net, machine, completed_at, op.generation + 1);
        }
        match machine.in_flight.iter().map(|op| op.completes_at).min() {
            Some(next_event_at) => LookupStep::Pending { next_event_at },
            None => {
                self.lookup_finish(net, machine);
                LookupStep::Ready
            }
        }
    }

    /// Refill the frontier at instant `at`: issue RPCs to the closest
    /// eligible candidates until α are in flight, the budget is spent, or
    /// the frontier is exhausted.
    fn lookup_issue(
        &mut self,
        net: &mut SimNet,
        machine: &mut LookupMachine,
        at: SimInstant,
        generation: usize,
    ) {
        while !machine.satisfied
            && machine.in_flight.len() < machine.alpha
            && machine.messages < machine.rpc_budget
        {
            let Some(cand) = machine.next_candidate() else {
                break;
            };
            machine.queried.insert(cand.index);
            machine.messages += 1;
            machine.hops = machine.hops.max(generation);
            let hop_span = net
                .tracer()
                .record_with(machine.span, "dht.hop", at, at, || {
                    format!("gen {} -> {}", generation, cand.index)
                });
            let entry = match net.send_async_at(
                machine.from,
                cand.index,
                machine.request_bytes,
                machine.response_bytes,
                at,
                hop_span,
            ) {
                Ok(handle) => InFlightRpc {
                    handle: Some(handle),
                    peer: cand,
                    completes_at: net.async_completes_at(handle).expect("just issued"),
                    generation,
                    hop_span,
                },
                Err(err) => {
                    // A failed attempt costs the timeout on the lookup's
                    // timeline (an offline requester pays nothing), exactly
                    // like the synchronous rpc_or_timeout path.
                    let cost = if err == RpcError::SelfOffline {
                        SimDuration::ZERO
                    } else {
                        net.config().timeout
                    };
                    InFlightRpc {
                        handle: None,
                        peer: cand,
                        completes_at: at + cost,
                        generation,
                        hop_span,
                    }
                }
            };
            machine.in_flight.push(entry);
        }
    }

    fn lookup_finish(&mut self, net: &mut SimNet, machine: &mut LookupMachine) {
        net.tracer().close(machine.span, machine.finished_at);
        let mut closest = machine.shortlist.clone();
        closest.retain(|c| !machine.failed.contains(&c.index));
        closest.sort_by_key(|a| a.key.xor(&machine.target));
        closest.truncate(machine.k);
        machine.result = Some((
            LookupOutcome {
                closest,
                hops: machine.hops,
                messages: machine.messages,
                latency: machine.finished_at.since(machine.started_at),
                queue_delay: machine.queue_delay,
            },
            machine.found_value.take(),
        ));
    }

    /// Run a lookup machine to completion on its own timeline (the
    /// synchronous entry points build on this).
    pub(crate) fn lookup_drive(
        &mut self,
        net: &mut SimNet,
        mut machine: LookupMachine,
    ) -> (LookupOutcome, Option<Record>) {
        let mut at = machine.started_at;
        loop {
            match self.lookup_poll(net, &mut machine, at) {
                LookupStep::Ready => return machine.into_result(),
                LookupStep::Pending { next_event_at } => at = next_event_at,
            }
        }
    }
}
