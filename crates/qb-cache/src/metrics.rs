//! Per-tier cache counters.

/// Counters for one cache tier. All counters are cumulative since engine
/// start; snapshot and diff to rate-limit windows externally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TierMetrics {
    /// Lookups served from the tier.
    pub hits: u64,
    /// Lookups the tier could not serve.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted for capacity.
    pub evictions: u64,
    /// Lookups rejected because the entry's TTL had lapsed.
    pub expirations: u64,
    /// Entries dropped because their recorded version no longer matched the
    /// caller's current version, or because of explicit publish-path
    /// invalidation.
    pub invalidations: u64,
    /// Insertions refused by the sampled-LFU admission filter.
    pub admission_rejections: u64,
}

impl TierMetrics {
    /// Hit rate over all lookups (0.0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fold another tier's counters in (fleet-wide aggregation).
    pub fn merge(&mut self, other: &TierMetrics) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
        self.expirations += other.expirations;
        self.invalidations += other.invalidations;
        self.admission_rejections += other.admission_rejections;
    }
}

/// Snapshot of every tier's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheMetrics {
    /// Result-tier counters.
    pub result: TierMetrics,
    /// Shard-tier counters.
    pub shard: TierMetrics,
    /// Negative-tier counters.
    pub negative: TierMetrics,
}

impl CacheMetrics {
    /// Total invalidations across tiers (publish-path + version checks).
    pub fn total_invalidations(&self) -> u64 {
        self.result.invalidations + self.shard.invalidations + self.negative.invalidations
    }

    /// Total evictions across tiers.
    pub fn total_evictions(&self) -> u64 {
        self.result.evictions + self.shard.evictions + self.negative.evictions
    }

    /// Fold another snapshot in (aggregate view over a frontend fleet).
    pub fn merge(&mut self, other: &CacheMetrics) {
        self.result.merge(&other.result);
        self.shard.merge(&other.shard);
        self.negative.merge(&other.negative);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_empty_and_mixed() {
        let mut t = TierMetrics::default();
        assert_eq!(t.hit_rate(), 0.0);
        t.hits = 3;
        t.misses = 1;
        assert!((t.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(t.lookups(), 4);
    }

    #[test]
    fn totals_sum_tiers() {
        let m = CacheMetrics {
            result: TierMetrics {
                invalidations: 2,
                evictions: 1,
                ..Default::default()
            },
            shard: TierMetrics {
                invalidations: 3,
                evictions: 4,
                ..Default::default()
            },
            negative: TierMetrics {
                invalidations: 5,
                evictions: 6,
                ..Default::default()
            },
        };
        assert_eq!(m.total_invalidations(), 10);
        assert_eq!(m.total_evictions(), 11);
    }
}
