//! Cache configuration.

use qb_common::{QbError, QbResult, SimDuration};

/// Which eviction policy a tier runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Evict the least-recently-used entry.
    Lru,
    /// TinyLFU-style sampled admission: when full, the incoming key must be
    /// estimated more frequent than the coldest of `sample` LRU victims,
    /// otherwise it is not admitted at all. Protects the hot working set
    /// from being flushed by long tails of one-off queries.
    SampledLfu {
        /// How many LRU-ordered victims to compare against per admission.
        sample: usize,
    },
}

impl Default for EvictionPolicy {
    fn default() -> Self {
        EvictionPolicy::SampledLfu { sample: 5 }
    }
}

/// Configuration of the query-serving cache.
///
/// Defaults are sized for simulation-scale deployments (tens of kilobytes
/// per tier); production would scale the budgets up by orders of magnitude.
/// The cache ships **disabled** so the engine keeps its uncached seed
/// behavior unless a deployment opts in.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Master switch; when false the engine never consults the cache.
    pub enabled: bool,
    /// Byte budget of the result tier.
    pub result_capacity_bytes: usize,
    /// Byte budget of the shard tier.
    pub shard_capacity_bytes: usize,
    /// Byte budget of the negative tier (entries are tiny; this mostly
    /// bounds the number of remembered absent terms).
    pub negative_capacity_bytes: usize,
    /// Time-to-live of result entries (simulated time).
    pub result_ttl: SimDuration,
    /// Time-to-live of shard entries.
    pub shard_ttl: SimDuration,
    /// Time-to-live of negative entries. Kept shorter than the other tiers:
    /// a negative entry suppresses DHT lookups entirely, so this bounds how
    /// long a term published by *another* frontend could go unnoticed.
    pub negative_ttl: SimDuration,
    /// Eviction/admission policy used by all tiers.
    pub policy: EvictionPolicy,
    /// Latency charged for answering from the local cache (memory lookup +
    /// local scoring; orders of magnitude below a DHT round-trip).
    pub hit_latency: SimDuration,
    /// Scale each term's shard-tier TTL with its observed republish rate
    /// instead of the single `shard_ttl` knob: a term with an estimated
    /// republish interval `I` gets a TTL of `I / 2` clamped to the
    /// floor/ceiling below; a term never observed to change after its
    /// initial index counts as archival and gets `adaptive_ttl_ceiling`.
    pub adaptive_ttl: bool,
    /// Lower bound of the adapted shard TTL (hot, constantly-updated terms).
    pub adaptive_ttl_floor: SimDuration,
    /// Upper bound of the adapted shard TTL (archival terms that were never
    /// observed to be republished).
    pub adaptive_ttl_ceiling: SimDuration,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            enabled: false,
            result_capacity_bytes: 256 * 1024,
            shard_capacity_bytes: 512 * 1024,
            negative_capacity_bytes: 16 * 1024,
            result_ttl: SimDuration::from_secs(300),
            shard_ttl: SimDuration::from_secs(600),
            negative_ttl: SimDuration::from_secs(60),
            policy: EvictionPolicy::default(),
            hit_latency: SimDuration::from_micros(120),
            adaptive_ttl: true,
            adaptive_ttl_floor: SimDuration::from_secs(5),
            adaptive_ttl_ceiling: SimDuration::from_secs(1_800),
        }
    }
}

impl CacheConfig {
    /// An enabled configuration with the default knobs.
    pub fn enabled() -> CacheConfig {
        CacheConfig {
            enabled: true,
            ..CacheConfig::default()
        }
    }

    /// A small enabled configuration for unit tests.
    pub fn small() -> CacheConfig {
        CacheConfig {
            enabled: true,
            result_capacity_bytes: 8 * 1024,
            shard_capacity_bytes: 16 * 1024,
            negative_capacity_bytes: 2 * 1024,
            ..CacheConfig::default()
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> QbResult<()> {
        if !self.enabled {
            return Ok(());
        }
        if self.result_capacity_bytes == 0
            || self.shard_capacity_bytes == 0
            || self.negative_capacity_bytes == 0
        {
            return Err(QbError::Config(
                "cache tier byte budgets must be positive when the cache is enabled".into(),
            ));
        }
        if self.result_ttl == SimDuration::ZERO
            || self.shard_ttl == SimDuration::ZERO
            || self.negative_ttl == SimDuration::ZERO
        {
            return Err(QbError::Config(
                "cache TTLs must be positive when the cache is enabled".into(),
            ));
        }
        if let EvictionPolicy::SampledLfu { sample } = self.policy {
            if sample == 0 {
                return Err(QbError::Config(
                    "sampled-LFU sample width must be positive".into(),
                ));
            }
        }
        if self.adaptive_ttl {
            if self.adaptive_ttl_floor == SimDuration::ZERO {
                return Err(QbError::Config(
                    "adaptive TTL floor must be positive when adaptive TTLs are on".into(),
                ));
            }
            if self.adaptive_ttl_floor > self.adaptive_ttl_ceiling {
                return Err(QbError::Config(format!(
                    "adaptive TTL floor {} must not exceed the ceiling {}",
                    self.adaptive_ttl_floor, self.adaptive_ttl_ceiling
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled_and_valid() {
        let c = CacheConfig::default();
        assert!(!c.enabled);
        assert!(c.validate().is_ok());
        assert!(CacheConfig::enabled().enabled);
        assert!(CacheConfig::enabled().validate().is_ok());
        assert!(CacheConfig::small().validate().is_ok());
    }

    #[test]
    fn invalid_enabled_configs_are_rejected() {
        let mut c = CacheConfig::enabled();
        c.result_capacity_bytes = 0;
        assert!(c.validate().is_err());

        let mut c = CacheConfig::enabled();
        c.negative_ttl = SimDuration::ZERO;
        assert!(c.validate().is_err());

        let mut c = CacheConfig::enabled();
        c.policy = EvictionPolicy::SampledLfu { sample: 0 };
        assert!(c.validate().is_err());

        let mut c = CacheConfig::enabled();
        c.adaptive_ttl_floor = SimDuration::ZERO;
        assert!(c.validate().is_err());

        let mut c = CacheConfig::enabled();
        c.adaptive_ttl_floor = c.adaptive_ttl_ceiling + SimDuration::from_secs(1);
        assert!(c.validate().is_err());
        c.adaptive_ttl = false;
        assert!(
            c.validate().is_ok(),
            "bounds are ignored when adaptive is off"
        );

        // A disabled config is valid regardless of the other knobs.
        let c = CacheConfig {
            result_capacity_bytes: 0,
            ..CacheConfig::default()
        };
        assert!(c.validate().is_ok());
    }
}
