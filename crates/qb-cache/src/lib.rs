//! `qb-cache`: a multi-tier query-serving cache with version-aware
//! invalidation for the QueenBee frontend.
//!
//! The paper's frontend answers every query by fetching one index shard per
//! term through the DHT. Under the Zipf-skewed query streams the roadmap
//! targets, the hot head of the distribution pays full network latency on
//! every repeat — exactly the cost real decentralized search designs absorb
//! with peer-side caches. This crate provides that layer as a deterministic,
//! self-contained subsystem with three tiers:
//!
//! * **Result cache** — keyed by the normalized query (sorted, analyzed
//!   terms); holds fully scored result lists. An entry records the shard
//!   version of every query term at fill time and is only served while all
//!   of those versions are still current, so no republish can be masked.
//! * **Shard cache** — keyed by term; holds [`qb_index::ShardEntry`] values
//!   validated against the engine's monotonic per-term shard version
//!   counter. A bumped version makes the cached shard unreachable
//!   immediately.
//! * **Negative cache** — terms proven absent from the index. Miss-storms on
//!   nonsense or not-yet-indexed terms would otherwise hammer the DHT with
//!   lookups that can never succeed.
//!
//! **Invalidation rules.** Entries die through any of three doors:
//! (1) *version checks* — every lookup passes the caller's current version
//! and mismatches are evicted on the spot; (2) *publish-path invalidation* —
//! [`QueryCache::invalidate_term`] purges the term's shard and negative
//! entries plus every result-cache entry whose query contains the term (a
//! reverse index makes this O(affected)); (3) *TTLs* in simulated time as a
//! backstop bound on staleness even if both other mechanisms were bypassed.
//!
//! **Eviction.** Each tier has a byte budget. Two policies are provided:
//! classic LRU, and a sampled-LFU admission policy in the TinyLFU style — a
//! compact frequency sketch estimates popularity; when the tier is full the
//! incoming key is admitted only if it is more popular than the
//! least-recently-used victims it would displace. All bookkeeping is
//! deterministic (ordered maps, logical tick counters, seeded hashing), so
//! simulation runs reproduce bit-for-bit.
//!
//! **Config knobs.** See [`CacheConfig`]: per-tier byte budgets and TTLs,
//! the eviction policy, the LFU sample width, and the latency charged for a
//! local cache hit. The cache is disabled by default so existing
//! deployments keep their seed behavior.

pub mod config;
pub mod metrics;
pub mod sketch;
pub mod tier;

mod query_cache;

pub use config::{CacheConfig, EvictionPolicy};
pub use metrics::{CacheMetrics, TierMetrics};
pub use query_cache::{
    result_key, BoundedShardLookup, CachedResult, CachedStats, QueryCache, RemoteAdmit, ShardLookup,
};
pub use sketch::FreqSketch;
pub use tier::CacheTier;
