//! A compact frequency sketch for TinyLFU-style admission decisions.
//!
//! Four rows of 8-bit saturating counters, indexed by four independent
//! mixes of the key hash; the estimate is the minimum across rows
//! (count-min). After `ops_before_aging` increments every counter is halved,
//! so the sketch tracks *recent* popularity rather than all-time counts —
//! the "reset" operation of the TinyLFU paper.

/// Frequency sketch with saturating 8-bit counters and periodic aging.
#[derive(Debug, Clone)]
pub struct FreqSketch {
    rows: [Vec<u8>; 4],
    mask: u64,
    ops: u64,
    ops_before_aging: u64,
}

const SEEDS: [u64; 4] = [
    0x9e37_79b9_7f4a_7c15,
    0xc2b2_ae3d_27d4_eb4f,
    0x1656_67b1_9e37_79f9,
    0x2545_f491_4f6c_dd1d,
];

fn mix(hash: u64, seed: u64) -> u64 {
    let mut z = hash ^ seed;
    z = (z ^ (z >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
    z = (z ^ (z >> 33)).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    z ^ (z >> 33)
}

/// Deterministic 64-bit hash of a string key (FNV-1a).
pub fn hash_key(key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl FreqSketch {
    /// Build a sketch with roughly `entries` counters per row.
    pub fn new(entries: usize) -> FreqSketch {
        let width = entries.next_power_of_two().max(64);
        FreqSketch {
            rows: std::array::from_fn(|_| vec![0u8; width]),
            mask: (width - 1) as u64,
            ops: 0,
            ops_before_aging: (width as u64) * 10,
        }
    }

    /// Record one occurrence of the key.
    pub fn record(&mut self, hash: u64) {
        for (i, row) in self.rows.iter_mut().enumerate() {
            let idx = (mix(hash, SEEDS[i]) & self.mask) as usize;
            row[idx] = row[idx].saturating_add(1);
        }
        self.ops += 1;
        if self.ops >= self.ops_before_aging {
            self.age();
        }
    }

    /// Estimated recent frequency of the key.
    pub fn estimate(&self, hash: u64) -> u32 {
        self.rows
            .iter()
            .enumerate()
            .map(|(i, row)| row[(mix(hash, SEEDS[i]) & self.mask) as usize] as u32)
            .min()
            .unwrap_or(0)
    }

    fn age(&mut self) {
        for row in self.rows.iter_mut() {
            for c in row.iter_mut() {
                *c >>= 1;
            }
        }
        self.ops = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_track_recorded_frequency() {
        let mut s = FreqSketch::new(256);
        let hot = hash_key("hot-term");
        let cold = hash_key("cold-term");
        for _ in 0..20 {
            s.record(hot);
        }
        s.record(cold);
        assert!(s.estimate(hot) > s.estimate(cold));
        assert!(s.estimate(hot) >= 15, "count-min underestimates too much");
        assert_eq!(s.estimate(hash_key("never-seen")), 0);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut s = FreqSketch::new(64);
        let k = hash_key("k");
        for _ in 0..500 {
            s.record(k);
        }
        assert!(s.estimate(k) <= 255);
        assert!(s.estimate(k) > 0);
    }

    #[test]
    fn aging_halves_counts() {
        let mut s = FreqSketch::new(64);
        let k = hash_key("aging");
        for _ in 0..40 {
            s.record(k);
        }
        let before = s.estimate(k);
        s.age();
        let after = s.estimate(k);
        assert!(after <= before / 2 + 1, "before={before} after={after}");
    }

    #[test]
    fn hashing_is_deterministic() {
        assert_eq!(hash_key("abc"), hash_key("abc"));
        assert_ne!(hash_key("abc"), hash_key("abd"));
    }
}
