//! One cache tier: byte-budgeted, TTL-bounded, version-checked storage with
//! pluggable eviction.
//!
//! All bookkeeping is deterministic: entries live in ordered maps, recency
//! is a logical tick counter, and the frequency sketch hashes with fixed
//! seeds — two runs of the same simulation make identical decisions.

use crate::config::EvictionPolicy;
use crate::metrics::TierMetrics;
use crate::sketch::{hash_key, FreqSketch};
use qb_common::{SimDuration, SimInstant};
use std::collections::{BTreeMap, HashMap};

#[derive(Debug, Clone)]
struct Slot<V> {
    value: V,
    bytes: usize,
    version: u64,
    expires_at: SimInstant,
    stored_at: SimInstant,
    tick: u64,
    hash: u64,
}

/// A single byte-budgeted cache tier mapping `String` keys to values.
#[derive(Debug)]
pub struct CacheTier<V> {
    capacity_bytes: usize,
    ttl: SimDuration,
    policy: EvictionPolicy,
    entries: HashMap<String, Slot<V>>,
    /// Recency order: logical tick -> key. Ticks are unique and increasing,
    /// so the first entry is always the least recently used.
    recency: BTreeMap<u64, String>,
    tick: u64,
    bytes: usize,
    sketch: FreqSketch,
    /// When enabled, keys removed for any reason (eviction, expiry,
    /// invalidation, replacement) accumulate here until drained with
    /// [`CacheTier::take_removed`]. Off by default so tiers without an
    /// external index never grow an undrained log.
    track_removals: bool,
    removed: Vec<String>,
    /// Monotonic mutation counter: bumps whenever the tier's *holdings*
    /// change (insert, replacement, eviction, expiry, invalidation).
    /// Derived artifacts built over the holdings — like the gossip
    /// overlay's bloom-style holdings filter — can be cached behind this
    /// generation instead of being rebuilt per exchange.
    generation: u64,
    /// Counters for this tier.
    pub metrics: TierMetrics,
}

impl<V> CacheTier<V> {
    /// Create a tier with a byte budget, a TTL and an eviction policy.
    pub fn new(capacity_bytes: usize, ttl: SimDuration, policy: EvictionPolicy) -> CacheTier<V> {
        CacheTier {
            capacity_bytes,
            ttl,
            policy,
            entries: HashMap::new(),
            recency: BTreeMap::new(),
            tick: 0,
            bytes: 0,
            sketch: FreqSketch::new(1024),
            track_removals: false,
            removed: Vec::new(),
            generation: 0,
            metrics: TierMetrics::default(),
        }
    }

    /// The tier's holdings generation: any change to what the tier holds
    /// (insert, replacement, eviction, expiry, invalidation) bumps it.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Record removed keys for later draining via [`CacheTier::take_removed`].
    /// Callers that maintain an external index over this tier's keys need
    /// this to prune their index when entries die by eviction or TTL.
    pub fn set_track_removals(&mut self, on: bool) {
        self.track_removals = on;
    }

    /// Drain the keys removed (for any reason) since the last drain.
    pub fn take_removed(&mut self) -> Vec<String> {
        std::mem::take(&mut self.removed)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the tier holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently accounted to the tier.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The tier's TTL.
    pub fn ttl(&self) -> SimDuration {
        self.ttl
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Look up `key` at simulated time `now`. When `expected_version` is
    /// `Some(v)`, an entry recorded under a different version is dropped and
    /// counted as an invalidation (the version-aware read path). Expired
    /// entries are dropped and counted as expirations. Every lookup feeds
    /// the frequency sketch so the admission policy sees real popularity.
    pub fn get(&mut self, key: &str, now: SimInstant, expected_version: Option<u64>) -> Option<&V> {
        self.sketch.record(hash_key(key));
        let (expired, stale) = match self.entries.get(key) {
            None => {
                self.metrics.misses += 1;
                return None;
            }
            Some(slot) => (
                now >= slot.expires_at,
                expected_version.is_some_and(|v| v != slot.version),
            ),
        };
        if expired {
            self.remove_entry(key);
            self.metrics.expirations += 1;
            self.metrics.misses += 1;
            return None;
        }
        if stale {
            self.remove_entry(key);
            self.metrics.invalidations += 1;
            self.metrics.misses += 1;
            return None;
        }
        self.metrics.hits += 1;
        let tick = self.next_tick();
        let slot = self.entries.get_mut(key).expect("checked above");
        self.recency.remove(&slot.tick);
        slot.tick = tick;
        self.recency.insert(tick, key.to_string());
        Some(&self.entries[key].value)
    }

    /// Insert `key` with an explicit byte cost and version. Returns true
    /// when the entry was admitted. An entry larger than the whole tier, or
    /// one refused by the sampled-LFU admission filter, is not stored.
    pub fn insert(
        &mut self,
        key: &str,
        value: V,
        bytes: usize,
        version: u64,
        now: SimInstant,
    ) -> bool {
        self.insert_with_ttl(key, value, bytes, version, now, self.ttl)
    }

    /// Like [`CacheTier::insert`] but with a per-entry TTL override, used by
    /// the adaptive-TTL policy (hot, frequently-republished terms get short
    /// lifetimes; archival terms long ones) and by gossip fills that inherit
    /// the sender's adapted TTL.
    pub fn insert_with_ttl(
        &mut self,
        key: &str,
        value: V,
        bytes: usize,
        version: u64,
        now: SimInstant,
        ttl: SimDuration,
    ) -> bool {
        let hash = hash_key(key);
        self.sketch.record(hash);
        if bytes > self.capacity_bytes {
            self.metrics.admission_rejections += 1;
            return false;
        }
        // Replacing an existing entry never goes through admission: the key
        // already proved itself.
        if self.entries.contains_key(key) {
            self.remove_entry(key);
        }
        // Plan the full victim set before evicting anything, so a refused
        // admission never costs resident entries.
        match self.plan_evictions(hash, bytes) {
            Some(victims) => {
                for victim in victims {
                    self.remove_entry(&victim);
                    self.metrics.evictions += 1;
                }
            }
            None => {
                self.metrics.admission_rejections += 1;
                return false;
            }
        }
        let tick = self.next_tick();
        self.recency.insert(tick, key.to_string());
        self.entries.insert(
            key.to_string(),
            Slot {
                value,
                bytes,
                version,
                expires_at: now + ttl,
                stored_at: now,
                tick,
                hash,
            },
        );
        self.bytes += bytes;
        self.generation += 1;
        self.metrics.insertions += 1;
        true
    }

    /// Choose the set of keys to evict so an entry of `bytes` fits, without
    /// removing anything yet. Returns `None` when the policy refuses
    /// admission (or nothing is left to evict) — in that case no resident
    /// entry is touched.
    fn plan_evictions(&self, incoming: u64, bytes: usize) -> Option<Vec<String>> {
        let mut victims: Vec<String> = Vec::new();
        let mut freed = 0usize;
        while self.bytes - freed + bytes > self.capacity_bytes {
            let victim = match self.policy {
                EvictionPolicy::Lru => self
                    .recency
                    .values()
                    .find(|k| !victims.contains(k))
                    .cloned()?,
                EvictionPolicy::SampledLfu { sample } => {
                    // The incoming key must beat the coldest of the `sample`
                    // least-recently-used residents — for every victim the
                    // admission would displace.
                    let victim = self
                        .recency
                        .values()
                        .filter(|k| !victims.contains(k))
                        .take(sample.max(1))
                        .min_by_key(|key| {
                            let slot = &self.entries[key.as_str()];
                            (self.sketch.estimate(slot.hash), slot.tick)
                        })?;
                    let victim_freq = self.sketch.estimate(self.entries[victim.as_str()].hash);
                    if self.sketch.estimate(incoming) < victim_freq {
                        return None;
                    }
                    victim.clone()
                }
            };
            freed += self.entries[victim.as_str()].bytes;
            victims.push(victim);
        }
        Some(victims)
    }

    /// Drop `key` explicitly (publish-path invalidation). Returns true when
    /// an entry existed.
    pub fn invalidate(&mut self, key: &str) -> bool {
        if self.remove_entry(key) {
            self.metrics.invalidations += 1;
            true
        } else {
            false
        }
    }

    /// Does the tier currently hold `key` (ignoring TTL/version checks)?
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// The recorded version of `key`, when present.
    pub fn version_of(&self, key: &str) -> Option<u64> {
        self.entries.get(key).map(|s| s.version)
    }

    /// Borrow `key`'s value without touching recency, TTL or counters (the
    /// read side of gossip fills: building a fill must not look like query
    /// traffic to the eviction policy).
    pub fn peek(&self, key: &str) -> Option<&V> {
        self.entries.get(key).map(|s| &s.value)
    }

    /// Remaining lifetime of `key` at `now`; `None` when the entry is
    /// absent or already past its expiry (without removing it — this is a
    /// read-only probe used by the gossip fill path).
    pub fn remaining_ttl(&self, key: &str, now: SimInstant) -> Option<SimDuration> {
        let slot = self.entries.get(key)?;
        (now < slot.expires_at).then(|| slot.expires_at - now)
    }

    /// When `key` was inserted (read-only probe; `None` when absent). The
    /// age of an entry — `now - stored_at` — is the staleness bound the
    /// `MaxStaleness` freshness mode checks before serving a cached shard
    /// whose version has already been superseded.
    pub fn stored_at(&self, key: &str) -> Option<SimInstant> {
        self.entries.get(key).map(|s| s.stored_at)
    }

    /// Account a probe that found nothing servable, without touching any
    /// resident entry: the key still feeds the frequency sketch (so the
    /// admission policy sees the demand) and a miss is counted. Used by
    /// lookup paths that must not evict, like the staleness-bounded read.
    pub fn note_miss(&mut self, key: &str) {
        self.sketch.record(hash_key(key));
        self.metrics.misses += 1;
    }

    /// The `max` hottest keys alive at `now` with their versions, ordered by
    /// sketch-estimated popularity (ties broken by recency, newest first).
    /// Expired-but-resident entries are excluded: a digest must never
    /// advertise data that has already aged out. The order is
    /// deterministic: ticks are unique, so the sort is total.
    pub fn hottest(&self, max: usize, now: SimInstant) -> Vec<(String, u64)> {
        let mut ranked: Vec<(&String, u32, u64, u64)> = self
            .entries
            .iter()
            .filter(|(_, slot)| now < slot.expires_at)
            .map(|(k, slot)| (k, self.sketch.estimate(slot.hash), slot.tick, slot.version))
            .collect();
        ranked.sort_unstable_by_key(|&(_, freq, tick, _)| std::cmp::Reverse((freq, tick)));
        ranked
            .into_iter()
            .take(max)
            .map(|(k, _, _, v)| (k.clone(), v))
            .collect()
    }

    fn remove_entry(&mut self, key: &str) -> bool {
        match self.entries.remove(key) {
            Some(slot) => {
                self.recency.remove(&slot.tick);
                self.bytes -= slot.bytes;
                self.generation += 1;
                if self.track_removals {
                    self.removed.push(key.to_string());
                }
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> SimInstant {
        SimInstant::ZERO
    }

    fn lru_tier(capacity: usize) -> CacheTier<u64> {
        CacheTier::new(capacity, SimDuration::from_secs(60), EvictionPolicy::Lru)
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let mut tier = lru_tier(30);
        tier.insert("a", 1, 10, 1, t0());
        tier.insert("b", 2, 10, 1, t0());
        tier.insert("c", 3, 10, 1, t0());
        // Touch "a" so "b" becomes the LRU victim.
        assert!(tier.get("a", t0(), None).is_some());
        tier.insert("d", 4, 10, 1, t0());
        assert!(tier.contains("a"));
        assert!(!tier.contains("b"), "LRU victim should be b");
        assert!(tier.contains("c"));
        assert!(tier.contains("d"));
        assert_eq!(tier.metrics.evictions, 1);
        assert!(tier.bytes() <= 30);
    }

    #[test]
    fn lru_eviction_order_is_full_recency_order() {
        let mut tier = lru_tier(40);
        for (k, v) in [("a", 1u64), ("b", 2), ("c", 3), ("d", 4)] {
            tier.insert(k, v, 10, 1, t0());
        }
        // Recency now a < b < c < d. Touch in reverse: d c b a -> LRU is d.
        for k in ["d", "c", "b", "a"] {
            tier.get(k, t0(), None);
        }
        tier.insert("e", 5, 10, 1, t0());
        assert!(!tier.contains("d"));
        tier.insert("f", 6, 10, 1, t0());
        assert!(!tier.contains("c"));
        assert!(tier.contains("a") && tier.contains("b"));
    }

    #[test]
    fn sampled_lfu_protects_hot_entries_from_cold_inserts() {
        let mut tier: CacheTier<u64> = CacheTier::new(
            30,
            SimDuration::from_secs(60),
            EvictionPolicy::SampledLfu { sample: 3 },
        );
        tier.insert("hot1", 1, 10, 1, t0());
        tier.insert("hot2", 2, 10, 1, t0());
        tier.insert("hot3", 3, 10, 1, t0());
        // Make the residents popular.
        for _ in 0..10 {
            tier.get("hot1", t0(), None);
            tier.get("hot2", t0(), None);
            tier.get("hot3", t0(), None);
        }
        // A one-shot key must not displace them...
        assert!(!tier.insert("cold", 9, 10, 1, t0()));
        assert_eq!(tier.metrics.admission_rejections, 1);
        assert!(tier.contains("hot1") && tier.contains("hot2") && tier.contains("hot3"));
        // ...but a key that got as popular as the residents is admitted.
        for _ in 0..12 {
            tier.get("rising", t0(), None);
        }
        assert!(tier.insert("rising", 7, 10, 1, t0()));
        assert_eq!(tier.metrics.evictions, 1);
        assert_eq!(tier.len(), 3);
    }

    #[test]
    fn refused_admission_never_evicts_residents() {
        let mut tier: CacheTier<u64> = CacheTier::new(
            30,
            SimDuration::from_secs(60),
            EvictionPolicy::SampledLfu { sample: 3 },
        );
        // One cold resident, two hot ones; an incoming entry needing all
        // three slots must be refused without losing any resident — even
        // though it would beat the cold one.
        tier.insert("cold", 1, 10, 1, t0());
        tier.insert("hot1", 2, 10, 1, t0());
        tier.insert("hot2", 3, 10, 1, t0());
        for _ in 0..10 {
            tier.get("hot1", t0(), None);
            tier.get("hot2", t0(), None);
        }
        for _ in 0..5 {
            tier.get("incoming", t0(), None);
        }
        // incoming (freq ~6) beats cold (freq ~1) but loses to the hot pair,
        // and it needs 30 bytes = every slot.
        assert!(!tier.insert("incoming", 9, 30, 1, t0()));
        assert_eq!(tier.metrics.evictions, 0, "no resident may be sacrificed");
        assert!(tier.contains("cold") && tier.contains("hot1") && tier.contains("hot2"));
        assert_eq!(tier.metrics.admission_rejections, 1);
    }

    #[test]
    fn ttl_expiry_follows_simulated_time() {
        let mut tier: CacheTier<u64> =
            CacheTier::new(100, SimDuration::from_secs(10), EvictionPolicy::Lru);
        tier.insert("k", 7, 10, 1, t0());
        let just_before = t0() + SimDuration::from_micros(9_999_999);
        assert_eq!(tier.get("k", just_before, None), Some(&7));
        let at_expiry = t0() + SimDuration::from_secs(10);
        assert_eq!(tier.get("k", at_expiry, None), None);
        assert_eq!(tier.metrics.expirations, 1);
        assert!(!tier.contains("k"));
    }

    #[test]
    fn version_mismatch_invalidates_on_read() {
        let mut tier: CacheTier<u64> = lru_tier(100);
        tier.insert("term", 42, 10, 3, t0());
        assert_eq!(tier.get("term", t0(), Some(3)), Some(&42));
        // A bumped current version makes the entry unreachable and drops it.
        assert_eq!(tier.get("term", t0(), Some(4)), None);
        assert_eq!(tier.metrics.invalidations, 1);
        assert!(!tier.contains("term"));
    }

    #[test]
    fn explicit_invalidation_counts_and_removes() {
        let mut tier: CacheTier<u64> = lru_tier(100);
        tier.insert("x", 1, 10, 1, t0());
        assert!(tier.invalidate("x"));
        assert!(!tier.invalidate("x"));
        assert_eq!(tier.metrics.invalidations, 1);
        assert_eq!(tier.len(), 0);
        assert_eq!(tier.bytes(), 0);
    }

    #[test]
    fn oversized_entries_are_refused() {
        let mut tier: CacheTier<u64> = lru_tier(16);
        assert!(!tier.insert("big", 1, 17, 1, t0()));
        assert_eq!(tier.len(), 0);
        assert_eq!(tier.metrics.admission_rejections, 1);
    }

    #[test]
    fn per_entry_ttl_overrides_the_tier_default() {
        let mut tier: CacheTier<u64> =
            CacheTier::new(100, SimDuration::from_secs(60), EvictionPolicy::Lru);
        tier.insert_with_ttl("short", 1, 10, 1, t0(), SimDuration::from_secs(5));
        tier.insert("long", 2, 10, 1, t0());
        let later = t0() + SimDuration::from_secs(5);
        assert_eq!(tier.get("short", later, None), None, "short TTL expired");
        assert_eq!(tier.get("long", later, None), Some(&2), "default TTL holds");
    }

    #[test]
    fn peek_does_not_touch_recency_or_counters() {
        let mut tier = lru_tier(20);
        tier.insert("a", 1, 10, 1, t0());
        tier.insert("b", 2, 10, 1, t0());
        // Peeking "a" must not protect it from LRU eviction.
        assert_eq!(tier.peek("a"), Some(&1));
        assert_eq!(tier.metrics.hits, 0);
        tier.insert("c", 3, 10, 1, t0());
        assert!(!tier.contains("a"), "peek must not refresh recency");
        assert_eq!(tier.peek("missing"), None);
    }

    #[test]
    fn hottest_ranks_by_frequency_then_recency() {
        let mut tier = lru_tier(1000);
        for (k, v) in [("a", 1u64), ("b", 2), ("c", 3)] {
            tier.insert(k, v, 10, v, t0());
        }
        for _ in 0..6 {
            tier.get("b", t0(), None);
        }
        for _ in 0..2 {
            tier.get("c", t0(), None);
        }
        let top = tier.hottest(2, t0());
        assert_eq!(top, vec![("b".to_string(), 2), ("c".to_string(), 3)]);
        assert_eq!(tier.hottest(10, t0()).len(), 3);
        // Expired entries are not advertised even while still resident, and
        // remaining_ttl reports their true lifetime.
        let ttl = tier.ttl();
        assert_eq!(
            tier.remaining_ttl("b", t0() + SimDuration::from_secs(1)),
            Some(SimDuration(ttl.0 - 1_000_000))
        );
        assert_eq!(tier.hottest(10, t0() + ttl).len(), 0);
        assert_eq!(tier.remaining_ttl("b", t0() + ttl), None);
        assert_eq!(tier.remaining_ttl("missing", t0()), None);
    }

    #[test]
    fn generation_tracks_every_holdings_change() {
        let mut tier: CacheTier<u64> = lru_tier(30);
        assert_eq!(tier.generation(), 0);
        tier.insert("a", 1, 10, 1, t0());
        assert_eq!(tier.generation(), 1);
        // A pure read does not bump the generation.
        tier.get("a", t0(), None);
        assert_eq!(tier.generation(), 1);
        // Replacement = removal + insert.
        tier.insert("a", 2, 10, 2, t0());
        assert_eq!(tier.generation(), 3);
        // Eviction bumps (victim removal + new insert).
        tier.insert("b", 3, 10, 1, t0());
        tier.insert("c", 4, 10, 1, t0());
        let before = tier.generation();
        tier.insert("d", 5, 10, 1, t0());
        assert_eq!(tier.generation(), before + 2);
        // Invalidation and TTL expiry bump too.
        let before = tier.generation();
        assert!(tier.invalidate("d"));
        assert_eq!(tier.generation(), before + 1);
        let before = tier.generation();
        assert!(tier.get("c", t0() + tier.ttl(), None).is_none());
        assert_eq!(tier.generation(), before + 1, "expiry changes holdings");
    }

    #[test]
    fn replacing_a_key_updates_bytes_exactly() {
        let mut tier: CacheTier<u64> = lru_tier(100);
        tier.insert("k", 1, 30, 1, t0());
        tier.insert("k", 2, 10, 2, t0());
        assert_eq!(tier.bytes(), 10);
        assert_eq!(tier.len(), 1);
        assert_eq!(tier.version_of("k"), Some(2));
        assert_eq!(tier.get("k", t0(), Some(2)), Some(&2));
    }
}
