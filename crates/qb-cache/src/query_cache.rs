//! The three-tier query-serving cache used by the QueenBee frontend.

use crate::config::CacheConfig;
use crate::metrics::CacheMetrics;
use crate::tier::CacheTier;
use qb_common::SimInstant;
use qb_index::{IndexStats, ScoredDoc, ShardEntry};
use std::collections::{BTreeSet, HashMap};

/// A cached, fully scored result list plus everything needed to prove it is
/// still current.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// Ranked results as served.
    pub results: Vec<ScoredDoc>,
    /// Shard version of every query term at fill time (terms sorted). The
    /// entry is only served while each term's current version still matches.
    pub term_versions: Vec<(String, u64)>,
}

/// A cached copy of the global statistics record.
#[derive(Debug, Clone, Copy)]
pub struct CachedStats {
    /// The statistics as read from the DHT.
    pub stats: IndexStats,
}

/// Outcome of a shard-tier lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardLookup {
    /// The term's shard was cached and current.
    Hit(ShardEntry),
    /// The term is cached as proven-absent; skip the DHT entirely.
    Negative,
    /// Nothing cached; fetch through the DHT.
    Miss,
}

/// Normalize an analyzed term list into the result-cache key: terms sorted
/// and joined, so `"peer decentralized"` and `"decentralized peer"` share an
/// entry (scoring is order-independent).
pub fn result_key(terms: &[String]) -> String {
    let mut sorted: Vec<&str> = terms.iter().map(|s| s.as_str()).collect();
    sorted.sort_unstable();
    sorted.join(" ")
}

fn scored_doc_bytes(d: &ScoredDoc) -> usize {
    // doc_id + score + version + creator + the name's heap bytes.
    8 + 8 + 8 + 8 + d.name.len()
}

fn result_bytes(key: &str, r: &CachedResult) -> usize {
    key.len()
        + r.results.iter().map(scored_doc_bytes).sum::<usize>()
        + r.term_versions
            .iter()
            .map(|(t, _)| t.len() + 8)
            .sum::<usize>()
        + 48
}

fn shard_bytes(s: &ShardEntry) -> usize {
    s.term.len()
        + 8
        + s.postings
            .iter()
            .map(|p| 8 + 4 + 4 + 8 + 8 + p.name.len())
            .sum::<usize>()
        + 32
}

/// The multi-tier cache. All methods take the current simulated time; the
/// cache never reads a wall clock.
#[derive(Debug)]
pub struct QueryCache {
    config: CacheConfig,
    results: CacheTier<CachedResult>,
    shards: CacheTier<ShardEntry>,
    /// Negative entries store the shard version they were proven absent at
    /// (always 0: absent terms have never been written).
    negatives: CacheTier<()>,
    stats: Option<(CachedStats, u64)>,
    /// term -> result-cache keys containing it, for publish-path
    /// invalidation in O(affected entries).
    term_to_queries: HashMap<String, BTreeSet<String>>,
}

impl QueryCache {
    /// Build a cache from a validated configuration.
    pub fn new(config: CacheConfig) -> QueryCache {
        // The result tier reports every removal so the term reverse index
        // can be pruned no matter how an entry dies (eviction, TTL,
        // invalidation, replacement).
        let mut results = CacheTier::new(
            config.result_capacity_bytes,
            config.result_ttl,
            config.policy,
        );
        results.set_track_removals(true);
        QueryCache {
            results,
            shards: CacheTier::new(config.shard_capacity_bytes, config.shard_ttl, config.policy),
            negatives: CacheTier::new(
                config.negative_capacity_bytes,
                config.negative_ttl,
                config.policy,
            ),
            stats: None,
            term_to_queries: HashMap::new(),
            config,
        }
    }

    /// The configuration the cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    // ----- result tier -------------------------------------------------------------

    /// Look up a result entry. `current_version` maps a term to its current
    /// shard version; the entry is served only when every recorded term
    /// version still matches (and its TTL has not lapsed).
    pub fn lookup_result(
        &mut self,
        key: &str,
        now: SimInstant,
        mut current_version: impl FnMut(&str) -> u64,
    ) -> Option<CachedResult> {
        let entry = match self.results.get(key, now, None) {
            Some(e) => e.clone(),
            None => {
                // The lookup may have expired the entry; drop its index rows.
                self.prune_result_index();
                return None;
            }
        };
        let stale = entry
            .term_versions
            .iter()
            .any(|(term, v)| current_version(term) != *v);
        if stale {
            // The tier counted a hit; correct it to an invalidation-miss.
            self.results.metrics.hits -= 1;
            self.results.metrics.misses += 1;
            self.results.invalidate(key);
            self.prune_result_index();
            return None;
        }
        Some(entry)
    }

    /// Store a result entry computed from the given per-term shard versions.
    pub fn store_result(
        &mut self,
        key: &str,
        results: Vec<ScoredDoc>,
        term_versions: Vec<(String, u64)>,
        now: SimInstant,
    ) {
        let entry = CachedResult {
            results,
            term_versions,
        };
        let bytes = result_bytes(key, &entry);
        let terms: Vec<String> = entry.term_versions.iter().map(|(t, _)| t.clone()).collect();
        let admitted = self.results.insert(key, entry, bytes, 0, now);
        // Unindex whatever the insert displaced (evicted victims, or the
        // replaced previous entry for this key) *before* indexing the new
        // entry, so replacement cannot strip the fresh mappings.
        self.prune_result_index();
        if admitted {
            for term in terms {
                self.term_to_queries
                    .entry(term)
                    .or_default()
                    .insert(key.to_string());
            }
        }
    }

    // ----- shard + negative tiers --------------------------------------------------

    /// Look up a term's shard. `current_version` is the engine's monotonic
    /// version counter for the term (0 when the term was never written).
    pub fn lookup_shard(
        &mut self,
        term: &str,
        now: SimInstant,
        current_version: u64,
    ) -> ShardLookup {
        // Negative tier first: absent terms never have shard entries. The
        // negative entry is recorded at version 0 and a republished term
        // bumps the version, so the version check also re-opens the path to
        // the DHT the moment the term starts existing.
        if current_version == 0 {
            if self.negatives.get(term, now, Some(0)).is_some() {
                return ShardLookup::Negative;
            }
        } else {
            // Drop any stale negative entry without charging a lookup.
            if self.negatives.contains(term) {
                self.negatives.invalidate(term);
            }
        }
        match self.shards.get(term, now, Some(current_version)) {
            Some(shard) => ShardLookup::Hit(shard.clone()),
            None => ShardLookup::Miss,
        }
    }

    /// Store a freshly fetched shard, or — when the shard is empty and was
    /// never written (version 0) — a negative entry for the term.
    pub fn store_shard(&mut self, shard: &ShardEntry, now: SimInstant) {
        if shard.version == 0 && shard.postings.is_empty() {
            self.negatives
                .insert(&shard.term, (), shard.term.len() + 16, 0, now);
        } else {
            let bytes = shard_bytes(shard);
            self.shards
                .insert(&shard.term, shard.clone(), bytes, shard.version, now);
        }
    }

    // ----- statistics record -------------------------------------------------------

    /// Cached global statistics, validated against the current stats version.
    pub fn lookup_stats(&mut self, current_version: u64) -> Option<CachedStats> {
        match self.stats {
            Some((cached, version)) if version == current_version => Some(cached),
            _ => None,
        }
    }

    /// Store the statistics record under its version.
    pub fn store_stats(&mut self, stats: IndexStats, version: u64) {
        self.stats = Some((CachedStats { stats }, version));
    }

    // ----- publish-path invalidation ----------------------------------------------

    /// A page version touching `term` was (re)indexed: purge the term's
    /// shard and negative entries and every cached result whose query
    /// contains the term. Returns the number of entries dropped.
    pub fn invalidate_term(&mut self, term: &str) -> usize {
        let mut dropped = 0;
        if self.shards.invalidate(term) {
            dropped += 1;
        }
        if self.negatives.invalidate(term) {
            dropped += 1;
        }
        if let Some(keys) = self.term_to_queries.remove(term) {
            for key in keys {
                if self.results.invalidate(&key) {
                    dropped += 1;
                }
                self.unindex_query(&key);
            }
        }
        self.prune_result_index();
        dropped
    }

    /// Number of terms currently tracked by the result reverse index
    /// (diagnostic; bounded by the live result entries' distinct terms).
    pub fn reverse_index_terms(&self) -> usize {
        self.term_to_queries.len()
    }

    /// Unindex every result key the tier removed since the last drain.
    fn prune_result_index(&mut self) {
        for key in self.results.take_removed() {
            self.unindex_query(&key);
        }
    }

    /// Remove a result key from the reverse index (after the entry died).
    fn unindex_query(&mut self, key: &str) {
        let terms: Vec<String> = key.split(' ').map(|s| s.to_string()).collect();
        for term in terms {
            if let Some(set) = self.term_to_queries.get_mut(&term) {
                set.remove(key);
                if set.is_empty() {
                    self.term_to_queries.remove(&term);
                }
            }
        }
    }

    // ----- metrics -----------------------------------------------------------------

    /// Snapshot of every tier's counters.
    pub fn metrics(&self) -> CacheMetrics {
        CacheMetrics {
            result: self.results.metrics,
            shard: self.shards.metrics,
            negative: self.negatives.metrics,
        }
    }

    /// Entry counts per tier `(results, shards, negatives)`.
    pub fn tier_sizes(&self) -> (usize, usize, usize) {
        (self.results.len(), self.shards.len(), self.negatives.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_common::SimDuration;
    use qb_index::ShardPosting;

    fn t0() -> SimInstant {
        SimInstant::ZERO
    }

    fn cache() -> QueryCache {
        QueryCache::new(CacheConfig::small())
    }

    fn shard(term: &str, version: u64, docs: usize) -> ShardEntry {
        let mut s = ShardEntry::empty(term);
        s.version = version;
        for i in 0..docs as u64 {
            s.upsert(ShardPosting {
                doc_id: i * 13 + 1,
                term_freq: 2,
                doc_len: 40,
                name: format!("page/{i}"),
                version: 1,
                creator: 9,
            });
        }
        s
    }

    fn doc(name: &str, version: u64) -> ScoredDoc {
        ScoredDoc {
            doc_id: qb_index::doc_id_for_name(name),
            name: name.to_string(),
            score: 1.0,
            version,
            creator: 7,
        }
    }

    #[test]
    fn result_key_is_order_independent() {
        let a = result_key(&["peer".into(), "decentralized".into()]);
        let b = result_key(&["decentralized".into(), "peer".into()]);
        assert_eq!(a, b);
        assert_eq!(a, "decentralized peer");
    }

    #[test]
    fn result_round_trip_and_version_invalidation() {
        let mut c = cache();
        let key = result_key(&["honey".into(), "bees".into()]);
        c.store_result(
            &key,
            vec![doc("wiki/bees", 1)],
            vec![("honey".into(), 2), ("bees".into(), 5)],
            t0(),
        );
        // Served while versions match.
        let versions = |term: &str| if term == "honey" { 2 } else { 5 };
        let hit = c.lookup_result(&key, t0(), versions).expect("warm hit");
        assert_eq!(hit.results[0].name, "wiki/bees");
        // A bumped term version kills the entry on the next read.
        let bumped = |term: &str| if term == "honey" { 3 } else { 5 };
        assert!(c.lookup_result(&key, t0(), bumped).is_none());
        assert!(
            c.lookup_result(&key, t0(), versions).is_none(),
            "entry is gone"
        );
        let m = c.metrics();
        assert_eq!(m.result.hits, 1);
        assert_eq!(m.result.invalidations, 1);
    }

    #[test]
    fn invalidate_term_purges_all_affected_entries() {
        let mut c = cache();
        c.store_shard(&shard("honey", 3, 4), t0());
        c.store_result(
            &result_key(&["honey".into()]),
            vec![doc("a", 1)],
            vec![("honey".into(), 3)],
            t0(),
        );
        c.store_result(
            &result_key(&["honey".into(), "bees".into()]),
            vec![doc("a", 1)],
            vec![("honey".into(), 3), ("bees".into(), 1)],
            t0(),
        );
        c.store_result(
            &result_key(&["unrelated".into()]),
            vec![doc("b", 1)],
            vec![("unrelated".into(), 1)],
            t0(),
        );
        let dropped = c.invalidate_term("honey");
        assert_eq!(dropped, 3, "shard + two result entries");
        assert_eq!(c.tier_sizes().0, 1, "unrelated result survives");
        assert!(matches!(
            c.lookup_shard("honey", t0(), 3),
            ShardLookup::Miss
        ));
        // The unrelated entry still serves.
        assert!(c
            .lookup_result(&result_key(&["unrelated".into()]), t0(), |_| 1)
            .is_some());
    }

    #[test]
    fn shard_tier_validates_versions() {
        let mut c = cache();
        c.store_shard(&shard("nectar", 4, 3), t0());
        assert!(matches!(
            c.lookup_shard("nectar", t0(), 4),
            ShardLookup::Hit(s) if s.version == 4
        ));
        // Version bumped by a republish: the cached shard must not serve.
        assert_eq!(c.lookup_shard("nectar", t0(), 5), ShardLookup::Miss);
        assert_eq!(c.metrics().shard.invalidations, 1);
    }

    #[test]
    fn negative_tier_remembers_absent_terms_until_they_exist() {
        let mut c = cache();
        c.store_shard(&ShardEntry::empty("ghost"), t0());
        assert_eq!(c.lookup_shard("ghost", t0(), 0), ShardLookup::Negative);
        // The term gets written (version 1): the negative entry dies and the
        // path to the DHT re-opens.
        assert_eq!(c.lookup_shard("ghost", t0(), 1), ShardLookup::Miss);
        assert_eq!(
            c.lookup_shard("ghost", t0(), 0),
            ShardLookup::Miss,
            "purged"
        );
    }

    #[test]
    fn negative_entries_expire_by_ttl() {
        let mut c = cache();
        let ttl = c.config().negative_ttl;
        c.store_shard(&ShardEntry::empty("brief"), t0());
        assert_eq!(c.lookup_shard("brief", t0(), 0), ShardLookup::Negative);
        let later = t0() + ttl;
        assert_eq!(c.lookup_shard("brief", later, 0), ShardLookup::Miss);
        assert_eq!(c.metrics().negative.expirations, 1);
    }

    #[test]
    fn result_entries_expire_by_ttl() {
        let mut c = cache();
        let key = result_key(&["old".into()]);
        c.store_result(&key, vec![doc("a", 1)], vec![("old".into(), 1)], t0());
        let ttl = c.config().result_ttl;
        let just_before = t0() + SimDuration(ttl.0 - 1);
        assert!(c.lookup_result(&key, just_before, |_| 1).is_some());
        assert!(c.lookup_result(&key, t0() + ttl, |_| 1).is_none());
        assert_eq!(c.metrics().result.expirations, 1);
    }

    #[test]
    fn stats_record_is_version_guarded() {
        let mut c = cache();
        assert!(c.lookup_stats(1).is_none());
        c.store_stats(
            IndexStats {
                num_docs: 10,
                total_len: 800,
                version: 1,
            },
            1,
        );
        assert_eq!(c.lookup_stats(1).unwrap().stats.num_docs, 10);
        assert!(c.lookup_stats(2).is_none(), "stale stats must not serve");
    }

    #[test]
    fn reverse_index_is_pruned_when_entries_die_by_eviction_or_ttl() {
        let mut config = CacheConfig::small();
        config.result_capacity_bytes = 512;
        config.policy = crate::EvictionPolicy::Lru;
        let mut c = QueryCache::new(config);
        // Far more distinct queries than the byte budget can hold: the
        // reverse index must track only the survivors, not every query ever.
        for i in 0..200 {
            let term = format!("term{i}");
            c.store_result(&term, vec![doc("page/x", 1)], vec![(term.clone(), 1)], t0());
        }
        let (live, _, _) = c.tier_sizes();
        assert!(live < 200, "budget must have evicted most entries");
        assert_eq!(
            c.reverse_index_terms(),
            live,
            "reverse index must shrink with evictions"
        );

        // TTL expiry prunes too: expire everything and look the keys up.
        let later = t0() + c.config().result_ttl;
        for i in 0..200 {
            let _ = c.lookup_result(&format!("term{i}"), later, |_| 1);
        }
        assert_eq!(c.tier_sizes().0, 0);
        assert_eq!(
            c.reverse_index_terms(),
            0,
            "index empty once entries expire"
        );
    }

    #[test]
    fn byte_budget_bounds_shard_tier() {
        let mut config = CacheConfig::small();
        config.shard_capacity_bytes = 600;
        config.policy = crate::EvictionPolicy::Lru;
        let mut c = QueryCache::new(config);
        for i in 0..50 {
            c.store_shard(&shard(&format!("term{i}"), 1, 5), t0());
        }
        let m = c.metrics();
        assert!(m.shard.evictions > 0, "budget must force evictions");
        let (_, shards, _) = c.tier_sizes();
        assert!(shards < 50);
    }
}
