//! The three-tier query-serving cache used by the QueenBee frontend.

use crate::config::CacheConfig;
use crate::metrics::CacheMetrics;
use crate::tier::CacheTier;
use qb_common::{varint, QbError, QbResult, SimDuration, SimInstant};
use qb_index::{IndexStats, ScoredDoc, ShardEntry};
use std::collections::{BTreeSet, HashMap};

/// A cached, fully scored result list plus everything needed to prove it is
/// still current.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// Ranked results as served.
    pub results: Vec<ScoredDoc>,
    /// Shard version of every query term at fill time (terms sorted). The
    /// entry is only served while each term's current version still matches.
    pub term_versions: Vec<(String, u64)>,
}

/// A cached copy of the global statistics record.
#[derive(Debug, Clone, Copy)]
pub struct CachedStats {
    /// The statistics as read from the DHT.
    pub stats: IndexStats,
}

/// Outcome of a shard-tier lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardLookup {
    /// The term's shard was cached and current.
    Hit(ShardEntry),
    /// The term is cached as proven-absent; skip the DHT entirely.
    Negative,
    /// Nothing cached; fetch through the DHT.
    Miss,
}

/// Outcome of a staleness-bounded shard lookup ([`QueryCache::lookup_shard_bounded`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundedShardLookup {
    /// The term's shard was cached and current.
    Hit(ShardEntry),
    /// The cached shard's version has been superseded, but its age is within
    /// the caller's staleness bound: served without a DHT trip. `age` is how
    /// long ago the copy was stored.
    Stale {
        /// The cached (superseded) shard.
        shard: ShardEntry,
        /// Time since the copy was stored.
        age: SimDuration,
    },
    /// The term is cached as proven-absent; skip the DHT entirely.
    Negative,
    /// Nothing servable; fetch through the DHT.
    Miss,
}

/// Outcome of admitting a shard received from another frontend (gossip fill
/// or warm-start import).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteAdmit {
    /// The shard was newer than anything cached or known; it is now cached.
    Accepted,
    /// The shard's version lags a version this cache has already observed —
    /// a stale copy must never replace a fresher one.
    Stale,
    /// An equal-or-newer copy was already cached; nothing to do.
    Duplicate,
    /// The eviction/admission policy refused to store it (tier pressure).
    Refused,
}

/// Per-term republish-rate observations feeding the adaptive TTL policy.
/// The interval estimate is an EWMA so a burst of edits shortens the TTL
/// quickly while a long quiet spell slowly relaxes it back.
#[derive(Debug, Clone, Copy)]
struct RepublishTracker {
    last: SimInstant,
    ewma_interval_us: f64,
    observations: u32,
}

impl RepublishTracker {
    fn observe(&mut self, now: SimInstant) {
        // A term appearing in several pages of one indexing batch is
        // invalidated once per page at the same simulated instant; that is
        // one republish event, not a zero-interval storm (which would pin
        // the EWMA — and thus the TTL — to the floor forever).
        if self.observations > 0 && now == self.last {
            return;
        }
        if self.observations > 0 {
            let interval = now.since(self.last).as_micros() as f64;
            self.ewma_interval_us = if self.observations == 1 {
                interval
            } else {
                0.5 * self.ewma_interval_us + 0.5 * interval
            };
        }
        self.last = now;
        self.observations = self.observations.saturating_add(1);
    }

    fn interval_estimate(&self) -> Option<SimDuration> {
        (self.observations >= 2).then(|| SimDuration::from_micros(self.ewma_interval_us as u64))
    }
}

/// Normalize an analyzed term list into the result-cache key: terms sorted
/// and joined, so `"peer decentralized"` and `"decentralized peer"` share an
/// entry (scoring is order-independent).
pub fn result_key(terms: &[String]) -> String {
    let mut sorted: Vec<&str> = terms.iter().map(|s| s.as_str()).collect();
    sorted.sort_unstable();
    sorted.join(" ")
}

fn scored_doc_bytes(d: &ScoredDoc) -> usize {
    // doc_id + score + version + creator + the name's heap bytes.
    8 + 8 + 8 + 8 + d.name.len()
}

fn result_bytes(key: &str, r: &CachedResult) -> usize {
    key.len()
        + r.results.iter().map(scored_doc_bytes).sum::<usize>()
        + r.term_versions
            .iter()
            .map(|(t, _)| t.len() + 8)
            .sum::<usize>()
        + 48
}

fn shard_bytes(s: &ShardEntry) -> usize {
    s.term.len()
        + 8
        + s.postings
            .iter()
            .map(|p| 8 + 4 + 4 + 8 + 8 + p.name.len())
            .sum::<usize>()
        + 32
}

/// The multi-tier cache. All methods take the current simulated time; the
/// cache never reads a wall clock.
#[derive(Debug)]
pub struct QueryCache {
    config: CacheConfig,
    results: CacheTier<CachedResult>,
    shards: CacheTier<ShardEntry>,
    /// Negative entries store the shard version they were proven absent at
    /// (always 0: absent terms have never been written).
    negatives: CacheTier<()>,
    stats: Option<(CachedStats, u64)>,
    /// term -> result-cache keys containing it, for publish-path
    /// invalidation in O(affected entries).
    term_to_queries: HashMap<String, BTreeSet<String>>,
    /// term -> republish-rate observations for the adaptive TTL policy.
    /// Bounded by the number of terms ever republished while this cache was
    /// alive (terms only enter through publish-path invalidation).
    republish: HashMap<String, RepublishTracker>,
}

impl QueryCache {
    /// Build a cache from a validated configuration.
    pub fn new(config: CacheConfig) -> QueryCache {
        // The result tier reports every removal so the term reverse index
        // can be pruned no matter how an entry dies (eviction, TTL,
        // invalidation, replacement).
        let mut results = CacheTier::new(
            config.result_capacity_bytes,
            config.result_ttl,
            config.policy,
        );
        results.set_track_removals(true);
        QueryCache {
            results,
            shards: CacheTier::new(config.shard_capacity_bytes, config.shard_ttl, config.policy),
            negatives: CacheTier::new(
                config.negative_capacity_bytes,
                config.negative_ttl,
                config.policy,
            ),
            stats: None,
            term_to_queries: HashMap::new(),
            republish: HashMap::new(),
            config,
        }
    }

    /// The configuration the cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    // ----- result tier -------------------------------------------------------------

    /// Look up a result entry. `current_version` maps a term to its current
    /// shard version; the entry is served only when every recorded term
    /// version still matches (and its TTL has not lapsed).
    pub fn lookup_result(
        &mut self,
        key: &str,
        now: SimInstant,
        mut current_version: impl FnMut(&str) -> u64,
    ) -> Option<CachedResult> {
        let entry = match self.results.get(key, now, None) {
            Some(e) => e.clone(),
            None => {
                // The lookup may have expired the entry; drop its index rows.
                self.prune_result_index();
                return None;
            }
        };
        let stale = entry
            .term_versions
            .iter()
            .any(|(term, v)| current_version(term) != *v);
        if stale {
            // The tier counted a hit; correct it to an invalidation-miss.
            self.results.metrics.hits -= 1;
            self.results.metrics.misses += 1;
            self.results.invalidate(key);
            self.prune_result_index();
            return None;
        }
        Some(entry)
    }

    /// Store a result entry computed from the given per-term shard
    /// versions. Returns whether the entry was admitted.
    pub fn store_result(
        &mut self,
        key: &str,
        results: Vec<ScoredDoc>,
        term_versions: Vec<(String, u64)>,
        now: SimInstant,
    ) -> bool {
        let entry = CachedResult {
            results,
            term_versions,
        };
        let bytes = result_bytes(key, &entry);
        let terms: Vec<String> = entry.term_versions.iter().map(|(t, _)| t.clone()).collect();
        let admitted = self.results.insert(key, entry, bytes, 0, now);
        // Unindex whatever the insert displaced (evicted victims, or the
        // replaced previous entry for this key) *before* indexing the new
        // entry, so replacement cannot strip the fresh mappings.
        self.prune_result_index();
        if admitted {
            for term in terms {
                self.term_to_queries
                    .entry(term)
                    .or_default()
                    .insert(key.to_string());
            }
        }
        admitted
    }

    /// Admit a fully *scored result list* computed by someone else — another
    /// frontend (SwarmSearch-style result sharing over gossip) or a window
    /// memo. The entry's per-term version tags are checked against
    /// `known_version`, the receiver's highest observed shard version per
    /// term: a list computed from any superseded shard is rejected as
    /// [`RemoteAdmit::Stale`], so shared results obey exactly the version
    /// guard the shard tier enforces for fills. A resident entry computed
    /// from equal-or-newer versions on every term reports
    /// [`RemoteAdmit::Duplicate`] and stays.
    pub fn store_remote_result(
        &mut self,
        key: &str,
        results: Vec<ScoredDoc>,
        term_versions: Vec<(String, u64)>,
        mut known_version: impl FnMut(&str) -> u64,
        now: SimInstant,
    ) -> RemoteAdmit {
        if term_versions
            .iter()
            .any(|(term, v)| *v < known_version(term))
        {
            return RemoteAdmit::Stale;
        }
        if let Some(resident) = self.results.peek(key) {
            let resident_dominates = term_versions.iter().all(|(term, v)| {
                resident
                    .term_versions
                    .iter()
                    .any(|(rt, rv)| rt == term && rv >= v)
            });
            if resident_dominates {
                return RemoteAdmit::Duplicate;
            }
        }
        if self.store_result(key, results, term_versions, now) {
            RemoteAdmit::Accepted
        } else {
            RemoteAdmit::Refused
        }
    }

    /// Borrow a cached result entry without charging a lookup (the read
    /// side of result sharing: advertising a scored list must not look like
    /// query traffic to the eviction policy).
    pub fn peek_result(&self, key: &str) -> Option<&CachedResult> {
        self.results.peek(key)
    }

    // ----- shard + negative tiers --------------------------------------------------

    /// Look up a term's shard. `current_version` is the engine's monotonic
    /// version counter for the term (0 when the term was never written).
    pub fn lookup_shard(
        &mut self,
        term: &str,
        now: SimInstant,
        current_version: u64,
    ) -> ShardLookup {
        // Negative tier first: absent terms never have shard entries. The
        // negative entry is recorded at version 0 and a republished term
        // bumps the version, so the version check also re-opens the path to
        // the DHT the moment the term starts existing.
        if current_version == 0 {
            if self.negatives.get(term, now, Some(0)).is_some() {
                return ShardLookup::Negative;
            }
        } else {
            // Drop any stale negative entry without charging a lookup.
            if self.negatives.contains(term) {
                self.negatives.invalidate(term);
            }
        }
        match self.shards.get(term, now, Some(current_version)) {
            Some(shard) => ShardLookup::Hit(shard.clone()),
            None => ShardLookup::Miss,
        }
    }

    /// Like [`QueryCache::lookup_shard`], but a version-superseded shard may
    /// still serve when it was stored no more than `max_staleness` ago (the
    /// `MaxStaleness` freshness mode: the caller trades bounded staleness
    /// for skipping the DHT trip). Unlike the strict lookup, a superseded
    /// entry is *not* evicted here — it stays servable for other bounded
    /// readers until a strict read or publish-path invalidation purges it.
    /// TTL expiry still applies: an entry past its lifetime never serves.
    pub fn lookup_shard_bounded(
        &mut self,
        term: &str,
        now: SimInstant,
        current_version: u64,
        max_staleness: SimDuration,
    ) -> BoundedShardLookup {
        if current_version == 0 {
            if self.negatives.get(term, now, Some(0)).is_some() {
                return BoundedShardLookup::Negative;
            }
        } else if self.negatives.contains(term) {
            self.negatives.invalidate(term);
        }
        match self.shards.version_of(term) {
            Some(v) if v == current_version => match self.shards.get(term, now, Some(v)) {
                Some(shard) => BoundedShardLookup::Hit(shard.clone()),
                None => BoundedShardLookup::Miss,
            },
            Some(_) => {
                let age = self
                    .shards
                    .stored_at(term)
                    .map(|t| now.since(t))
                    .unwrap_or(SimDuration::ZERO);
                if age > max_staleness {
                    // Out of bound. Leave the entry resident — a strict read
                    // will purge it — but account the failed lookup.
                    self.shards.note_miss(term);
                    return BoundedShardLookup::Miss;
                }
                // Within bound: serve through the un-versioned read path so
                // recency, TTL expiry and the hit counters all behave as for
                // a normal hit.
                match self.shards.get(term, now, None) {
                    Some(shard) => BoundedShardLookup::Stale {
                        shard: shard.clone(),
                        age,
                    },
                    None => BoundedShardLookup::Miss,
                }
            }
            None => {
                self.shards.note_miss(term);
                BoundedShardLookup::Miss
            }
        }
    }

    /// Store a freshly fetched shard, or — when the shard is empty and was
    /// never written (version 0) — a negative entry for the term. Shard
    /// entries get the term's adaptive TTL when the policy is enabled.
    pub fn store_shard(&mut self, shard: &ShardEntry, now: SimInstant) {
        if shard.version == 0 && shard.postings.is_empty() {
            self.negatives
                .insert(&shard.term, (), shard.term.len() + 16, 0, now);
        } else {
            let bytes = shard_bytes(shard);
            let ttl = self.adaptive_shard_ttl(&shard.term);
            self.shards
                .insert_with_ttl(&shard.term, shard.clone(), bytes, shard.version, now, ttl);
        }
    }

    /// The shard-tier TTL this cache would give `term` right now. With
    /// adaptive TTLs off this is the global `shard_ttl` knob; with it on,
    /// the TTL scales with the term's observed republish rate — half the
    /// estimated republish interval, clamped to the configured floor and
    /// ceiling — and a term never observed to change gets the ceiling
    /// (archival content can be cached far longer than the global default).
    pub fn adaptive_shard_ttl(&self, term: &str) -> SimDuration {
        if !self.config.adaptive_ttl {
            return self.config.shard_ttl;
        }
        match self.republish.get(term).and_then(|t| t.interval_estimate()) {
            // No churn evidence (never written, or written exactly once —
            // the initial index of a term is not a republish): archival,
            // the ceiling applies. The version checks and publish-path
            // invalidation remain the correctness rails; the TTL is only
            // the backstop for invalidations this frontend never observed.
            None => self.config.adaptive_ttl_ceiling,
            Some(interval) => SimDuration::from_micros((interval.as_micros() / 2).clamp(
                self.config.adaptive_ttl_floor.as_micros(),
                self.config.adaptive_ttl_ceiling.as_micros(),
            )),
        }
    }

    /// The term's estimated republish interval, once two republishes have
    /// been observed (diagnostic / experiment output).
    pub fn republish_interval_estimate(&self, term: &str) -> Option<SimDuration> {
        self.republish.get(term).and_then(|t| t.interval_estimate())
    }

    // ----- gossip surface ----------------------------------------------------------

    /// The `max` hottest cached term shards alive at `now` as
    /// `(term, version)` pairs, in descending popularity order — the digest
    /// another frontend needs to decide what to pull. Expired entries are
    /// never advertised. Deterministic (ties broken by recency).
    pub fn shard_digest(&self, max: usize, now: SimInstant) -> Vec<(String, u64)> {
        self.shards.hottest(max, now)
    }

    /// Borrow a cached shard without charging a lookup (fills must not look
    /// like query traffic to the eviction policy).
    pub fn peek_shard(&self, term: &str) -> Option<&ShardEntry> {
        self.shards.peek(term)
    }

    /// The shard tier's holdings generation: any insert, replacement,
    /// eviction, expiry or invalidation bumps it. Artifacts derived from
    /// the holdings — the gossip overlay's bloom-style holdings filter —
    /// stay valid while `(generation, now)` is unchanged, so they can be
    /// cached across exchanges instead of being rebuilt per partner.
    pub fn shard_generation(&self) -> u64 {
        self.shards.generation()
    }

    /// The cached version of a term's shard, when one is resident.
    pub fn cached_shard_version(&self, term: &str) -> Option<u64> {
        self.shards.version_of(term)
    }

    /// Remaining lifetime of a term's cached shard at `now` (`None` when
    /// absent or expired). Gossip fills carry this — not a freshly
    /// recomputed TTL — so relaying a shard between frontends can only
    /// tighten, never restart, its staleness bound.
    pub fn shard_remaining_ttl(&self, term: &str, now: SimInstant) -> Option<SimDuration> {
        self.shards.remaining_ttl(term, now)
    }

    /// Admit a shard received from another frontend. `known_version` is the
    /// highest version of this term the receiving frontend has observed
    /// (from its own DHT fetches, publish events, or earlier gossip): a copy
    /// older than that is rejected as stale, never replacing fresher data.
    /// `sender_ttl` is the *remaining* lifetime of the sender's copy; the
    /// stored entry inherits `min(sender_ttl, our adapted TTL)` so a gossip
    /// fill can only tighten, never extend, the staleness bound — relaying
    /// a shard between frontends never restarts its expiry clock.
    pub fn store_remote_shard(
        &mut self,
        shard: &ShardEntry,
        known_version: u64,
        sender_ttl: SimDuration,
        now: SimInstant,
    ) -> RemoteAdmit {
        if shard.version == 0 || shard.version < known_version {
            return RemoteAdmit::Stale;
        }
        if self
            .shards
            .version_of(&shard.term)
            .is_some_and(|cached| cached >= shard.version)
        {
            return RemoteAdmit::Duplicate;
        }
        // The term provably exists now; a remembered absence is obsolete.
        if self.negatives.contains(&shard.term) {
            self.negatives.invalidate(&shard.term);
        }
        let ttl = SimDuration::from_micros(
            sender_ttl
                .as_micros()
                .min(self.adaptive_shard_ttl(&shard.term).as_micros()),
        );
        let bytes = shard_bytes(shard);
        if self
            .shards
            .insert_with_ttl(&shard.term, shard.clone(), bytes, shard.version, now, ttl)
        {
            RemoteAdmit::Accepted
        } else {
            RemoteAdmit::Refused
        }
    }

    // ----- warm-start persistence --------------------------------------------------

    /// Serialize the `max` hottest cached shards alive at `now` so a
    /// restarted frontend can pre-fill its shard tier from its last
    /// session's working set.
    pub fn export_hot_set(&self, max: usize, now: SimInstant) -> Vec<u8> {
        let digest = self.shard_digest(max, now);
        let mut out = Vec::new();
        varint::encode_u64(digest.len() as u64, &mut out);
        for (term, _) in &digest {
            if let Some(shard) = self.shards.peek(term) {
                let encoded = shard.encode();
                varint::encode_u64(encoded.len() as u64, &mut out);
                out.extend_from_slice(&encoded);
            } else {
                varint::encode_u64(0, &mut out);
            }
        }
        out
    }

    /// Pre-fill the shard tier from a previous session's
    /// [`QueryCache::export_hot_set`] snapshot. Entries enter through the
    /// normal store path (admission policy, adaptive TTLs), and the version
    /// checks on every lookup still purge anything that went stale while the
    /// frontend was down. Returns the number of shards admitted.
    pub fn import_hot_set(&mut self, data: &[u8], now: SimInstant) -> QbResult<usize> {
        let (count, mut pos) = varint::decode_u64(data, 0)?;
        if count > 1_000_000 {
            return Err(QbError::Codec(format!("unreasonable hot-set size {count}")));
        }
        let mut admitted = 0usize;
        for _ in 0..count {
            let (len, p) = varint::decode_u64(data, pos)?;
            let end = p
                .checked_add(len as usize)
                .ok_or_else(|| QbError::Codec("hot-set entry length overflows".into()))?;
            let bytes = data
                .get(p..end)
                .ok_or_else(|| QbError::Codec("truncated hot-set entry".into()))?;
            pos = end;
            if len == 0 {
                continue;
            }
            let shard = ShardEntry::decode(bytes)?;
            if shard.version == 0 {
                continue;
            }
            let before = self.shards.len();
            self.store_shard(&shard, now);
            admitted += (self.shards.len() > before) as usize;
        }
        if pos != data.len() {
            return Err(QbError::Codec("trailing bytes after hot set".into()));
        }
        Ok(admitted)
    }

    // ----- statistics record -------------------------------------------------------

    /// Cached global statistics, validated against the current stats version.
    pub fn lookup_stats(&mut self, current_version: u64) -> Option<CachedStats> {
        match self.stats {
            Some((cached, version)) if version == current_version => Some(cached),
            _ => None,
        }
    }

    /// Store the statistics record under its version.
    pub fn store_stats(&mut self, stats: IndexStats, version: u64) {
        self.stats = Some((CachedStats { stats }, version));
    }

    // ----- publish-path invalidation ----------------------------------------------

    /// A page version touching `term` was (re)indexed: purge the term's
    /// shard and negative entries and every cached result whose query
    /// contains the term, and record the republish observation that drives
    /// the adaptive TTL policy. Returns the number of entries dropped.
    pub fn invalidate_term(&mut self, term: &str, now: SimInstant) -> usize {
        self.republish
            .entry(term.to_string())
            .or_insert(RepublishTracker {
                last: now,
                ewma_interval_us: 0.0,
                observations: 0,
            })
            .observe(now);
        let mut dropped = 0;
        if self.shards.invalidate(term) {
            dropped += 1;
        }
        if self.negatives.invalidate(term) {
            dropped += 1;
        }
        if let Some(keys) = self.term_to_queries.remove(term) {
            for key in keys {
                if self.results.invalidate(&key) {
                    dropped += 1;
                }
                self.unindex_query(&key);
            }
        }
        self.prune_result_index();
        dropped
    }

    /// Number of terms currently tracked by the result reverse index
    /// (diagnostic; bounded by the live result entries' distinct terms).
    pub fn reverse_index_terms(&self) -> usize {
        self.term_to_queries.len()
    }

    /// Unindex every result key the tier removed since the last drain.
    fn prune_result_index(&mut self) {
        for key in self.results.take_removed() {
            self.unindex_query(&key);
        }
    }

    /// Remove a result key from the reverse index (after the entry died).
    fn unindex_query(&mut self, key: &str) {
        let terms: Vec<String> = key.split(' ').map(|s| s.to_string()).collect();
        for term in terms {
            if let Some(set) = self.term_to_queries.get_mut(&term) {
                set.remove(key);
                if set.is_empty() {
                    self.term_to_queries.remove(&term);
                }
            }
        }
    }

    // ----- metrics -----------------------------------------------------------------

    /// Snapshot of every tier's counters.
    pub fn metrics(&self) -> CacheMetrics {
        CacheMetrics {
            result: self.results.metrics,
            shard: self.shards.metrics,
            negative: self.negatives.metrics,
        }
    }

    /// Entry counts per tier `(results, shards, negatives)`.
    pub fn tier_sizes(&self) -> (usize, usize, usize) {
        (self.results.len(), self.shards.len(), self.negatives.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_common::SimDuration;
    use qb_index::ShardPosting;

    fn t0() -> SimInstant {
        SimInstant::ZERO
    }

    fn cache() -> QueryCache {
        QueryCache::new(CacheConfig::small())
    }

    fn shard(term: &str, version: u64, docs: usize) -> ShardEntry {
        let mut s = ShardEntry::empty(term);
        s.version = version;
        for i in 0..docs as u64 {
            s.upsert(ShardPosting {
                doc_id: i * 13 + 1,
                term_freq: 2,
                doc_len: 40,
                name: format!("page/{i}"),
                version: 1,
                creator: 9,
            });
        }
        s
    }

    fn doc(name: &str, version: u64) -> ScoredDoc {
        ScoredDoc {
            doc_id: qb_index::doc_id_for_name(name),
            name: name.to_string(),
            score: 1.0,
            version,
            creator: 7,
        }
    }

    #[test]
    fn result_key_is_order_independent() {
        let a = result_key(&["peer".into(), "decentralized".into()]);
        let b = result_key(&["decentralized".into(), "peer".into()]);
        assert_eq!(a, b);
        assert_eq!(a, "decentralized peer");
    }

    #[test]
    fn result_round_trip_and_version_invalidation() {
        let mut c = cache();
        let key = result_key(&["honey".into(), "bees".into()]);
        c.store_result(
            &key,
            vec![doc("wiki/bees", 1)],
            vec![("honey".into(), 2), ("bees".into(), 5)],
            t0(),
        );
        // Served while versions match.
        let versions = |term: &str| if term == "honey" { 2 } else { 5 };
        let hit = c.lookup_result(&key, t0(), versions).expect("warm hit");
        assert_eq!(hit.results[0].name, "wiki/bees");
        // A bumped term version kills the entry on the next read.
        let bumped = |term: &str| if term == "honey" { 3 } else { 5 };
        assert!(c.lookup_result(&key, t0(), bumped).is_none());
        assert!(
            c.lookup_result(&key, t0(), versions).is_none(),
            "entry is gone"
        );
        let m = c.metrics();
        assert_eq!(m.result.hits, 1);
        assert_eq!(m.result.invalidations, 1);
    }

    #[test]
    fn invalidate_term_purges_all_affected_entries() {
        let mut c = cache();
        c.store_shard(&shard("honey", 3, 4), t0());
        c.store_result(
            &result_key(&["honey".into()]),
            vec![doc("a", 1)],
            vec![("honey".into(), 3)],
            t0(),
        );
        c.store_result(
            &result_key(&["honey".into(), "bees".into()]),
            vec![doc("a", 1)],
            vec![("honey".into(), 3), ("bees".into(), 1)],
            t0(),
        );
        c.store_result(
            &result_key(&["unrelated".into()]),
            vec![doc("b", 1)],
            vec![("unrelated".into(), 1)],
            t0(),
        );
        let dropped = c.invalidate_term("honey", t0());
        assert_eq!(dropped, 3, "shard + two result entries");
        assert_eq!(c.tier_sizes().0, 1, "unrelated result survives");
        assert!(matches!(
            c.lookup_shard("honey", t0(), 3),
            ShardLookup::Miss
        ));
        // The unrelated entry still serves.
        assert!(c
            .lookup_result(&result_key(&["unrelated".into()]), t0(), |_| 1)
            .is_some());
    }

    #[test]
    fn shard_tier_validates_versions() {
        let mut c = cache();
        c.store_shard(&shard("nectar", 4, 3), t0());
        assert!(matches!(
            c.lookup_shard("nectar", t0(), 4),
            ShardLookup::Hit(s) if s.version == 4
        ));
        // Version bumped by a republish: the cached shard must not serve.
        assert_eq!(c.lookup_shard("nectar", t0(), 5), ShardLookup::Miss);
        assert_eq!(c.metrics().shard.invalidations, 1);
    }

    #[test]
    fn bounded_lookup_serves_within_the_staleness_budget() {
        let mut c = cache();
        let bound = SimDuration::from_secs(60);
        c.store_shard(&shard("news", 3, 4), t0());
        // Current version: behaves like a strict hit.
        assert!(matches!(
            c.lookup_shard_bounded("news", t0(), 3, bound),
            BoundedShardLookup::Hit(s) if s.version == 3
        ));
        // Version superseded (a republish this cache never observed): the
        // copy serves while it is young enough, and is NOT evicted.
        let at_30s = t0() + SimDuration::from_secs(30);
        assert!(matches!(
            c.lookup_shard_bounded("news", at_30s, 4, bound),
            BoundedShardLookup::Stale { shard: s, age }
                if s.version == 3 && age == SimDuration::from_secs(30)
        ));
        assert_eq!(c.cached_shard_version("news"), Some(3), "not evicted");
        // Past the bound: a miss, and the entry still survives for a strict
        // read to purge.
        let at_90s = t0() + SimDuration::from_secs(90);
        assert_eq!(
            c.lookup_shard_bounded("news", at_90s, 4, bound),
            BoundedShardLookup::Miss
        );
        assert_eq!(c.cached_shard_version("news"), Some(3));
        // The strict read then invalidates it as usual.
        assert_eq!(c.lookup_shard("news", at_90s, 4), ShardLookup::Miss);
        assert_eq!(c.cached_shard_version("news"), None);
    }

    #[test]
    fn bounded_lookup_respects_ttl_and_negatives() {
        let mut c = cache();
        let bound = SimDuration::from_secs(3_600);
        // Negative entries answer bounded lookups too.
        c.store_shard(&ShardEntry::empty("ghost"), t0());
        assert_eq!(
            c.lookup_shard_bounded("ghost", t0(), 0, bound),
            BoundedShardLookup::Negative
        );
        // A TTL-expired shard never serves, no matter how generous the bound.
        c.store_shard(&shard("old", 2, 3), t0());
        let ttl = c.adaptive_shard_ttl("old");
        assert_eq!(
            c.lookup_shard_bounded("old", t0() + ttl, 3, SimDuration(u64::MAX)),
            BoundedShardLookup::Miss
        );
        // Nothing cached at all: a plain miss.
        assert_eq!(
            c.lookup_shard_bounded("absent", t0(), 5, bound),
            BoundedShardLookup::Miss
        );
    }

    #[test]
    fn negative_tier_remembers_absent_terms_until_they_exist() {
        let mut c = cache();
        c.store_shard(&ShardEntry::empty("ghost"), t0());
        assert_eq!(c.lookup_shard("ghost", t0(), 0), ShardLookup::Negative);
        // The term gets written (version 1): the negative entry dies and the
        // path to the DHT re-opens.
        assert_eq!(c.lookup_shard("ghost", t0(), 1), ShardLookup::Miss);
        assert_eq!(
            c.lookup_shard("ghost", t0(), 0),
            ShardLookup::Miss,
            "purged"
        );
    }

    #[test]
    fn negative_entries_expire_by_ttl() {
        let mut c = cache();
        let ttl = c.config().negative_ttl;
        c.store_shard(&ShardEntry::empty("brief"), t0());
        assert_eq!(c.lookup_shard("brief", t0(), 0), ShardLookup::Negative);
        let later = t0() + ttl;
        assert_eq!(c.lookup_shard("brief", later, 0), ShardLookup::Miss);
        assert_eq!(c.metrics().negative.expirations, 1);
    }

    #[test]
    fn result_entries_expire_by_ttl() {
        let mut c = cache();
        let key = result_key(&["old".into()]);
        c.store_result(&key, vec![doc("a", 1)], vec![("old".into(), 1)], t0());
        let ttl = c.config().result_ttl;
        let just_before = t0() + SimDuration(ttl.0 - 1);
        assert!(c.lookup_result(&key, just_before, |_| 1).is_some());
        assert!(c.lookup_result(&key, t0() + ttl, |_| 1).is_none());
        assert_eq!(c.metrics().result.expirations, 1);
    }

    #[test]
    fn stats_record_is_version_guarded() {
        let mut c = cache();
        assert!(c.lookup_stats(1).is_none());
        c.store_stats(
            IndexStats {
                num_docs: 10,
                total_len: 800,
                version: 1,
            },
            1,
        );
        assert_eq!(c.lookup_stats(1).unwrap().stats.num_docs, 10);
        assert!(c.lookup_stats(2).is_none(), "stale stats must not serve");
    }

    #[test]
    fn reverse_index_is_pruned_when_entries_die_by_eviction_or_ttl() {
        let mut config = CacheConfig::small();
        config.result_capacity_bytes = 512;
        config.policy = crate::EvictionPolicy::Lru;
        let mut c = QueryCache::new(config);
        // Far more distinct queries than the byte budget can hold: the
        // reverse index must track only the survivors, not every query ever.
        for i in 0..200 {
            let term = format!("term{i}");
            c.store_result(&term, vec![doc("page/x", 1)], vec![(term.clone(), 1)], t0());
        }
        let (live, _, _) = c.tier_sizes();
        assert!(live < 200, "budget must have evicted most entries");
        assert_eq!(
            c.reverse_index_terms(),
            live,
            "reverse index must shrink with evictions"
        );

        // TTL expiry prunes too: expire everything and look the keys up.
        let later = t0() + c.config().result_ttl;
        for i in 0..200 {
            let _ = c.lookup_result(&format!("term{i}"), later, |_| 1);
        }
        assert_eq!(c.tier_sizes().0, 0);
        assert_eq!(
            c.reverse_index_terms(),
            0,
            "index empty once entries expire"
        );
    }

    #[test]
    fn adaptive_ttl_scales_with_republish_rate() {
        let mut c = cache();
        assert!(c.config().adaptive_ttl);
        let base = c.config().shard_ttl;
        // Never republished: archival, gets the ceiling (longer than base).
        assert_eq!(
            c.adaptive_shard_ttl("archival"),
            c.config().adaptive_ttl_ceiling
        );
        assert!(c.adaptive_shard_ttl("archival") > base);
        // One observation is the term's initial index, not churn evidence:
        // still archival.
        c.invalidate_term("hot", t0());
        assert_eq!(c.adaptive_shard_ttl("hot"), c.config().adaptive_ttl_ceiling);
        assert!(c.republish_interval_estimate("hot").is_none());
        // Republished every 60s: TTL becomes ~30s, far below the 600s knob.
        let mut now = t0();
        for _ in 0..4 {
            now += SimDuration::from_secs(60);
            c.invalidate_term("hot", now);
        }
        let est = c.republish_interval_estimate("hot").expect("estimate");
        assert_eq!(est, SimDuration::from_secs(60));
        let hot_ttl = c.adaptive_shard_ttl("hot");
        assert_eq!(hot_ttl, SimDuration::from_secs(30));
        assert!(hot_ttl < base);
        // The stored entry actually expires on the adapted schedule.
        let mut s = shard("hot", 9, 2);
        s.version = 9;
        c.store_shard(&s, now);
        assert!(matches!(
            c.lookup_shard("hot", now + SimDuration::from_secs(29), 9),
            ShardLookup::Hit(_)
        ));
        assert!(matches!(
            c.lookup_shard("hot", now + SimDuration::from_secs(30), 9),
            ShardLookup::Miss
        ));
        // Floor clamps a pathologically hot term.
        let mut c2 = cache();
        let mut now2 = t0();
        for _ in 0..5 {
            now2 += SimDuration::from_micros(10);
            c2.invalidate_term("storm", now2);
        }
        assert_eq!(
            c2.adaptive_shard_ttl("storm"),
            c2.config().adaptive_ttl_floor
        );
    }

    #[test]
    fn same_instant_batch_invalidations_count_as_one_republish() {
        let mut c = cache();
        // A term appearing in three pages of one indexing batch fires three
        // invalidations at the same instant: one republish event, so the
        // term still reads as archival, not as a zero-interval hot storm.
        for _ in 0..3 {
            c.invalidate_term("multi", t0());
        }
        assert!(c.republish_interval_estimate("multi").is_none());
        assert_eq!(
            c.adaptive_shard_ttl("multi"),
            c.config().adaptive_ttl_ceiling
        );
        // A later, genuinely spaced republish still produces an estimate.
        c.invalidate_term("multi", t0() + SimDuration::from_secs(40));
        assert_eq!(
            c.republish_interval_estimate("multi"),
            Some(SimDuration::from_secs(40))
        );
    }

    #[test]
    fn adaptive_ttl_off_keeps_the_global_knob() {
        let mut config = CacheConfig::small();
        config.adaptive_ttl = false;
        let mut c = QueryCache::new(config);
        let mut now = t0();
        for _ in 0..4 {
            now += SimDuration::from_secs(10);
            c.invalidate_term("hot", now);
        }
        assert_eq!(c.adaptive_shard_ttl("hot"), c.config().shard_ttl);
        assert_eq!(c.adaptive_shard_ttl("archival"), c.config().shard_ttl);
    }

    #[test]
    fn shard_digest_orders_by_popularity() {
        let mut c = cache();
        for (term, v) in [("cold", 1u64), ("warm", 2), ("hot", 3)] {
            c.store_shard(&shard(term, v, 2), t0());
        }
        for _ in 0..8 {
            let _ = c.lookup_shard("hot", t0(), 3);
        }
        for _ in 0..3 {
            let _ = c.lookup_shard("warm", t0(), 2);
        }
        let digest = c.shard_digest(2, t0());
        assert_eq!(digest.len(), 2);
        assert_eq!(digest[0], ("hot".to_string(), 3));
        assert_eq!(digest[1], ("warm".to_string(), 2));
        assert!(
            c.peek_shard("cold").is_some(),
            "peek sees undigested entries"
        );
        assert_eq!(c.cached_shard_version("hot"), Some(3));
    }

    #[test]
    fn remote_shards_never_regress_versions() {
        let mut c = cache();
        let ttl = SimDuration::from_secs(120);
        // Fresh fill into an empty tier is accepted.
        assert_eq!(
            c.store_remote_shard(&shard("t", 3, 2), 3, ttl, t0()),
            RemoteAdmit::Accepted
        );
        // Same or older version: duplicate, the resident copy stays.
        assert_eq!(
            c.store_remote_shard(&shard("t", 3, 2), 3, ttl, t0()),
            RemoteAdmit::Duplicate
        );
        assert_eq!(
            c.store_remote_shard(&shard("t", 2, 2), 2, ttl, t0()),
            RemoteAdmit::Duplicate
        );
        // Older than the known version (e.g. a publish observed locally).
        assert_eq!(
            c.store_remote_shard(&shard("t", 4, 2), 5, ttl, t0()),
            RemoteAdmit::Stale
        );
        assert_eq!(
            c.cached_shard_version("t"),
            Some(3),
            "stale fill must not disturb the tier"
        );
        // Newer version replaces.
        assert_eq!(
            c.store_remote_shard(&shard("t", 5, 2), 3, ttl, t0()),
            RemoteAdmit::Accepted
        );
        assert_eq!(c.cached_shard_version("t"), Some(5));
        // A version-0 (absent) shard can never travel as a fill.
        assert_eq!(
            c.store_remote_shard(&ShardEntry::empty("t"), 0, ttl, t0()),
            RemoteAdmit::Stale
        );
    }

    #[test]
    fn remote_fill_clears_negative_entries_and_bounds_ttl() {
        let mut c = cache();
        c.store_shard(&ShardEntry::empty("ghost"), t0());
        assert_eq!(c.lookup_shard("ghost", t0(), 0), ShardLookup::Negative);
        // Gossip proves the term exists elsewhere: negative entry dies.
        let sender_ttl = SimDuration::from_secs(45);
        assert_eq!(
            c.store_remote_shard(&shard("ghost", 1, 2), 1, sender_ttl, t0()),
            RemoteAdmit::Accepted
        );
        assert!(matches!(
            c.lookup_shard("ghost", t0(), 1),
            ShardLookup::Hit(_)
        ));
        // TTL inherited from the sender (tighter than our archival ceiling).
        assert!(matches!(
            c.lookup_shard("ghost", t0() + sender_ttl, 1),
            ShardLookup::Miss
        ));
        assert_eq!(c.metrics().shard.expirations, 1);
    }

    #[test]
    fn remote_results_obey_the_version_guard() {
        let mut c = cache();
        let key = result_key(&["honey".into(), "bees".into()]);
        let versions = vec![("honey".to_string(), 3u64), ("bees".to_string(), 1)];
        // The receiver has already observed honey@4: a list computed from
        // honey@3 is provably stale and must be rejected.
        let known_v4 = |term: &str| if term == "honey" { 4 } else { 0 };
        assert_eq!(
            c.store_remote_result(&key, vec![doc("a", 1)], versions.clone(), known_v4, t0()),
            RemoteAdmit::Stale
        );
        assert!(c.peek_result(&key).is_none());
        // Within the receiver's knowledge: accepted and served.
        let known_v3 = |term: &str| if term == "honey" { 3 } else { 0 };
        assert_eq!(
            c.store_remote_result(&key, vec![doc("a", 1)], versions.clone(), known_v3, t0()),
            RemoteAdmit::Accepted
        );
        assert_eq!(c.peek_result(&key).unwrap().results[0].name, "a");
        let current = |term: &str| if term == "honey" { 3 } else { 1 };
        assert!(c.lookup_result(&key, t0(), current).is_some());
        // Re-offering the same (or an older) computation is a duplicate.
        assert_eq!(
            c.store_remote_result(&key, vec![doc("a", 1)], versions.clone(), known_v3, t0()),
            RemoteAdmit::Duplicate
        );
        // A list computed from a *newer* honey shard replaces the entry.
        let newer = vec![("honey".to_string(), 5u64), ("bees".to_string(), 1)];
        assert_eq!(
            c.store_remote_result(&key, vec![doc("b", 2)], newer, known_v3, t0()),
            RemoteAdmit::Accepted
        );
        assert_eq!(c.peek_result(&key).unwrap().results[0].name, "b");
        // Publish-path invalidation kills shared entries like local ones.
        c.invalidate_term("honey", t0());
        assert!(c.peek_result(&key).is_none());
    }

    #[test]
    fn shard_generation_moves_with_the_holdings() {
        let mut c = cache();
        let g0 = c.shard_generation();
        c.store_shard(&shard("honey", 1, 2), t0());
        let g1 = c.shard_generation();
        assert!(g1 > g0);
        // Reads leave the generation alone.
        let _ = c.lookup_shard("honey", t0(), 1);
        let _ = c.shard_digest(8, t0());
        assert_eq!(c.shard_generation(), g1);
        // Invalidation moves it; negative entries live in their own tier.
        c.invalidate_term("honey", t0());
        assert!(c.shard_generation() > g1);
        let g2 = c.shard_generation();
        c.store_shard(&ShardEntry::empty("ghost"), t0());
        assert_eq!(c.shard_generation(), g2, "negative tier is separate");
    }

    #[test]
    fn hot_set_export_import_round_trips() {
        let mut c = cache();
        for i in 0..6 {
            c.store_shard(&shard(&format!("term{i}"), i + 1, 3), t0());
        }
        for _ in 0..5 {
            let _ = c.lookup_shard("term0", t0(), 1);
        }
        let snapshot = c.export_hot_set(4, t0());
        let mut warm = QueryCache::new(CacheConfig::small());
        let admitted = warm.import_hot_set(&snapshot, t0()).expect("import");
        assert_eq!(admitted, 4);
        assert!(matches!(
            warm.lookup_shard("term0", t0(), 1),
            ShardLookup::Hit(_)
        ));
        // Versions travel with the snapshot: a bumped current version still
        // purges the pre-filled entry on first read.
        assert!(matches!(
            warm.lookup_shard("term1", t0(), 99),
            ShardLookup::Miss
        ));
        // Garbage is rejected, not silently imported.
        assert!(warm.import_hot_set(&[0x7f, 0x00], t0()).is_err());
        assert!(QueryCache::new(CacheConfig::small())
            .import_hot_set(&[], t0())
            .is_err());
    }

    #[test]
    fn byte_budget_bounds_shard_tier() {
        let mut config = CacheConfig::small();
        config.shard_capacity_bytes = 600;
        config.policy = crate::EvictionPolicy::Lru;
        let mut c = QueryCache::new(config);
        for i in 0..50 {
            c.store_shard(&shard(&format!("term{i}"), 1, 5), t0());
        }
        let m = c.metrics();
        assert!(m.shard.evictions > 0, "budget must force evictions");
        let (_, shards, _) = c.tier_sizes();
        assert!(shards < 50);
    }
}
