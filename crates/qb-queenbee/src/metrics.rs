//! Metrics used across the experiment suite: freshness, honey distribution
//! and inequality (Gini), plus the query-serving cache counters.

use qb_chain::{AccountId, Blockchain};
use std::collections::HashMap;
use std::fmt;

pub use qb_cache::{CacheMetrics, TierMetrics};

/// Human-readable view over the per-tier cache counters, for experiment
/// tables and example output. Wraps the snapshot returned by
/// [`crate::QueenBee::cache_metrics`].
#[derive(Debug, Clone, Copy)]
pub struct CacheReport(pub CacheMetrics);

impl CacheReport {
    /// `(tier name, counters)` rows in a fixed order.
    pub fn rows(&self) -> [(&'static str, TierMetrics); 3] {
        [
            ("result", self.0.result),
            ("shard", self.0.shard),
            ("negative", self.0.negative),
        ]
    }
}

impl qb_trace::MetricsSource for CacheReport {
    fn metrics_into(&self, out: &mut qb_trace::MetricsSnapshot) {
        for (name, t) in self.rows() {
            out.add_counter(&format!("cache.{name}.hits"), t.hits);
            out.add_counter(&format!("cache.{name}.misses"), t.misses);
            out.add_counter(&format!("cache.{name}.insertions"), t.insertions);
            out.add_counter(&format!("cache.{name}.evictions"), t.evictions);
            out.add_counter(&format!("cache.{name}.expirations"), t.expirations);
            out.add_counter(&format!("cache.{name}.invalidations"), t.invalidations);
            out.add_counter(
                &format!("cache.{name}.admission_rejections"),
                t.admission_rejections,
            );
        }
    }
}

impl fmt::Display for CacheReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, t) in self.rows() {
            writeln!(
                f,
                "{name:>8} tier: {:>5} hits / {:>5} lookups ({:5.1}% hit rate), {} insertions, {} evictions, {} expirations, {} invalidations",
                t.hits,
                t.lookups(),
                100.0 * t.hit_rate(),
                t.insertions,
                t.evictions,
                t.expirations,
                t.invalidations,
            )?;
        }
        Ok(())
    }
}

/// Engine-lifetime counters of the query-serving path: how much
/// intersect/score CPU actually ran, how much the pipelined engine's
/// window memo saved, and how much traffic went through the pipeline.
/// Returned by [`crate::QueenBee::query_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct QueryEngineStats {
    /// Genuine intersect+score computations performed (memo hits excluded).
    pub score_invocations: u64,
    /// Scored lists served from a pipelined run's window memo — duplicate
    /// queries that skipped intersect/score entirely.
    pub window_memo_hits: u64,
    /// Partial intersections reused across prefix-sharing queries.
    pub window_memo_partial_hits: u64,
    /// Windows executed by the pipelined engine.
    pub pipelined_windows: u64,
    /// Queries served through the pipelined engine.
    pub pipelined_queries: u64,
}

impl qb_trace::MetricsSource for QueryEngineStats {
    fn metrics_into(&self, out: &mut qb_trace::MetricsSnapshot) {
        out.add_counter("query.score_invocations", self.score_invocations);
        out.add_counter("query.window_memo_hits", self.window_memo_hits);
        out.add_counter(
            "query.window_memo_partial_hits",
            self.window_memo_partial_hits,
        );
        out.add_counter("query.pipelined_windows", self.pipelined_windows);
        out.add_counter("query.pipelined_queries", self.pipelined_queries);
    }
}

/// Measures how fresh search results are relative to the registry's current
/// page versions — the quantity behind the paper's "crawling inevitably
/// reduces the freshness of the search results".
#[derive(Debug, Clone, Default)]
pub struct FreshnessProbe {
    /// Results whose indexed version equals the currently registered version.
    pub fresh_results: u64,
    /// Results whose indexed version lags the registered version.
    pub stale_results: u64,
    /// Sum of version lag over stale results (how far behind they are).
    pub total_version_lag: u64,
}

impl FreshnessProbe {
    /// Record one result given its indexed version and the registry's current
    /// version of the same page.
    pub fn record(&mut self, indexed_version: u64, current_version: u64) {
        if indexed_version >= current_version {
            self.fresh_results += 1;
        } else {
            self.stale_results += 1;
            self.total_version_lag += current_version - indexed_version;
        }
    }

    /// Fraction of results that were stale (0.0 when nothing was recorded).
    pub fn staleness_rate(&self) -> f64 {
        let total = self.fresh_results + self.stale_results;
        if total == 0 {
            0.0
        } else {
            self.stale_results as f64 / total as f64
        }
    }

    /// Mean version lag over *all* recorded results.
    pub fn mean_version_lag(&self) -> f64 {
        let total = self.fresh_results + self.stale_results;
        if total == 0 {
            0.0
        } else {
            self.total_version_lag as f64 / total as f64
        }
    }

    /// Merge another probe's counts.
    pub fn merge(&mut self, other: &FreshnessProbe) {
        self.fresh_results += other.fresh_results;
        self.stale_results += other.stale_results;
        self.total_version_lag += other.total_version_lag;
    }
}

/// Gini coefficient of a set of values (0 = perfectly equal, → 1 = one actor
/// holds everything). Used to characterise the honey distribution across
/// creators and bees in the incentive-fairness experiment (E5).
pub fn gini_coefficient(values: &[u64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.iter().map(|&v| v as f64).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len() as f64;
    let total: f64 = sorted.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    let mut cumulative = 0.0;
    let mut weighted = 0.0;
    for (i, v) in sorted.iter().enumerate() {
        cumulative += v;
        weighted += cumulative;
        let _ = i;
    }
    // Gini = (n + 1 - 2 * sum_i cum_i / total) / n
    ((n + 1.0) - 2.0 * (weighted / total)) / n
}

/// Honey held by each stakeholder class, used by the incentive experiment.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HoneyByRole {
    /// Content creators' total balance.
    pub creators: u64,
    /// Worker bees' total balance.
    pub bees: u64,
    /// Advertisers' total remaining balance.
    pub advertisers: u64,
    /// Treasury balance.
    pub treasury: u64,
    /// Everything else (escrow accounts, validators, scrapers, ...).
    pub other: u64,
}

impl HoneyByRole {
    /// Compute the split given the role of each known account.
    pub fn from_chain(
        chain: &Blockchain,
        creators: &[AccountId],
        bees: &[AccountId],
        advertisers: &[AccountId],
    ) -> HoneyByRole {
        let mut split = HoneyByRole::default();
        let creator_set: HashMap<u64, ()> = creators.iter().map(|a| (a.0, ())).collect();
        let bee_set: HashMap<u64, ()> = bees.iter().map(|a| (a.0, ())).collect();
        let adv_set: HashMap<u64, ()> = advertisers.iter().map(|a| (a.0, ())).collect();
        for (account, balance) in chain.accounts().balances() {
            if account == qb_chain::TREASURY {
                split.treasury += balance;
            } else if creator_set.contains_key(&account.0) {
                split.creators += balance;
            } else if bee_set.contains_key(&account.0) {
                split.bees += balance;
            } else if adv_set.contains_key(&account.0) {
                split.advertisers += balance;
            } else {
                split.other += balance;
            }
        }
        split
    }

    /// Total honey accounted for.
    pub fn total(&self) -> u64 {
        self.creators + self.bees + self.advertisers + self.treasury + self.other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_chain::ChainConfig;

    #[test]
    fn freshness_probe_accumulates() {
        let mut p = FreshnessProbe::default();
        assert_eq!(p.staleness_rate(), 0.0);
        p.record(3, 3); // fresh
        p.record(1, 3); // stale, lag 2
        p.record(2, 2); // fresh
        p.record(1, 4); // stale, lag 3
        assert_eq!(p.fresh_results, 2);
        assert_eq!(p.stale_results, 2);
        assert!((p.staleness_rate() - 0.5).abs() < 1e-9);
        assert!((p.mean_version_lag() - 1.25).abs() < 1e-9);
        let mut q = FreshnessProbe::default();
        q.record(1, 1);
        p.merge(&q);
        assert_eq!(p.fresh_results, 3);
    }

    #[test]
    fn gini_extremes() {
        assert_eq!(gini_coefficient(&[]), 0.0);
        assert_eq!(gini_coefficient(&[0, 0, 0]), 0.0);
        let equal = gini_coefficient(&[100, 100, 100, 100]);
        assert!(equal.abs() < 1e-9, "equal distribution gini={equal}");
        let unequal = gini_coefficient(&[0, 0, 0, 1000]);
        assert!(unequal > 0.7, "concentrated distribution gini={unequal}");
        // More skew → higher gini.
        assert!(gini_coefficient(&[1, 1, 1, 97]) > gini_coefficient(&[20, 25, 25, 30]));
    }

    #[test]
    fn honey_by_role_partitions_supply() {
        let mut chain = Blockchain::new(ChainConfig::default());
        let creator = AccountId(1_000);
        let bee = AccountId(2_000);
        let adv = AccountId(5_000);
        chain.fund_from_treasury(creator, 100).unwrap();
        chain.fund_from_treasury(bee, 200).unwrap();
        chain.fund_from_treasury(adv, 300).unwrap();
        chain.fund_from_treasury(AccountId(9_999), 50).unwrap();
        let split = HoneyByRole::from_chain(&chain, &[creator], &[bee], &[adv]);
        assert_eq!(split.creators, 100);
        assert_eq!(split.bees, 200);
        assert_eq!(split.advertisers, 300);
        assert_eq!(split.other, 50);
        assert_eq!(split.total(), chain.accounts().total_supply());
    }
}
