//! Worker bees: the peers that maintain the index and compute page ranks.

use qb_chain::AccountId;
use qb_index::{doc_id_for_name, Analyzer, ShardPosting};
use qb_rank::BeeRankBehaviour;

/// How a worker bee behaves.
#[derive(Debug, Clone, PartialEq)]
pub enum BeeBehaviour {
    /// Follows the protocol.
    Honest,
    /// Part of a colluding coalition: when indexing any page, it additionally
    /// injects postings that boost the coalition's target pages, and when
    /// computing rank blocks it inflates the targets' rank (the paper's
    /// *collusion attack*).
    Colluding {
        /// Page names the coalition wants to push to the top.
        boost_pages: Vec<String>,
        /// Term frequency injected for the boosted pages.
        boost_tf: u32,
        /// Rank inflation factor for the boosted pages.
        rank_factor: f64,
    },
    /// Claims rewards without doing the work (submits empty index deltas and
    /// baseline-only rank blocks).
    Lazy,
}

/// One worker bee.
#[derive(Debug, Clone)]
pub struct WorkerBee {
    /// Simulated peer the bee runs on.
    pub peer: u64,
    /// The bee's honey account.
    pub account: AccountId,
    /// Behaviour (honest / colluding / lazy).
    pub behaviour: BeeBehaviour,
    /// Pages indexed by this bee (accepted submissions).
    pub pages_indexed: u64,
    /// Honey-earning tasks accepted.
    pub tasks_rewarded: u64,
    /// Number of times this bee was flagged by verification.
    pub times_flagged: u64,
}

impl WorkerBee {
    /// Create an honest bee.
    pub fn new(peer: u64, account: AccountId) -> WorkerBee {
        WorkerBee {
            peer,
            account,
            behaviour: BeeBehaviour::Honest,
            pages_indexed: 0,
            tasks_rewarded: 0,
            times_flagged: 0,
        }
    }

    /// Is this bee part of a colluding coalition?
    pub fn is_colluding(&self) -> bool {
        matches!(self.behaviour, BeeBehaviour::Colluding { .. })
    }

    /// Produce the index deltas for a freshly published page version: one
    /// [`ShardPosting`] per term of the page. A colluding bee injects extra
    /// postings boosting its target pages into every term it touches; a lazy
    /// bee produces nothing.
    pub fn index_page(
        &self,
        analyzer: &Analyzer,
        page_name: &str,
        page_version: u64,
        creator: u64,
        text: &str,
    ) -> Vec<(String, ShardPosting)> {
        match &self.behaviour {
            BeeBehaviour::Lazy => Vec::new(),
            BeeBehaviour::Honest | BeeBehaviour::Colluding { .. } => {
                let tf = analyzer.term_frequencies(text);
                let doc_len: u32 = tf.iter().map(|(_, f)| *f).sum();
                let doc_id = doc_id_for_name(page_name);
                let mut deltas: Vec<(String, ShardPosting)> = tf
                    .into_iter()
                    .map(|(term, freq)| {
                        (
                            term,
                            ShardPosting {
                                doc_id,
                                term_freq: freq,
                                doc_len,
                                name: page_name.to_string(),
                                version: page_version,
                                creator,
                            },
                        )
                    })
                    .collect();
                if let BeeBehaviour::Colluding {
                    boost_pages,
                    boost_tf,
                    ..
                } = &self.behaviour
                {
                    // Inject the coalition's pages into every term of the page
                    // being indexed, with an absurd term frequency, so they
                    // surface for popular queries.
                    let terms: Vec<String> = deltas.iter().map(|(t, _)| t.clone()).collect();
                    for boost in boost_pages {
                        if boost == page_name {
                            continue;
                        }
                        let boost_doc = doc_id_for_name(boost);
                        for term in &terms {
                            deltas.push((
                                term.clone(),
                                ShardPosting {
                                    doc_id: boost_doc,
                                    term_freq: *boost_tf,
                                    doc_len: 50,
                                    name: boost.clone(),
                                    version: page_version,
                                    creator,
                                },
                            ));
                        }
                    }
                }
                deltas
            }
        }
    }

    /// The bee's behaviour when computing PageRank blocks, mapped onto the
    /// rank crate's behaviour enum. `target_ids` are the graph node ids of
    /// the coalition's boost pages.
    pub fn rank_behaviour(&self, target_ids: &[usize]) -> BeeRankBehaviour {
        match &self.behaviour {
            BeeBehaviour::Honest => BeeRankBehaviour::Honest,
            BeeBehaviour::Lazy => BeeRankBehaviour::Lazy,
            BeeBehaviour::Colluding { rank_factor, .. } => BeeRankBehaviour::Inflate {
                targets: target_ids.to_vec(),
                factor: *rank_factor,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyzer() -> Analyzer {
        Analyzer::new()
    }

    #[test]
    fn honest_bee_indexes_all_terms() {
        let bee = WorkerBee::new(3, AccountId(2_000));
        let deltas = bee.index_page(&analyzer(), "p/a", 1, 7, "honey nectar honey bees");
        assert!(!deltas.is_empty());
        let honey = deltas
            .iter()
            .find(|(t, _)| t == &Analyzer::stem("honey"))
            .unwrap();
        assert_eq!(honey.1.term_freq, 2);
        assert_eq!(honey.1.name, "p/a");
        assert_eq!(honey.1.creator, 7);
        assert!(deltas
            .iter()
            .all(|(_, p)| p.doc_id == doc_id_for_name("p/a")));
    }

    #[test]
    fn lazy_bee_produces_nothing() {
        let mut bee = WorkerBee::new(3, AccountId(2_000));
        bee.behaviour = BeeBehaviour::Lazy;
        assert!(bee
            .index_page(&analyzer(), "p/a", 1, 7, "some text here")
            .is_empty());
    }

    #[test]
    fn colluding_bee_injects_boosted_postings() {
        let mut bee = WorkerBee::new(3, AccountId(2_000));
        bee.behaviour = BeeBehaviour::Colluding {
            boost_pages: vec!["evil/spam".into()],
            boost_tf: 999,
            rank_factor: 50.0,
        };
        assert!(bee.is_colluding());
        let deltas = bee.index_page(&analyzer(), "p/a", 1, 7, "honey nectar");
        let spam: Vec<_> = deltas
            .iter()
            .filter(|(_, p)| p.name == "evil/spam")
            .collect();
        assert!(!spam.is_empty());
        assert!(spam.iter().all(|(_, p)| p.term_freq == 999));
        // Honest postings are still present (the attack hides inside real work).
        assert!(deltas.iter().any(|(_, p)| p.name == "p/a"));
    }

    #[test]
    fn rank_behaviour_mapping() {
        let mut bee = WorkerBee::new(0, AccountId(1));
        assert_eq!(bee.rank_behaviour(&[]), BeeRankBehaviour::Honest);
        bee.behaviour = BeeBehaviour::Lazy;
        assert_eq!(bee.rank_behaviour(&[]), BeeRankBehaviour::Lazy);
        bee.behaviour = BeeBehaviour::Colluding {
            boost_pages: vec!["x".into()],
            boost_tf: 10,
            rank_factor: 9.0,
        };
        assert!(matches!(
            bee.rank_behaviour(&[4]),
            BeeRankBehaviour::Inflate { targets, factor } if targets == vec![4] && factor == 9.0
        ));
    }
}
