//! The attacks the paper anticipates against QueenBee's incentive model.

use qb_dweb::WebPage;

/// Collusion attack: a coalition of worker bees manipulates index and rank
/// data to push its own pages to the top (and thereby capture popularity
/// rewards and ad revenue).
#[derive(Debug, Clone)]
pub struct CollusionAttack {
    /// Fraction of worker bees that are part of the coalition.
    pub colluding_fraction: f64,
    /// Pages the coalition boosts.
    pub boost_pages: Vec<String>,
    /// Injected term frequency for the boosted pages.
    pub boost_tf: u32,
    /// Rank inflation factor for the boosted pages.
    pub rank_factor: f64,
}

impl CollusionAttack {
    /// Create an attack boosting the given pages.
    pub fn new(colluding_fraction: f64, boost_pages: Vec<String>) -> CollusionAttack {
        CollusionAttack {
            colluding_fraction: colluding_fraction.clamp(0.0, 1.0),
            boost_pages,
            boost_tf: 500,
            rank_factor: 50.0,
        }
    }

    /// Number of colluding bees out of `num_bees`.
    pub fn colluders(&self, num_bees: usize) -> usize {
        ((num_bees as f64) * self.colluding_fraction).round() as usize
    }
}

/// Scraper-site attack: an attacker mirrors popular pages under its own
/// names/accounts to capture publish rewards, popularity rewards and ad
/// revenue that should have gone to the original creators.
#[derive(Debug, Clone)]
pub struct ScraperAttack {
    /// Account id of the scraper.
    pub scraper_account: u64,
    /// How many of the most popular pages the scraper mirrors.
    pub num_mirrors: usize,
    /// Fraction of words the scraper rewrites to try to evade duplicate
    /// detection (0.0 = verbatim copy).
    pub obfuscation: f64,
}

impl ScraperAttack {
    /// Create a verbatim-mirroring attack.
    pub fn new(scraper_account: u64, num_mirrors: usize) -> ScraperAttack {
        ScraperAttack {
            scraper_account,
            num_mirrors,
            obfuscation: 0.0,
        }
    }

    /// Produce the mirror of a victim page under a scraper-owned name.
    /// `mirror_index` distinguishes multiple mirrors.
    pub fn mirror_page(
        &self,
        victim: &WebPage,
        mirror_index: usize,
        rng: &mut qb_common::DetRng,
    ) -> WebPage {
        let mut words: Vec<String> = victim
            .body
            .split_whitespace()
            .map(|s| s.to_string())
            .collect();
        if self.obfuscation > 0.0 && !words.is_empty() {
            let rewrites = ((words.len() as f64) * self.obfuscation) as usize;
            for _ in 0..rewrites {
                let pos = rng.gen_index(words.len());
                words[pos] = format!("obfs{}", rng.gen_index(1000));
            }
        }
        WebPage::new(
            format!("scraped/{}/{}", self.scraper_account, mirror_index),
            victim.title.clone(),
            words.join(" "),
            victim.out_links.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_common::DetRng;

    #[test]
    fn collusion_counts_colluders() {
        let a = CollusionAttack::new(0.25, vec!["spam/page".into()]);
        assert_eq!(a.colluders(8), 2);
        assert_eq!(a.colluders(0), 0);
        let full = CollusionAttack::new(2.0, vec![]);
        assert_eq!(full.colluding_fraction, 1.0);
    }

    #[test]
    fn verbatim_mirror_copies_body_under_new_name() {
        let victim = WebPage::new(
            "victim/page",
            "Victim",
            "original popular content here",
            vec![],
        );
        let attack = ScraperAttack::new(666, 3);
        let mirror = attack.mirror_page(&victim, 0, &mut DetRng::new(1));
        assert_eq!(mirror.body, victim.body);
        assert_ne!(mirror.name, victim.name);
        assert!(mirror.name.contains("scraped/666/"));
    }

    #[test]
    fn obfuscated_mirror_rewrites_some_words() {
        let victim = WebPage::new(
            "victim/page",
            "Victim",
            (0..100).map(|i| format!("w{i} ")).collect::<String>(),
            vec![],
        );
        let mut attack = ScraperAttack::new(666, 1);
        attack.obfuscation = 0.3;
        let mirror = attack.mirror_page(&victim, 0, &mut DetRng::new(2));
        assert_ne!(mirror.body, victim.body);
        let shared = mirror
            .body
            .split_whitespace()
            .zip(victim.body.split_whitespace())
            .filter(|(a, b)| a == b)
            .count();
        assert!(shared > 50, "most words should survive obfuscation");
    }
}
