//! QueenBee: the decentralized search engine for the decentralized web.
//!
//! This crate is the paper's primary contribution, assembled from the
//! substrate crates (Figure 1 of the paper):
//!
//! * content lives in content-addressed storage and is registered on the
//!   blockchain through the publish contract (**no crawling**),
//! * **worker bees** observe publish events, tokenize the new page versions,
//!   maintain the DHT-sharded inverted index and compute PageRank, earning
//!   *honey* for every accepted task,
//! * the **frontend** answers keyword queries by fetching the query terms'
//!   index shards, intersecting the posting lists, scoring with BM25 blended
//!   with PageRank, and attaching an advertisement from the on-chain ad
//!   market (pay-per-click, revenue shared between creator, bee and
//!   treasury),
//! * the **incentive engine** pays publish rewards, task bounties and
//!   popularity rewards, and slashes bees caught submitting manipulated data,
//! * the **attack module** implements the two attacks the paper anticipates —
//!   index/rank *collusion* and *scraper sites* — and the corresponding
//!   defenses (verification quorums with majority voting; near-duplicate
//!   detection with MinHash signatures).
//!
//! The entry point is [`QueenBee`]; see `examples/quickstart.rs` for an
//! end-to-end walkthrough and [`architecture`] for the repository-level
//! crate map, the life of a query through the pipelined engine, and the
//! determinism contract.

/// The repository-level architecture tour — crate map, life of a query,
/// determinism contract — rendered from `ARCHITECTURE.md` so its code
/// examples compile and run under `cargo test --doc`.
#[doc = include_str!("../../../ARCHITECTURE.md")]
pub mod architecture {}

pub mod attacks;
pub mod bee;
pub mod config;
pub mod defense;
pub mod engine;
pub mod metrics;
pub mod query;

pub use attacks::{CollusionAttack, ScraperAttack};
pub use bee::{BeeBehaviour, WorkerBee};
pub use config::QueenBeeConfig;
pub use defense::{verify_index_submissions, MinHashSignature, VerificationOutcome};
pub use engine::{PublishReport, QueenBee, SearchOutcome};
pub use metrics::{
    gini_coefficient, CacheMetrics, CacheReport, FreshnessProbe, HoneyByRole, QueryEngineStats,
    TierMetrics,
};
pub use qb_cache::{CacheConfig, EvictionPolicy};
pub use qb_gossip::{
    DigestMode, GossipConfig, GossipFleet, GossipStats, MembershipView, SegmentBootstrapReport,
    ShardFilter, VersionVector,
};
pub use qb_segment::{Segment, SegmentConfig, SegmentRef, SegmentStats};
pub use qb_trace::{MetricsSnapshot, MetricsSource, Trace, Tracer};
pub use query::routing::{hrw_score, hrw_top2};
pub use query::{
    AdmissionConfig, Freshness, LoadReport, PipelineConfig, PipelineDriver, PipelineOutcome,
    PipelineReport, QueryPlan, RoutingPolicy, SearchRequest, SearchResponse, StageCosts,
    TermProvenance, TimedRequest, WindowMemo, WindowSpan, WindowState,
};
