//! Defenses against the attacks the paper anticipates.
//!
//! * **Verification quorums with majority voting** (against the collusion
//!   attack on index data): each publish event is indexed independently by a
//!   quorum of bees; only postings submitted by a strict majority are
//!   accepted, and any bee whose submission differs from the accepted set is
//!   flagged (and slashed by the engine).
//! * **MinHash near-duplicate detection** (against the scraper-site attack):
//!   at publish time the page body's MinHash signature is compared against
//!   previously registered pages owned by other creators; mirrors above the
//!   similarity threshold are rejected and earn nothing.

use qb_common::Hash256;
use qb_index::ShardPosting;
use std::collections::{BTreeMap, BTreeSet};

/// Outcome of verifying a quorum of index submissions for one publish event.
#[derive(Debug, Clone)]
pub struct VerificationOutcome {
    /// Postings accepted by majority vote, keyed by term.
    pub accepted: Vec<(String, ShardPosting)>,
    /// Indices (into the submission vector) of bees whose submissions
    /// deviated from the accepted set.
    pub flagged: Vec<usize>,
}

fn posting_key(term: &str, p: &ShardPosting) -> (String, u64, u32) {
    (term.to_string(), p.doc_id, p.term_freq)
}

/// Majority-vote verification of index submissions.
///
/// `submissions[i]` is the delta set produced by the i-th bee assigned to the
/// event. A posting is accepted when more than half of the submissions
/// contain an identical `(term, doc, tf)` entry. A bee is flagged when it
/// submitted a non-accepted posting or omitted an accepted one.
pub fn verify_index_submissions(
    submissions: &[Vec<(String, ShardPosting)>],
) -> VerificationOutcome {
    let q = submissions.len();
    if q == 0 {
        return VerificationOutcome {
            accepted: Vec::new(),
            flagged: Vec::new(),
        };
    }
    if q == 1 {
        // No redundancy, nothing to compare against: accept as-is.
        return VerificationOutcome {
            accepted: submissions[0].clone(),
            flagged: Vec::new(),
        };
    }
    let majority = q / 2 + 1;
    // Count identical postings across submissions.
    let mut counts: BTreeMap<(String, u64, u32), usize> = BTreeMap::new();
    let mut representative: BTreeMap<(String, u64, u32), (String, ShardPosting)> = BTreeMap::new();
    for submission in submissions {
        let mut seen: BTreeSet<(String, u64, u32)> = BTreeSet::new();
        for (term, posting) in submission {
            let key = posting_key(term, posting);
            if seen.insert(key.clone()) {
                *counts.entry(key.clone()).or_insert(0) += 1;
                representative
                    .entry(key)
                    .or_insert_with(|| (term.clone(), posting.clone()));
            }
        }
    }
    let accepted_keys: BTreeSet<(String, u64, u32)> = counts
        .iter()
        .filter(|(_, &c)| c >= majority)
        .map(|(k, _)| k.clone())
        .collect();
    let accepted: Vec<(String, ShardPosting)> = accepted_keys
        .iter()
        .map(|k| representative[k].clone())
        .collect();
    let mut flagged = Vec::new();
    for (i, submission) in submissions.iter().enumerate() {
        let keys: BTreeSet<(String, u64, u32)> =
            submission.iter().map(|(t, p)| posting_key(t, p)).collect();
        let extraneous = keys.difference(&accepted_keys).next().is_some();
        let missing = accepted_keys.difference(&keys).next().is_some();
        if extraneous || missing {
            flagged.push(i);
        }
    }
    VerificationOutcome { accepted, flagged }
}

/// Number of hash functions in a MinHash signature.
pub const MINHASH_HASHES: usize = 64;

/// MinHash signature of a page body, used for near-duplicate detection.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MinHashSignature {
    values: Vec<u64>,
}

impl MinHashSignature {
    /// Compute the signature of a text using 4-word shingles.
    pub fn of_text(text: &str) -> MinHashSignature {
        let words: Vec<&str> = text.split_whitespace().collect();
        let mut shingle_hashes: Vec<u64> = Vec::new();
        if words.len() < 4 {
            let h = Hash256::digest(text.as_bytes());
            shingle_hashes.push(u64::from_be_bytes(h.as_bytes()[..8].try_into().unwrap()));
        } else {
            for w in words.windows(4) {
                let shingle = w.join(" ");
                let h = Hash256::digest(shingle.as_bytes());
                shingle_hashes.push(u64::from_be_bytes(h.as_bytes()[..8].try_into().unwrap()));
            }
        }
        // MinHash with MINHASH_HASHES different linear permutations.
        let mut values = vec![u64::MAX; MINHASH_HASHES];
        for (i, value) in values.iter_mut().enumerate() {
            let a = 0x9E3779B97F4A7C15u64.wrapping_mul(2 * i as u64 + 1);
            let b = 0xD1B54A32D192ED03u64.wrapping_mul(i as u64 + 1);
            for &s in &shingle_hashes {
                let permuted = s.wrapping_mul(a).wrapping_add(b);
                if permuted < *value {
                    *value = permuted;
                }
            }
        }
        MinHashSignature { values }
    }

    /// Estimated Jaccard similarity with another signature.
    pub fn similarity(&self, other: &MinHashSignature) -> f64 {
        let matches = self
            .values
            .iter()
            .zip(&other.values)
            .filter(|(a, b)| a == b)
            .count();
        matches as f64 / self.values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_index::doc_id_for_name;

    fn posting(name: &str, tf: u32) -> ShardPosting {
        ShardPosting {
            doc_id: doc_id_for_name(name),
            term_freq: tf,
            doc_len: 10,
            name: name.to_string(),
            version: 1,
            creator: 1,
        }
    }

    fn honest_submission() -> Vec<(String, ShardPosting)> {
        vec![
            ("honey".to_string(), posting("p/a", 2)),
            ("bee".to_string(), posting("p/a", 1)),
        ]
    }

    #[test]
    fn unanimous_submissions_are_all_accepted() {
        let subs = vec![
            honest_submission(),
            honest_submission(),
            honest_submission(),
        ];
        let out = verify_index_submissions(&subs);
        assert_eq!(out.accepted.len(), 2);
        assert!(out.flagged.is_empty());
    }

    #[test]
    fn minority_injection_is_rejected_and_flagged() {
        let mut evil = honest_submission();
        evil.push(("honey".to_string(), posting("evil/spam", 999)));
        let subs = vec![honest_submission(), evil, honest_submission()];
        let out = verify_index_submissions(&subs);
        assert_eq!(
            out.accepted.len(),
            2,
            "the injected posting is not accepted"
        );
        assert_eq!(out.flagged, vec![1]);
    }

    #[test]
    fn majority_collusion_defeats_small_quorum() {
        let mut evil = honest_submission();
        evil.push(("honey".to_string(), posting("evil/spam", 999)));
        let subs = vec![evil.clone(), evil, honest_submission()];
        let out = verify_index_submissions(&subs);
        assert!(out.accepted.iter().any(|(_, p)| p.name == "evil/spam"));
        assert_eq!(out.flagged, vec![2], "the honest minority looks deviant");
    }

    #[test]
    fn lazy_bee_is_flagged_for_missing_postings() {
        let subs = vec![honest_submission(), Vec::new(), honest_submission()];
        let out = verify_index_submissions(&subs);
        assert_eq!(out.accepted.len(), 2);
        assert_eq!(out.flagged, vec![1]);
    }

    #[test]
    fn single_submission_is_accepted_unverified() {
        let out = verify_index_submissions(&[honest_submission()]);
        assert_eq!(out.accepted.len(), 2);
        assert!(out.flagged.is_empty());
        let empty = verify_index_submissions(&[]);
        assert!(empty.accepted.is_empty());
    }

    #[test]
    fn minhash_identical_text_is_fully_similar() {
        let a =
            MinHashSignature::of_text("the decentralized web needs a decentralized search engine");
        let b =
            MinHashSignature::of_text("the decentralized web needs a decentralized search engine");
        assert_eq!(a.similarity(&b), 1.0);
    }

    #[test]
    fn minhash_mirror_with_small_edits_is_detected() {
        let original: String = (0..200).map(|i| format!("word{} ", i % 37)).collect();
        let mut mirrored = original.clone();
        mirrored.push_str(" tiny addition at the end");
        let a = MinHashSignature::of_text(&original);
        let b = MinHashSignature::of_text(&mirrored);
        assert!(a.similarity(&b) > 0.8, "similarity = {}", a.similarity(&b));
    }

    #[test]
    fn minhash_unrelated_text_is_dissimilar() {
        let a = MinHashSignature::of_text(
            &(0..200).map(|i| format!("alpha{} ", i)).collect::<String>(),
        );
        let b =
            MinHashSignature::of_text(&(0..200).map(|i| format!("beta{} ", i)).collect::<String>());
        assert!(a.similarity(&b) < 0.2, "similarity = {}", a.similarity(&b));
    }

    #[test]
    fn minhash_handles_short_text() {
        let a = MinHashSignature::of_text("tiny");
        let b = MinHashSignature::of_text("tiny");
        assert_eq!(a.similarity(&b), 1.0);
        let c = MinHashSignature::of_text("different");
        assert!(a.similarity(&c) < 1.0);
    }
}
