//! The QueenBee engine: orchestration of publish, indexing, ranking, search,
//! ads and incentives over the simulated DWeb.

use crate::attacks::{CollusionAttack, ScraperAttack};
use crate::bee::{BeeBehaviour, WorkerBee};
use crate::config::QueenBeeConfig;
use crate::defense::{verify_index_submissions, MinHashSignature};
use crate::metrics::{FreshnessProbe, HoneyByRole, QueryEngineStats};
use crate::query::admission::{IngressQueue, LoadReport, TimedRequest};
use crate::query::executor::{intersect_and_score, FetchSet, FetchedShard, WindowMemo};
use crate::query::pipeline::{PipelineConfig, PipelineDriver, PipelineOutcome};
use crate::query::plan::{plan_request, QueryPlan, StatsPlan, TermPlan};
use crate::query::request::{Freshness, RoutingPolicy, SearchRequest};
use crate::query::response::{paginate, SearchResponse, StageCosts, TermProvenance};
use qb_cache::{CacheMetrics, QueryCache, ShardLookup};
use qb_chain::{AccountId, AdId, Blockchain, Call, Event};
use qb_common::{DhtKey, Hash256, QbError, QbResult, SimDuration, SimInstant};
use qb_dht::DhtNetwork;
use qb_dweb::{fetch_page_by_cid, publish_page, WebPage};
use qb_gossip::{GossipFleet, GossipStats};
use qb_index::{Analyzer, DistributedIndex, IndexStats, ScoredDoc, ShardEntry};
use qb_rank::{LinkGraph, RankRoundReport};
use qb_segment::{publish_segment, Segment, SegmentRef, SegmentStats};
use qb_simnet::SimNet;
use qb_storage::{FetchStats, ObjectRef, StorageNetwork};
use qb_workload::AdSpec;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Outcome of a publish attempt.
#[derive(Debug, Clone)]
pub struct PublishReport {
    /// The page name.
    pub name: String,
    /// Whether the publish was accepted (false when rejected as a duplicate).
    pub accepted: bool,
    /// Why the publish was rejected, when it was.
    pub reject_reason: Option<String>,
    /// Content reference when accepted.
    pub object: Option<ObjectRef>,
    /// Storage/replication cost of the accepted publish.
    pub stats: FetchStats,
}

/// Outcome of one search request at the frontend.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The raw query string.
    pub query: String,
    /// Ranked results (best first).
    pub results: Vec<ScoredDoc>,
    /// Ad displayed next to the results, if any campaign matched.
    pub ad: Option<AdId>,
    /// End-to-end latency experienced by the user.
    pub latency: SimDuration,
    /// RPC attempts issued to answer the query.
    pub messages: u64,
    /// Number of term shards fetched through the DHT (cache hits excluded).
    pub shards_fetched: usize,
    /// Worker bee credited for serving the index (receives the ad share).
    pub served_by_bee: AccountId,
    /// True when the whole response came from the result cache.
    pub result_cache_hit: bool,
    /// Query terms whose shard came from the shard cache.
    pub shard_cache_hits: usize,
    /// Query terms answered by the negative cache (proven absent, no DHT
    /// lookup issued).
    pub negative_cache_hits: usize,
}

/// The (at most one) statistics read performed for a whole batch window,
/// shared by every query in the window that missed the stats cache.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SharedStatsRead {
    pub(crate) stats: IndexStats,
    pub(crate) latency: SimDuration,
    pub(crate) messages: u64,
    /// `seq` of the query that triggered (and is charged for) the read.
    pub(crate) charged_to: u64,
}

/// An in-flight statistics read of a pipeline window: the event-driven
/// [`qb_index::StatsReadMachine`] plus the accounting needed to fold its
/// result into a [`SharedStatsRead`] once it completes.
pub(crate) struct PendingStatsRead {
    pub(crate) charged_to: u64,
    pub(crate) span: Option<qb_trace::SpanId>,
    pub(crate) machine: qb_index::StatsReadMachine,
}

/// An in-flight shard read of a pipeline window, keyed like the
/// [`FetchSet`] entry it will become on completion.
pub(crate) struct PendingShardFetch {
    pub(crate) key: (Option<usize>, String),
    pub(crate) charged_to: u64,
    pub(crate) origin_peer: u64,
    pub(crate) span: Option<qb_trace::SpanId>,
    pub(crate) machine: qb_index::ShardReadMachine,
}

/// Group a window's freshly fetched shard keys by serving frontend for
/// batch-aware gossip advertisement — the single definition both the
/// back-to-back (`search_batch`) and pipelined (`score_window`) paths use.
/// Only genuine batch windows (`batch` = the window held ≥ 2 queries)
/// advertise; single-query serving keeps the exact PR 4 protocol.
pub(crate) fn batch_advert_groups(
    fetched: &FetchSet,
    batch: bool,
) -> HashMap<usize, Vec<(String, u64)>> {
    let mut groups: HashMap<usize, Vec<(String, u64)>> = HashMap::new();
    if batch {
        for ((frontend, term), fetch) in fetched {
            if let (Some(f), true) = (frontend, fetch.shard.version > 0) {
                groups
                    .entry(*f)
                    .or_default()
                    .push((term.clone(), fetch.shard.version));
            }
        }
    }
    groups
}

/// The assembled QueenBee deployment (Figure 1 of the paper).
pub struct QueenBee {
    config: QueenBeeConfig,
    /// The simulated network of peer devices.
    pub net: SimNet,
    /// The Kademlia DHT overlay.
    pub dht: DhtNetwork,
    /// Content-addressed decentralized storage.
    pub storage: StorageNetwork,
    /// The blockchain with the QueenBee contracts.
    pub chain: Blockchain,
    dist_index: DistributedIndex,
    analyzer: Analyzer,
    bees: Vec<WorkerBee>,
    event_cursor: usize,
    index_stats: IndexStats,
    /// Highest shard version this engine has written per term. DHT reads can
    /// return a stale local replica; taking the max with this counter keeps
    /// shard versions monotonic so replicas never reject a newer write.
    shard_versions: HashMap<String, u64>,
    indexed_docs: HashMap<String, (u64, u32)>,
    /// Terms each indexed document currently appears under, so re-indexing a
    /// new page version can remove the document from shards of terms it no
    /// longer contains (otherwise dropped terms would keep serving stale
    /// versions of the page forever).
    indexed_terms: HashMap<String, BTreeSet<String>>,
    ranks_by_name: HashMap<String, f64>,
    rank_round: u64,
    signatures: HashMap<String, (u64, MinHashSignature)>,
    known_creators: BTreeSet<AccountId>,
    known_advertisers: BTreeSet<AccountId>,
    query_counter: u64,
    /// The frontend query-serving cache, when enabled in the configuration
    /// (single-frontend mode; `None` while checked out by the search path
    /// or when a fleet is configured instead).
    cache: Option<QueryCache>,
    /// The frontend fleet with per-frontend caches and the cache-gossip
    /// overlay, when `config.gossip.num_frontends > 0`.
    fleet: Option<GossipFleet>,
    /// Shard cache for the indexing (writer) path, present whenever the
    /// query cache is enabled. Kept separate from the frontend cache(s) so
    /// indexing reuse never pre-warms (and thus skews) the serving-side
    /// cold-start behavior the experiments measure.
    writer_cache: Option<QueryCache>,
    /// Shards written since the last artifact publish — the pending
    /// segment a writer compaction folds into the published artifact
    /// (segment compaction enabled only; stays empty otherwise).
    pending_segment: Segment,
    /// Full content of the last published artifact, kept so compaction
    /// merges the pending shards into it instead of re-reading the
    /// distributed index.
    published_segment: Segment,
    /// Pointer to the last published artifact (generation source).
    published_segment_ref: Option<SegmentRef>,
    /// Segment-subsystem counters (publishes, fetches, imports).
    segment_stats: SegmentStats,
    /// The next peer a joining frontend runs on ([`QueenBee::fleet_join`]):
    /// initial frontends occupy the lowest peer ids and bees the highest,
    /// so the ordinary user devices in between host late joiners.
    join_peer_cursor: u64,
    /// Shard reads issued by the indexing path (cache hits + DHT reads).
    writer_shard_reads: u64,
    /// Writer-path shard reads served from cache without touching the DHT.
    writer_shard_cache_hits: u64,
    /// Genuine intersect+score computations across every search served
    /// (window-memo hits excluded — that is the CPU the memo saves).
    score_invocations: u64,
    /// Scored lists served from a pipelined run's window memo.
    window_memo_hits: u64,
    /// Partial intersections reused across prefix-sharing queries.
    window_memo_partial_hits: u64,
    /// Windows executed by the pipelined engine.
    pipelined_windows: u64,
    /// Queries served through the pipelined engine.
    pipelined_queries: u64,
    /// Freshness accounting across every search served.
    pub freshness: FreshnessProbe,
}

impl QueenBee {
    /// Build a QueenBee deployment: the peer network, the DHT overlay, the
    /// storage layer, the blockchain, and the worker bees (which deposit
    /// their stake on-chain immediately).
    pub fn new(config: QueenBeeConfig) -> QbResult<QueenBee> {
        config.validate()?;
        let mut net = SimNet::new(config.num_peers, config.net.clone(), config.seed);
        let dht = DhtNetwork::build(&mut net, config.dht.clone());
        let storage = StorageNetwork::new(config.num_peers, config.storage.clone());
        let mut chain = Blockchain::new(config.chain.clone());

        // Worker bees live on the last `num_bees` peers so that publisher and
        // frontend traffic uses different devices.
        let mut bees = Vec::with_capacity(config.num_bees);
        for i in 0..config.num_bees {
            let peer = (config.num_peers - config.num_bees + i) as u64;
            let account = AccountId(2_000 + i as u64);
            chain.fund_from_treasury(account, config.bee_stake)?;
            chain.submit_call(
                account,
                Call::DepositStake {
                    amount: config.bee_stake,
                },
            );
            bees.push(WorkerBee::new(peer, account));
        }
        chain.seal_block(net.now());
        chain.reward_pool_mut().max_index_claims = config.index_quorum.max(1);

        let dist_index = DistributedIndex {
            inline_threshold: config.shard_inline_threshold,
        };
        Ok(QueenBee {
            analyzer: Analyzer::new(),
            dist_index,
            bees,
            event_cursor: chain.events().len(),
            index_stats: IndexStats::default(),
            shard_versions: HashMap::new(),
            indexed_docs: HashMap::new(),
            indexed_terms: HashMap::new(),
            ranks_by_name: HashMap::new(),
            rank_round: 0,
            signatures: HashMap::new(),
            known_creators: BTreeSet::new(),
            known_advertisers: BTreeSet::new(),
            query_counter: 0,
            cache: (config.cache.enabled && config.gossip.num_frontends == 0)
                .then(|| QueryCache::new(config.cache.clone())),
            fleet: (config.gossip.num_frontends > 0)
                .then(|| GossipFleet::new(config.gossip.clone(), &config.cache, config.seed)),
            writer_cache: config
                .cache
                .enabled
                .then(|| QueryCache::new(config.cache.clone())),
            pending_segment: Segment::new(),
            published_segment: Segment::new(),
            published_segment_ref: None,
            segment_stats: SegmentStats::default(),
            join_peer_cursor: config.gossip.num_frontends as u64,
            writer_shard_reads: 0,
            writer_shard_cache_hits: 0,
            score_invocations: 0,
            window_memo_hits: 0,
            window_memo_partial_hits: 0,
            pipelined_windows: 0,
            pipelined_queries: 0,
            freshness: FreshnessProbe::default(),
            net,
            dht,
            storage,
            chain,
            config,
        })
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &QueenBeeConfig {
        &self.config
    }

    /// Per-tier counters of the query-serving cache, when it is enabled. In
    /// fleet mode this is the aggregate over every frontend's cache.
    pub fn cache_metrics(&self) -> Option<CacheMetrics> {
        if let Some(fleet) = &self.fleet {
            let mut total = CacheMetrics::default();
            for i in 0..fleet.len() {
                total.merge(&fleet.frontend(i).cache().metrics());
            }
            return Some(total);
        }
        self.cache.as_ref().map(|c| c.metrics())
    }

    /// Entry counts per cache tier `(results, shards, negatives)`, when the
    /// cache is enabled (summed over the fleet in fleet mode).
    pub fn cache_tier_sizes(&self) -> Option<(usize, usize, usize)> {
        if let Some(fleet) = &self.fleet {
            let mut total = (0, 0, 0);
            for i in 0..fleet.len() {
                let (r, s, n) = fleet.frontend(i).cache().tier_sizes();
                total = (total.0 + r, total.1 + s, total.2 + n);
            }
            return Some(total);
        }
        self.cache.as_ref().map(|c| c.tier_sizes())
    }

    /// The frontend fleet, when fleet mode is configured.
    pub fn fleet(&self) -> Option<&GossipFleet> {
        self.fleet.as_ref()
    }

    /// Number of frontends (0 outside fleet mode).
    pub fn num_frontends(&self) -> usize {
        self.fleet.as_ref().map(|f| f.len()).unwrap_or(0)
    }

    /// Cumulative gossip counters, when a fleet is configured.
    pub fn gossip_stats(&self) -> Option<GossipStats> {
        self.fleet.as_ref().map(|f| *f.stats())
    }

    /// Switch the engine-wide structured tracer on or off. Tracing is off
    /// by default; while off every span-recording site is a no-op (detail
    /// closures never run) and the simulation is byte-identical to an
    /// untraced run.
    pub fn set_tracing(&mut self, on: bool) {
        self.net.set_tracing(on);
    }

    /// Whether the structured tracer is currently recording.
    pub fn tracing_enabled(&self) -> bool {
        self.net.tracing_enabled()
    }

    /// Drain everything the tracer recorded so far into a
    /// [`qb_trace::Trace`] (span ids restart at 1, so identically-seeded
    /// measurements produce identical traces).
    pub fn take_trace(&mut self) -> qb_trace::Trace {
        self.net.take_trace()
    }

    /// One unified snapshot over the engine's stats surfaces: network
    /// counters, per-tier cache counters, gossip counters and query-engine
    /// counters, all behind [`qb_trace::MetricsSnapshot`]'s named-counter
    /// interface. Load reports are produced per [`QueenBee::serve_open_loop`]
    /// run, so callers fold those in themselves via
    /// [`qb_trace::MetricsSnapshot::collect`].
    pub fn metrics_snapshot(&self) -> qb_trace::MetricsSnapshot {
        let stats = self.net.stats().clone();
        let cache = self.cache_metrics().map(crate::metrics::CacheReport);
        let gossip = self.gossip_stats();
        let query = self.query_stats();
        let mut sources: Vec<&dyn qb_trace::MetricsSource> = vec![&stats, &query];
        if let Some(cache) = &cache {
            sources.push(cache);
        }
        if let Some(gossip) = &gossip {
            sources.push(gossip);
        }
        if self.config.segment.enabled {
            sources.push(&self.segment_stats);
        }
        qb_trace::MetricsSnapshot::collect(&sources)
    }

    /// Per-tier counters of one frontend's private cache.
    pub fn frontend_cache_metrics(&self, frontend: usize) -> Option<CacheMetrics> {
        self.fleet
            .as_ref()
            .filter(|f| frontend < f.len())
            .map(|f| f.frontend(frontend).cache().metrics())
    }

    /// `(reads, cache hits)` of the indexing path's shard reads — the
    /// writer-path cache reuse that spares `process_publish_events` a DHT
    /// round-trip per merged term.
    pub fn writer_cache_stats(&self) -> (u64, u64) {
        (self.writer_shard_reads, self.writer_shard_cache_hits)
    }

    /// A new frontend joins the running fleet on the next free user-device
    /// peer (initial frontends occupy the lowest peer ids and worker bees
    /// the highest; the ordinary devices in between can host late
    /// joiners). The joiner bootstraps its cache by one anti-entropy
    /// exchange with a live neighbour — warming from the fleet instead of
    /// the DHT — and the rest of the fleet learns about it through gossiped
    /// heartbeats. Returns the new frontend's index.
    pub fn fleet_join(&mut self) -> QbResult<usize> {
        let now = self.net.now();
        let peer = self.join_peer_cursor;
        if peer as usize >= self.config.num_peers - self.config.num_bees {
            return Err(QbError::Config(
                "no free peer left to host a new frontend".into(),
            ));
        }
        let Some(fleet) = self.fleet.as_mut() else {
            return Err(QbError::Config(
                "fleet_join needs a frontend fleet (config.gossip.num_frontends > 0)".into(),
            ));
        };
        self.join_peer_cursor += 1;
        fleet.join(&mut self.net, peer, now)
    }

    /// Like [`QueenBee::fleet_join`], but the joiner first tries to
    /// bulk-bootstrap its cache from the fleet's newest published segment
    /// artifact (probing live neighbours for their advertised pointer,
    /// fetching the artifact through storage + DHT, importing it through
    /// the version guard, then one delta catch-up exchange), falling back
    /// to the ordinary gossip bootstrap when no artifact is advertised or
    /// the fetch fails. Returns the frontend index and a report of what
    /// the bootstrap actually did.
    pub fn fleet_join_with_segment(
        &mut self,
    ) -> QbResult<(usize, qb_gossip::SegmentBootstrapReport)> {
        let now = self.net.now();
        let peer = self.join_peer_cursor;
        if peer as usize >= self.config.num_peers - self.config.num_bees {
            return Err(QbError::Config(
                "no free peer left to host a new frontend".into(),
            ));
        }
        let Some(fleet) = self.fleet.as_mut() else {
            return Err(QbError::Config(
                "fleet_join_with_segment needs a frontend fleet (config.gossip.num_frontends > 0)"
                    .into(),
            ));
        };
        self.join_peer_cursor += 1;
        let (idx, report) =
            fleet.join_with_segment(&mut self.net, &mut self.dht, &mut self.storage, peer, now)?;
        if report.used_segment {
            self.segment_stats.segments_fetched += 1;
            self.segment_stats.fetch_bytes += report.fetch_bytes;
            self.segment_stats.fetch_messages += report.fetch_messages;
        }
        self.segment_stats.record_import(&report.imported);
        Ok((idx, report))
    }

    /// Frontend `frontend` leaves the fleet: gracefully (departure notices
    /// let partners drop it immediately) or by crash (the fleet detects the
    /// silence via heartbeats and evicts it). Its slot index stays valid
    /// but routing to it fails until [`QueenBee::fleet_rejoin`].
    pub fn fleet_leave(&mut self, frontend: usize, graceful: bool) -> QbResult<()> {
        let Some(fleet) = self.fleet.as_mut() else {
            return Err(QbError::Config(
                "fleet_leave needs a frontend fleet (config.gossip.num_frontends > 0)".into(),
            ));
        };
        if frontend >= fleet.len() {
            return Err(QbError::Config(format!(
                "frontend {frontend} out of range (fleet has {})",
                fleet.len()
            )));
        }
        if graceful {
            fleet.leave(&mut self.net, frontend);
        } else {
            fleet.crash(&mut self.net, frontend);
        }
        Ok(())
    }

    /// A departed frontend restarts on its old peer with a fresh cache,
    /// warming itself from a live neighbour by anti-entropy (not the DHT);
    /// its bumped heartbeat supersedes every stale view of it.
    pub fn fleet_rejoin(&mut self, frontend: usize) -> QbResult<()> {
        let now = self.net.now();
        let Some(fleet) = self.fleet.as_mut() else {
            return Err(QbError::Config(
                "fleet_rejoin needs a frontend fleet (config.gossip.num_frontends > 0)".into(),
            ));
        };
        if frontend >= fleet.len() {
            return Err(QbError::Config(format!(
                "frontend {frontend} out of range (fleet has {})",
                fleet.len()
            )));
        }
        if fleet.is_active(frontend) {
            return Err(QbError::Config(format!(
                "frontend {frontend} is still active; only departed frontends rejoin"
            )));
        }
        fleet.rejoin(&mut self.net, frontend, now);
        Ok(())
    }

    /// Force one gossip round right now (experiments and tests; normal
    /// operation paces rounds by `GossipConfig::round_interval` as simulated
    /// time advances). `anti_entropy` swaps full digests instead of hot
    /// sets.
    pub fn run_gossip_round(&mut self, anti_entropy: bool) {
        let now = self.net.now();
        if let Some(fleet) = self.fleet.as_mut() {
            fleet.run_round(&mut self.net, now, anti_entropy);
        }
    }

    /// Snapshot the hottest cached shards of the single-mode cache or of
    /// fleet frontend `frontend`, for warm-start persistence across engine
    /// restarts.
    pub fn export_hot_set(&self, frontend: usize, max: usize) -> Option<Vec<u8>> {
        let now = self.net.now();
        if let Some(fleet) = &self.fleet {
            return (frontend < fleet.len()).then(|| fleet.export_hot_set(frontend, max, now));
        }
        self.cache.as_ref().map(|c| c.export_hot_set(max, now))
    }

    /// Pre-fill the shard tier of the single-mode cache or of fleet
    /// frontend `frontend` from a previous session's snapshot. Read-time
    /// version checks still purge anything that went stale while the
    /// frontend was down. Returns the number of shards admitted.
    pub fn import_hot_set(&mut self, frontend: usize, data: &[u8]) -> QbResult<usize> {
        let now = self.net.now();
        if let Some(fleet) = self.fleet.as_mut() {
            return fleet.import_hot_set(frontend, data, now);
        }
        match self.cache.as_mut() {
            Some(c) => c.import_hot_set(data, now),
            None => Err(QbError::Config(
                "no query cache enabled; nothing to warm-start".into(),
            )),
        }
    }

    /// The worker bees.
    pub fn bees(&self) -> &[WorkerBee] {
        &self.bees
    }

    /// Accounts of all worker bees.
    pub fn bee_accounts(&self) -> Vec<AccountId> {
        self.bees.iter().map(|b| b.account).collect()
    }

    /// Accounts of all creators seen so far.
    pub fn creator_accounts(&self) -> Vec<AccountId> {
        self.known_creators.iter().copied().collect()
    }

    /// Accounts of all advertisers registered so far.
    pub fn advertiser_accounts(&self) -> Vec<AccountId> {
        self.known_advertisers.iter().copied().collect()
    }

    /// PageRank of a page name (0 when not ranked yet).
    pub fn rank_of(&self, name: &str) -> f64 {
        self.ranks_by_name.get(name).copied().unwrap_or(0.0)
    }

    /// Change the behaviour of one bee (attack setup).
    pub fn set_bee_behaviour(&mut self, bee_index: usize, behaviour: BeeBehaviour) {
        self.bees[bee_index].behaviour = behaviour;
    }

    /// Turn the first `colluders(n)` bees into the given coalition.
    pub fn apply_collusion(&mut self, attack: &CollusionAttack) {
        let n = attack.colluders(self.bees.len());
        for bee in self.bees.iter_mut().take(n) {
            bee.behaviour = BeeBehaviour::Colluding {
                boost_pages: attack.boost_pages.clone(),
                boost_tf: attack.boost_tf,
                rank_factor: attack.rank_factor,
            };
        }
    }

    /// Advance the simulated clock. Gossip rounds that became due fire
    /// before anything else observes the new time.
    pub fn advance_time(&mut self, d: SimDuration) {
        self.net.advance(d);
        self.run_due_gossip();
    }

    /// Advance the simulated clock to `at` (no-op when `at` is not in the
    /// future). The open-loop admission layer moves the clock to each
    /// dispatch instant with this, so gossip rounds fire on the arrival
    /// timeline rather than in one burst at the end of a replay.
    pub fn advance_time_to(&mut self, at: SimInstant) {
        self.net.advance_to(at);
        self.run_due_gossip();
    }

    /// Run gossip rounds that are due at the current simulated time.
    fn run_due_gossip(&mut self) {
        let now = self.net.now();
        if let Some(fleet) = self.fleet.as_mut() {
            fleet.maybe_run(&mut self.net, now);
        }
    }

    /// Seal the next block on the chain.
    pub fn seal(&mut self) {
        self.chain.seal_block(self.net.now());
    }

    // ----- publish -----------------------------------------------------------------

    /// Publish a page from `peer` on behalf of `creator`. When duplicate
    /// detection is enabled and the body is a near-duplicate of a page owned
    /// by a *different* creator, the publish is rejected (the scraper-site
    /// defense) and nothing is stored or rewarded.
    pub fn publish(
        &mut self,
        peer: u64,
        creator: AccountId,
        page: &WebPage,
    ) -> QbResult<PublishReport> {
        if self.config.duplicate_detection {
            let sig = MinHashSignature::of_text(&page.body);
            for (other_name, (other_creator, other_sig)) in &self.signatures {
                if *other_creator != creator.0
                    && other_name != &page.name
                    && sig.similarity(other_sig) >= self.config.duplicate_threshold
                {
                    return Ok(PublishReport {
                        name: page.name.clone(),
                        accepted: false,
                        reject_reason: Some(format!(
                            "near-duplicate of '{other_name}' owned by account {other_creator}"
                        )),
                        object: None,
                        stats: FetchStats::default(),
                    });
                }
            }
        }
        let outcome = publish_page(
            &mut self.net,
            &mut self.dht,
            &mut self.storage,
            &mut self.chain,
            peer,
            creator,
            page,
        )?;
        self.signatures.insert(
            page.name.clone(),
            (creator.0, MinHashSignature::of_text(&page.body)),
        );
        self.known_creators.insert(creator);
        Ok(PublishReport {
            name: page.name.clone(),
            accepted: true,
            reject_reason: None,
            object: Some(outcome.object),
            stats: outcome.stats,
        })
    }

    /// Run a scraper attack: mirror the `num_mirrors` highest-ranked pages
    /// under scraper-owned names. Returns per-mirror publish reports (some of
    /// which will be rejected when duplicate detection is on).
    pub fn run_scraper_attack(
        &mut self,
        attack: &ScraperAttack,
        victim_pages: &[WebPage],
    ) -> QbResult<Vec<PublishReport>> {
        let mut rng = qb_common::DetRng::new(self.config.seed ^ 0x5C0A);
        let peer = 0u64;
        let mut reports = Vec::new();
        for (i, victim) in victim_pages.iter().take(attack.num_mirrors).enumerate() {
            let mirror = attack.mirror_page(victim, i, &mut rng);
            let report = self.publish(peer, AccountId(attack.scraper_account), &mirror)?;
            reports.push(report);
        }
        self.seal();
        Ok(reports)
    }

    // ----- worker bees: indexing ---------------------------------------------------

    /// Process every publish event that appeared on the chain since the last
    /// call: a quorum of bees independently indexes each new page version,
    /// submissions are verified by majority vote, accepted postings are
    /// merged into the distributed index, honest bees claim their bounties
    /// and deviating bees are slashed. Returns the number of events handled.
    ///
    /// The indexing path reuses the query cache's shard tier under the same
    /// version discipline as the frontend: a term's shard is read through
    /// the cache (sparing the per-merge DHT round-trip the seed paid), and
    /// after the merged shard is written back it is stored under its new
    /// version while results/negatives touching the term are purged.
    pub fn process_publish_events(&mut self) -> QbResult<usize> {
        // The writer path borrows its cache alongside the rest of the
        // engine: check it out for the duration.
        let mut wcache = self.writer_cache.take();
        let result = self.process_publish_events_inner(&mut wcache);
        self.writer_cache = wcache;
        result
    }

    fn process_publish_events_inner(&mut self, wcache: &mut Option<QueryCache>) -> QbResult<usize> {
        let now = self.net.now();
        let events: Vec<Event> = self
            .chain
            .events_since(self.event_cursor)
            .iter()
            .map(|(_, e)| e.clone())
            .collect();
        self.event_cursor = self.chain.events().len();
        let mut handled = 0usize;
        let validator = self
            .config
            .chain
            .validators
            .first()
            .copied()
            .unwrap_or(qb_chain::TREASURY);

        for event in events {
            let Event::PagePublished {
                creator,
                name,
                cid,
                version,
                ..
            } = event
            else {
                continue;
            };
            handled += 1;
            // Assign a quorum of bees, deterministically, rotating per event.
            let quorum = self.config.index_quorum.min(self.bees.len()).max(1);
            let assigned: Vec<usize> = (0..quorum)
                .map(|j| {
                    (handled + self.event_cursor + j * (self.bees.len() / quorum).max(1))
                        % self.bees.len()
                })
                .fold(Vec::new(), |mut acc, b| {
                    if !acc.contains(&b) {
                        acc.push(b);
                    } else {
                        // Collision: take the next free bee.
                        let mut alt = (b + 1) % self.bees.len();
                        while acc.contains(&alt) {
                            alt = (alt + 1) % self.bees.len();
                        }
                        acc.push(alt);
                    }
                    acc
                });

            // The first assigned bee fetches the page content once; in the
            // real system each bee would fetch it, which only multiplies the
            // (already accounted) fetch cost.
            let fetch_peer = self.bees[assigned[0]].peer;
            let page = match fetch_page_by_cid(
                &mut self.net,
                &mut self.dht,
                &mut self.storage,
                fetch_peer,
                cid,
            ) {
                Ok((page, _stats)) => page,
                Err(e) if e.is_availability() => continue,
                Err(e) => return Err(e),
            };
            let text = page.text();

            // Each assigned bee produces its index deltas.
            let submissions: Vec<Vec<(String, qb_index::ShardPosting)>> = assigned
                .iter()
                .map(|&b| self.bees[b].index_page(&self.analyzer, &name, version, creator.0, &text))
                .collect();
            let verdict = verify_index_submissions(&submissions);

            // Slash flagged bees and record the flag.
            for &local_idx in &verdict.flagged {
                let bee_idx = assigned[local_idx];
                self.bees[bee_idx].times_flagged += 1;
                let offender = self.bees[bee_idx].account;
                self.chain.submit_call(
                    validator,
                    Call::SlashStake {
                        offender,
                        amount: self.config.slash_amount,
                    },
                );
            }

            // Merge accepted postings into the distributed index, grouped by term.
            let writer = assigned
                .iter()
                .enumerate()
                .find(|(local, _)| !verdict.flagged.contains(local))
                .map(|(_, &b)| b)
                .unwrap_or(assigned[0]);
            let writer_peer = self.bees[writer].peer;
            // Merge in sorted term order: shard writes consume simulated
            // network randomness, so iteration order must be deterministic
            // for runs to reproduce bit-for-bit.
            let mut by_term: BTreeMap<String, Vec<qb_index::ShardPosting>> = BTreeMap::new();
            for (term, posting) in verdict.accepted {
                by_term.entry(term).or_default().push(posting);
            }
            for (term, postings) in by_term {
                let mut shard = self.read_shard_for_writer(wcache, writer_peer, &term)?;
                for p in postings {
                    shard.upsert(p);
                }
                let next_version = self
                    .shard_versions
                    .get(&term)
                    .copied()
                    .unwrap_or(0)
                    .max(shard.version)
                    + 1;
                shard.version = next_version;
                self.shard_versions.insert(term.clone(), next_version);
                self.dist_index.write_shard(
                    &mut self.net,
                    &mut self.dht,
                    &mut self.storage,
                    writer_peer,
                    &shard,
                )?;
                self.after_shard_write(wcache, writer_peer, &shard, now);
                if self.config.segment.enabled {
                    self.pending_segment.insert(shard);
                }
            }

            // Remove the document from shards of terms the new version no
            // longer contains, so a republished page never leaves ghost
            // postings serving a stale version under its dropped terms.
            let term_freqs = self.analyzer.term_frequencies(&text);
            let new_terms: BTreeSet<String> = term_freqs.iter().map(|(t, _)| t.clone()).collect();
            let old_terms = self
                .indexed_terms
                .insert(name.clone(), new_terms.clone())
                .unwrap_or_default();
            let doc_id = qb_index::doc_id_for_name(&name);
            for term in old_terms.difference(&new_terms) {
                let mut shard = self.read_shard_for_writer(wcache, writer_peer, term)?;
                if !shard.remove(doc_id) {
                    continue;
                }
                let next_version = self
                    .shard_versions
                    .get(term)
                    .copied()
                    .unwrap_or(0)
                    .max(shard.version)
                    + 1;
                shard.version = next_version;
                self.shard_versions.insert(term.clone(), next_version);
                self.dist_index.write_shard(
                    &mut self.net,
                    &mut self.dht,
                    &mut self.storage,
                    writer_peer,
                    &shard,
                )?;
                self.after_shard_write(wcache, writer_peer, &shard, now);
                if self.config.segment.enabled {
                    // The shrunk shard rides the next artifact too: its
                    // bumped version dominates the fatter copy on merge, so
                    // a bootstrap from the artifact never resurrects the
                    // removed posting.
                    self.pending_segment.insert(shard);
                }
            }

            // Update the collection statistics.
            let doc_len: u32 = term_freqs.iter().map(|(_, f)| *f).sum();
            match self.indexed_docs.insert(name.clone(), (version, doc_len)) {
                Some((_, old_len)) => {
                    self.index_stats.total_len =
                        self.index_stats.total_len - old_len as u64 + doc_len as u64;
                }
                None => {
                    self.index_stats.num_docs += 1;
                    self.index_stats.total_len += doc_len as u64;
                }
            }

            // Reward claims for the assigned, non-flagged bees.
            for (local, &bee_idx) in assigned.iter().enumerate() {
                if verdict.flagged.contains(&local) {
                    continue;
                }
                self.bees[bee_idx].pages_indexed += 1;
                self.bees[bee_idx].tasks_rewarded += 1;
                let account = self.bees[bee_idx].account;
                self.chain.submit_call(
                    account,
                    Call::ClaimIndexReward {
                        page_name: name.clone(),
                        page_version: version,
                    },
                );
            }
        }

        if handled > 0 {
            // Publish the updated collection statistics once per batch.
            self.index_stats.version += 1;
            let stats = self.index_stats;
            let peer = self.bees[0].peer;
            self.dist_index
                .write_stats(&mut self.net, &mut self.dht, peer, &stats)?;
            self.maybe_compact_segments()?;
        }
        self.chain.seal_block(self.net.now());
        self.event_cursor = self.chain.events().len();
        Ok(handled)
    }

    /// Compact when the pending segment crossed a configured threshold
    /// (terms or encoded bytes). Called once per publish batch.
    fn maybe_compact_segments(&mut self) -> QbResult<()> {
        if !self.config.segment.enabled || self.pending_segment.is_empty() {
            return Ok(());
        }
        if self.pending_segment.len() >= self.config.segment.max_pending_terms
            || self.pending_segment.encoded_len() >= self.config.segment.max_pending_bytes
        {
            self.compact_segments()?;
        }
        Ok(())
    }

    /// Force a writer compaction now: fold the pending shards into the
    /// last published artifact (version-vector-dominant merge, so a
    /// republished term's newer shard wins wholesale), publish the merged
    /// segment into the content-addressed storage DAG under the next
    /// generation, and advertise the new pointer to every frontend that
    /// can currently observe the writer. Returns the new pointer, or
    /// `None` when segments are disabled or nothing is pending.
    pub fn compact_segments(&mut self) -> QbResult<Option<SegmentRef>> {
        if !self.config.segment.enabled || self.pending_segment.is_empty() {
            return Ok(None);
        }
        let pending = std::mem::take(&mut self.pending_segment);
        let prev = std::mem::take(&mut self.published_segment);
        let input_terms = (pending.len() + prev.len()) as u64;
        let merged = Segment::merge([prev, pending]);
        let generation = self.published_segment_ref.map_or(0, |r| r.generation) + 1;
        let writer_peer = self.bees[0].peer;
        match publish_segment(
            &mut self.net,
            &mut self.dht,
            &mut self.storage,
            writer_peer,
            &merged,
            generation,
        ) {
            Ok((sref, io)) => {
                self.segment_stats.segments_published += 1;
                self.segment_stats.publish_bytes += io.bytes;
                self.segment_stats.compactions += 1;
                self.segment_stats.compaction_input_terms += input_terms;
                if let Some(fleet) = self.fleet.as_mut() {
                    fleet.note_segment_published(&self.net, writer_peer, sref);
                }
                self.published_segment = merged;
                self.published_segment_ref = Some(sref);
                Ok(Some(sref))
            }
            Err(e) => {
                // Nothing is lost on a failed publish: the merged content
                // goes back to pending (the merge is idempotent, so
                // re-folding already-published shards is harmless) and the
                // next compaction retries at the same generation.
                self.pending_segment = merged;
                Err(e)
            }
        }
    }

    /// Cumulative segment-subsystem counters (publishes, fetches,
    /// compactions, import admissions).
    pub fn segment_stats(&self) -> SegmentStats {
        self.segment_stats
    }

    /// Pointer to the newest segment artifact this engine published.
    pub fn latest_segment(&self) -> Option<SegmentRef> {
        self.published_segment_ref
    }

    /// Terms currently accumulated in the pending (unpublished) segment.
    pub fn pending_segment_terms(&self) -> usize {
        self.pending_segment.len()
    }

    /// Read a term's shard on the indexing path: the writer cache's shard
    /// tier first (validated against the engine's current version for the
    /// term), the DHT only on a genuine miss.
    fn read_shard_for_writer(
        &mut self,
        wcache: &mut Option<QueryCache>,
        writer_peer: u64,
        term: &str,
    ) -> QbResult<qb_index::ShardEntry> {
        self.writer_shard_reads += 1;
        let now = self.net.now();
        let current_version = self.shard_versions.get(term).copied().unwrap_or(0);
        if let Some(cache) = wcache.as_mut() {
            match cache.lookup_shard(term, now, current_version) {
                ShardLookup::Hit(shard) => {
                    self.writer_shard_cache_hits += 1;
                    return Ok(shard);
                }
                // A term proven absent at the current version reads as an
                // empty shard, exactly what the DHT would return.
                ShardLookup::Negative => {
                    self.writer_shard_cache_hits += 1;
                    return Ok(ShardEntry::empty(term));
                }
                ShardLookup::Miss => {}
            }
        }
        let (shard, _cost) = self.dist_index.read_shard_fresh(
            &mut self.net,
            &mut self.dht,
            &mut self.storage,
            writer_peer,
            term,
            current_version,
        )?;
        Ok(shard)
    }

    /// Post-write bookkeeping for a merged shard: publish-path invalidation
    /// (results/negatives touching the term die, the republish is recorded
    /// for the adaptive TTL policy), the freshly written shard re-enters
    /// the writer cache under its new version, and in fleet mode every
    /// frontend that can observe the publish invalidates too.
    fn after_shard_write(
        &mut self,
        wcache: &mut Option<QueryCache>,
        writer_peer: u64,
        shard: &qb_index::ShardEntry,
        now: qb_common::SimInstant,
    ) {
        if let Some(cache) = wcache.as_mut() {
            cache.invalidate_term(&shard.term, now);
            cache.store_shard(shard, now);
        }
        // Publish-path invalidation on the serving side: the single-mode
        // frontend cache always observes the publish; fleet frontends only
        // when they can currently reach the writer (a partitioned frontend
        // misses it and catches up through read-time version checks and
        // anti-entropy once the partition heals).
        if let Some(cache) = self.cache.as_mut() {
            cache.invalidate_term(&shard.term, now);
        }
        if let Some(fleet) = self.fleet.as_mut() {
            fleet.observe_publish(&self.net, writer_peer, &shard.term, shard.version, now);
        }
    }

    // ----- worker bees: page rank --------------------------------------------------

    /// Run one decentralized PageRank round over the current registry's link
    /// graph: bees compute blocks redundantly, manipulated submissions are
    /// flagged and slashed, ranks are stored in decentralized storage, rank
    /// bounties are claimed and popularity rewards paid.
    pub fn run_rank_round(&mut self) -> QbResult<RankRoundReport> {
        let mut graph = LinkGraph::new();
        // The registry iterates a HashMap; sort by name before assigning
        // node ids. Ids drive the block partition of the decentralized
        // computation (and, under collusion, which quorum medians see the
        // boosted targets), so an unordered walk makes rank output differ
        // between runs of the same simulation.
        let mut pages: Vec<(String, Vec<String>, AccountId)> = self
            .chain
            .publish_registry()
            .pages()
            .map(|p| (p.name.clone(), p.out_links.clone(), p.creator))
            .collect();
        pages.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, links, _) in &pages {
            graph.set_links(name, links);
        }

        // Resolve the coalition's boost targets to node ids.
        let behaviours: Vec<qb_rank::BeeRankBehaviour> = self
            .bees
            .iter()
            .map(|bee| {
                let targets: Vec<usize> = match &bee.behaviour {
                    BeeBehaviour::Colluding { boost_pages, .. } => {
                        boost_pages.iter().filter_map(|p| graph.id_of(p)).collect()
                    }
                    _ => Vec::new(),
                };
                bee.rank_behaviour(&targets)
            })
            .collect();

        let report = self.config.rank.run(&graph, &behaviours);
        self.rank_round += 1;

        // Store the rank vector in decentralized storage with a DHT pointer
        // ("page ranks ... hosted in a decentralized storage").
        self.ranks_by_name = report
            .ranks
            .iter()
            .enumerate()
            .map(|(i, r)| (graph.name_of(i).to_string(), *r))
            .collect();
        if !self.ranks_by_name.is_empty() {
            let mut encoded = String::new();
            let mut names: Vec<&String> = self.ranks_by_name.keys().collect();
            names.sort();
            for name in names {
                encoded.push_str(&format!("{name}\t{:.9}\n", self.ranks_by_name[name]));
            }
            let peer = self.bees[0].peer;
            let (obj, _stats) =
                self.storage
                    .put_object(&mut self.net, &mut self.dht, peer, encoded.as_bytes())?;
            let key = DhtKey(Hash256::digest(b"rank:@vector"));
            self.dht.put_record(
                &mut self.net,
                peer,
                key,
                obj.root.0.as_bytes().to_vec(),
                self.rank_round,
            )?;
        }

        // Slash bees flagged during rank verification, pay the others.
        let validator = self
            .config
            .chain
            .validators
            .first()
            .copied()
            .unwrap_or(qb_chain::TREASURY);
        for (i, bee) in self.bees.iter_mut().enumerate() {
            if report.flagged_bees.contains(&i) {
                bee.times_flagged += 1;
                self.chain.submit_call(
                    validator,
                    Call::SlashStake {
                        offender: bee.account,
                        amount: self.config.slash_amount,
                    },
                );
            } else {
                bee.tasks_rewarded += 1;
                self.chain.submit_call(
                    bee.account,
                    Call::ClaimRankReward {
                        round: self.rank_round,
                        block_id: i as u64,
                    },
                );
            }
        }

        // Popularity rewards for creators whose pages exceed the threshold.
        let payouts: Vec<(AccountId, String, u64)> = pages
            .iter()
            .map(|(name, _, creator)| {
                let ppm = (self.rank_of(name) * 1_000_000.0) as u64;
                (*creator, name.clone(), ppm)
            })
            .collect();
        if !payouts.is_empty() {
            self.chain
                .submit_call(validator, Call::PayPopularityRewards { pages: payouts });
        }
        self.chain.seal_block(self.net.now());
        Ok(report)
    }

    // ----- frontend: search and ads ------------------------------------------------

    /// Answer a keyword query from `peer` (back-compat shim over
    /// [`QueenBee::search_request`]): fetch the query terms' shards through
    /// the DHT (or serve them from the query cache when enabled), intersect
    /// the posting lists, score with BM25 blended with PageRank, and attach
    /// the highest-bidding matching ad.
    ///
    /// In fleet mode the query is routed with rendezvous hashing plus
    /// power-of-two-choices over the live membership (see
    /// [`RoutingPolicy::HashPeer`]). New code should build a
    /// [`SearchRequest`] with an explicit [`RoutingPolicy`] instead.
    pub fn search(&mut self, peer: u64, query_text: &str) -> QbResult<SearchOutcome> {
        self.search_request(SearchRequest::new(query_text).route(RoutingPolicy::HashPeer(peer)))
            .map(|r| r.to_outcome())
    }

    /// Answer a keyword query at a specific fleet frontend (back-compat shim
    /// over [`QueenBee::search_request`] with [`RoutingPolicy::Direct`]).
    /// The query is issued from the frontend's peer, served through its
    /// private cache, and the shard versions it observed are recorded in
    /// its version vector (the gossip staleness guard). Due gossip rounds
    /// fire after the query.
    pub fn search_from(&mut self, frontend: usize, query_text: &str) -> QbResult<SearchOutcome> {
        self.search_request(SearchRequest::new(query_text).route(RoutingPolicy::Direct(frontend)))
            .map(|r| r.to_outcome())
    }

    /// Serve one [`SearchRequest`] through the staged planner/executor
    /// pipeline (a batch window of one; see [`QueenBee::search_batch`]).
    pub fn search_request(&mut self, request: SearchRequest) -> QbResult<SearchResponse> {
        let mut responses = self.search_batch(vec![request])?;
        Ok(responses.remove(0))
    }

    /// Serve a batch of requests as one window: every request is **planned**
    /// first (term analysis plus cache probes, no network traffic), then the
    /// executor fetches each distinct missing term shard **once** — the
    /// window's fetches run conceptually in parallel, so simulated latency
    /// is the max over distinct fetches, not a per-query sum — and fans the
    /// shard out to every query in the batch that needs it. 64 Zipf queries
    /// sharing a hot head term cost one DHT round-trip instead of 64. The
    /// statistics record is likewise read at most once per window.
    ///
    /// Sharing is scoped to the serving frontend: in fleet mode, queries
    /// routed to different frontends do not ride each other's fetches —
    /// frontends are separate machines, and moving shards between them is
    /// the gossip overlay's (network-charged) job. In single mode the whole
    /// window shares.
    ///
    /// Responses come back in request order and are byte-identical to
    /// executing the same requests sequentially (experiment E11 asserts
    /// this). An invalid request (no searchable terms, bad routing) or a
    /// failed fetch aborts the whole batch with the first error.
    pub fn search_batch(&mut self, requests: Vec<SearchRequest>) -> QbResult<Vec<SearchResponse>> {
        let now = self.net.now();
        let batch = requests.len() >= 2 && self.fleet.is_some();
        let query_count = requests.len();
        let window_span = self
            .net
            .tracer()
            .open_with("window", now, || format!("{query_count} queries"));

        // Stage 1: plan every request against its frontend's cache tiers.
        let plans = self.plan_window(requests)?;

        // Stage 2: fetch each distinct missing term shard once, plus at most
        // one statistics read for the whole window.
        let (fetched, stats_read) = self.fetch_window(&plans)?;

        // Stage 3: score, paginate and assemble each response, fanning the
        // window's fetched shards out into every participating cache.
        let batch_fetched = batch_advert_groups(&fetched, batch);
        let mut responses = Vec::with_capacity(plans.len());
        for plan in plans {
            responses.push(self.serve_plan(plan, &fetched, &stats_read, now, None));
        }
        let window_end = now
            + responses
                .iter()
                .map(|r| r.latency)
                .max()
                .unwrap_or(SimDuration::ZERO);
        self.net.tracer().close(window_span, window_end);
        // One root tree per response, rebuilt from its staged costs so the
        // closed-loop path gets the same query/plan/fetch/score shape the
        // open-loop server records.
        if self.net.tracing_enabled() {
            for response in &responses {
                self.record_query_tree(response, now, now + response.latency, None);
            }
        }
        // Batch-aware gossip: a genuine batch window's fetched shard keys
        // enter the serving frontends' next digest round.
        for (frontend, terms) in batch_fetched {
            self.note_batch_fetches(frontend, &terms);
        }
        if self.fleet.is_some() {
            self.run_due_gossip();
        }
        Ok(responses)
    }

    /// Record one per-query span tree on the tracer: a `query` root over
    /// the sojourn (or service) interval with `queue_wait` /
    /// `cache_serve` / staged-cost children, so critical-path analysis can
    /// attribute a query's latency without knowing engine internals. The
    /// children come from the response's [`StageCosts`] — the pipelined
    /// paths run fetches on a virtual timeline, so stage spans are rebuilt
    /// here rather than opened live.
    fn record_query_tree(
        &mut self,
        response: &SearchResponse,
        issued_at: SimInstant,
        done: SimInstant,
        arrived: Option<SimInstant>,
    ) {
        if !self.net.tracing_enabled() {
            return;
        }
        let root_start = arrived.unwrap_or(issued_at);
        let root = self
            .net
            .tracer()
            .record_with(None, "query", root_start, done, || response.query.clone());
        if let Some(arrived) = arrived {
            self.net
                .tracer()
                .record(root, "queue_wait", arrived, issued_at);
        }
        if response.result_cache_hit() {
            self.net
                .tracer()
                .record(root, "cache_serve", issued_at, done);
        } else {
            // Stage ends are clamped into the query's own interval: a
            // memoized pipelined query can report stage costs larger than
            // its rebased latency, and the root must still end at `done`.
            let costs = &response.trace;
            if costs.plan > SimDuration::ZERO {
                let end = (issued_at + costs.plan).min(done);
                self.net.tracer().record(root, "plan", issued_at, end);
            }
            if costs.stats > SimDuration::ZERO {
                let end = (issued_at + costs.stats).min(done);
                self.net.tracer().record(root, "stats", issued_at, end);
            }
            // In the open-loop server the service interval runs to the
            // query's completion, but the per-link queueing charged inside
            // the slowest dependency (`StageCosts::net_queue`) is split off
            // as its own span so attribution separates waiting on contended
            // links from fetch service; closed-loop windows know the exact
            // fetch cost.
            let (fetch_end, net_queue) = if arrived.is_some() {
                let queued = costs.net_queue.min(done.since(issued_at));
                let service = done.since(issued_at).as_micros() - queued.as_micros();
                (issued_at + SimDuration::from_micros(service), queued)
            } else {
                ((issued_at + costs.shard_fetch).min(done), SimDuration::ZERO)
            };
            if fetch_end > issued_at {
                self.net
                    .tracer()
                    .record(root, "fetch", issued_at, fetch_end);
            }
            if net_queue > SimDuration::ZERO {
                self.net.tracer().record(root, "net_queue", fetch_end, done);
            }
        }
        self.net.tracer().record(root, "score", done, done);
    }

    /// Serve a request stream through the **pipelined execution engine**:
    /// the stream is cut into windows of `config.window_size`, and up to
    /// `config.max_windows_in_flight` windows overlap — window N+1 is
    /// planned and its distinct-shard fetches issued while window N's
    /// fetches are still in flight, with the per-link in-flight limits of
    /// the simulated network queueing (and charging) any excess. Identical
    /// and prefix-sharing queries across the in-flight window set resolve
    /// against a version-tagged window memo instead of re-running
    /// intersect/score. See [`crate::query::pipeline`] for the state
    /// machine; experiment E13 measures the makespan win over back-to-back
    /// windows and asserts byte-identical per-query results.
    pub fn search_pipelined(
        &mut self,
        requests: Vec<SearchRequest>,
        config: PipelineConfig,
    ) -> QbResult<PipelineOutcome> {
        let outcome = PipelineDriver::new(config).run(self, requests)?;
        if self.fleet.is_some() {
            self.run_due_gossip();
        }
        Ok(outcome)
    }

    /// Serve an **open-loop** arrival trace: each request is admitted (or
    /// degraded, or shed) at its arrival instant against its frontend's
    /// bounded ingress queue, queued work is dispatched through
    /// [`QueenBee::search_pipelined`] in windows, and every query's sojourn
    /// (arrival → response completion) lands in the returned
    /// [`LoadReport`]'s histograms. Requires
    /// [`AdmissionConfig::enabled`](crate::AdmissionConfig) in the engine
    /// config; the closed-loop search paths never consult that config, so
    /// deployments without it keep their exact behavior.
    ///
    /// Arrival offsets are relative to the current simulated instant; the
    /// shared clock is advanced along the arrival timeline (firing due
    /// gossip rounds on the way), never past it in one jump.
    pub fn serve_open_loop(&mut self, arrivals: Vec<TimedRequest>) -> QbResult<LoadReport> {
        let cfg = self.config.admission.clone();
        if !cfg.enabled {
            return Err(QbError::Config(
                "serve_open_loop needs admission control enabled (config.admission.enabled)".into(),
            ));
        }
        let pipeline = PipelineConfig {
            window_size: cfg.window_size,
            max_windows_in_flight: cfg.max_windows_in_flight,
            ..PipelineConfig::default()
        };
        let t0 = self.net.now();
        let nf = self.num_frontends().max(1);
        let mut queues: Vec<IngressQueue> = (0..nf).map(|_| IngressQueue::new(t0)).collect();
        let mut report = LoadReport {
            admitted_per_frontend: vec![0; nf],
            ..LoadReport::default()
        };
        let mut last_completion = t0;

        // Arrivals in time order (stable, so same-instant arrivals keep
        // their trace order).
        let mut arrivals = arrivals;
        arrivals.sort_by_key(|a| a.offset);
        let mut next_arrival = 0usize;

        loop {
            // The earliest pending event wins: the next trace arrival or
            // the earliest frontend dispatch (ties broken by frontend
            // index, arrivals before dispatches at the same instant so a
            // same-instant arrival can still join the batch).
            let draining = next_arrival >= arrivals.len();
            let next_dispatch: Option<(SimInstant, usize)> = queues
                .iter()
                .enumerate()
                .filter_map(|(f, q)| q.next_dispatch_at(&cfg, draining).map(|at| (at, f)))
                .min();
            let arrival_at = arrivals
                .get(next_arrival)
                .map(|a| t0 + a.offset)
                .filter(|_| !draining);

            match (arrival_at, next_dispatch) {
                (Some(at), d) if d.is_none_or(|(dt, _)| at <= dt) => {
                    // Admission decision at the arrival instant.
                    let timed = &arrivals[next_arrival];
                    next_arrival += 1;
                    report.offered += 1;
                    let (_, frontend) = self.resolve_route(&timed.request.routing)?;
                    let f = frontend.unwrap_or(0).min(nf - 1);
                    let q = &mut queues[f];
                    let estimate = q.estimated_sojourn(at);
                    if q.queue.len() >= cfg.queue_capacity || estimate > cfg.shed_threshold {
                        report.shed += 1;
                        self.net.tracer().record(None, "load.shed", at, at);
                        continue;
                    }
                    let mut request = timed.request.clone();
                    if estimate > cfg.degrade_threshold
                        && matches!(request.freshness, Freshness::Fresh)
                    {
                        request.freshness = Freshness::CacheOk;
                        report.degraded += 1;
                        self.net.tracer().record(None, "load.degrade", at, at);
                    }
                    // Pin the admission decision: the query is queued at
                    // frontend `f`, so it must also be *served* there —
                    // without the pin, plan-time re-resolution against a
                    // later load picture can silently move it, feeding the
                    // load EWMA at a different frontend than the one the
                    // dispatch ledger charged.
                    if frontend.is_some() {
                        request.routing = RoutingPolicy::Direct(f);
                    }
                    report.admitted += 1;
                    report.admitted_per_frontend[f] += 1;
                    // Feed the router's local dispatch ledger: the next
                    // arrival's two-choices comparison sees this admit
                    // immediately instead of waiting a heartbeat fold.
                    if let Some(fleet) = self.fleet.as_mut() {
                        fleet.record_routed(f);
                    }
                    q.queue.push_back((at, request));
                    report.peak_queue_depth = report.peak_queue_depth.max(q.queue.len());
                }
                (_, Some((at, f))) => {
                    // Dispatch up to a pipeline's worth of queued work.
                    let q = &mut queues[f];
                    let take = q.queue.len().min(cfg.dispatch_limit());
                    let batch: Vec<(SimInstant, SearchRequest)> = q.queue.drain(..take).collect();
                    // The batch leaves the ingress queue: retire it from
                    // the router's queued-work gauge.
                    if let Some(fleet) = self.fleet.as_mut() {
                        fleet.record_finished(f, take as u64);
                    }
                    self.advance_time_to(at);
                    let requests: Vec<SearchRequest> =
                        batch.iter().map(|(_, r)| r.clone()).collect();
                    let outcome = self.search_pipelined(requests, pipeline)?;
                    for span in &outcome.window_spans {
                        let range = span.first_query..span.first_query + span.queries;
                        for ((arrived, _), response) in
                            batch[range.clone()].iter().zip(&outcome.responses[range])
                        {
                            let done = span.issued_at + response.latency;
                            report.sojourn.record(done.since(*arrived));
                            report.queue_wait.record(span.issued_at.since(*arrived));
                            report.completed += 1;
                            last_completion = last_completion.max(done);
                            self.record_query_tree(response, span.issued_at, done, Some(*arrived));
                        }
                    }
                    report.dispatches += 1;
                    report.windows += outcome.report.windows as u64;
                    report.pipeline_queue_delay += outcome.report.queue_delay;
                    let q = &mut queues[f];
                    q.observe_service(batch.len(), outcome.report.makespan);
                    q.busy_until = at + outcome.report.makespan;
                }
                (None, None) => break,
                (Some(_), None) => unreachable!("draining filters the arrival"),
            }
        }

        report.makespan = last_completion.since(t0);
        Ok(report)
    }

    /// Stage 1 of a window: plan every request against its frontend's
    /// cache tiers (no network traffic; planning *is* the cache read).
    pub(crate) fn plan_window(&mut self, requests: Vec<SearchRequest>) -> QbResult<Vec<QueryPlan>> {
        let now = self.net.now();
        let mut plans: Vec<QueryPlan> = Vec::with_capacity(requests.len());
        for request in requests {
            let (origin_peer, frontend) = self.resolve_route(&request.routing)?;
            // Every planned query bumps the serving frontend's load signal;
            // the EWMA folds at its next heartbeat and rides the gossip
            // summaries that feed two-choices routing.
            if let (Some(f), Some(fleet)) = (frontend, self.fleet.as_mut()) {
                fleet.record_served(f);
            }
            let seq = self.query_counter + 1;
            let mut cache = self.checkout_cache(frontend);
            let planned = plan_request(
                request,
                seq,
                origin_peer,
                frontend,
                &self.analyzer,
                &mut cache,
                &self.shard_versions,
                self.index_stats.version,
                now,
            );
            self.restore_cache_slot(frontend, cache);
            let plan = planned?;
            self.query_counter = seq;
            plans.push(plan);
        }
        Ok(plans)
    }

    /// Stage 2 of a window: fetch each distinct missing `(frontend, term)`
    /// shard once, plus at most one statistics read for the whole window.
    /// Iteration follows plan and term order, so the simulated network sees
    /// a deterministic request sequence. Each fetch uses the versioned
    /// read: the frontend knows the term's current version and digs past
    /// lagging replicas.
    pub(crate) fn fetch_window(
        &mut self,
        plans: &[QueryPlan],
    ) -> QbResult<(FetchSet, Option<SharedStatsRead>)> {
        let mut fetched = FetchSet::new();
        let mut stats_read: Option<SharedStatsRead> = None;
        for plan in plans {
            if plan.is_result_hit() {
                continue;
            }
            if matches!(plan.stats, StatsPlan::Fetch) && stats_read.is_none() {
                let (stats, cost) =
                    self.dist_index
                        .read_stats(&mut self.net, &mut self.dht, plan.origin_peer)?;
                stats_read = Some(SharedStatsRead {
                    stats,
                    latency: cost.latency,
                    messages: cost.messages,
                    charged_to: plan.seq,
                });
            }
            for term in plan.fetch_terms() {
                let key = (plan.frontend, term.to_string());
                if fetched.contains_key(&key) {
                    continue;
                }
                let current_version = self.shard_versions.get(term).copied().unwrap_or(0);
                let (shard, cost) = self.dist_index.read_shard_fresh(
                    &mut self.net,
                    &mut self.dht,
                    &mut self.storage,
                    plan.origin_peer,
                    term,
                    current_version,
                )?;
                fetched.insert(
                    key,
                    FetchedShard {
                        shard,
                        latency: cost.latency,
                        messages: cost.messages,
                        charged_to: plan.seq,
                        origin_peer: plan.origin_peer,
                    },
                );
            }
        }
        Ok((fetched, stats_read))
    }

    /// Event-driven stage 2: start every distinct missing `(frontend,
    /// term)` shard read (plus at most one statistics read) of a window at
    /// virtual instant `at`, without waiting for any of them. The per-hop
    /// DHT RPCs of these reads run as in-flight operations of their origin
    /// peers, so fetches of *different* windows genuinely interleave on
    /// contended uplinks. Trace spans nest under `window_span`.
    pub(crate) fn begin_window_fetches(
        &mut self,
        plans: &[QueryPlan],
        at: SimInstant,
        window_span: Option<qb_trace::SpanId>,
    ) -> (Option<PendingStatsRead>, Vec<PendingShardFetch>) {
        let mut stats: Option<PendingStatsRead> = None;
        let mut shards: Vec<PendingShardFetch> = Vec::new();
        for plan in plans {
            if plan.is_result_hit() {
                continue;
            }
            if matches!(plan.stats, StatsPlan::Fetch) && stats.is_none() {
                let span = self.net.tracer().record(window_span, "stats_read", at, at);
                let machine = self.dist_index.begin_read_stats(
                    &mut self.net,
                    &mut self.dht,
                    plan.origin_peer,
                    at,
                    span.or(window_span),
                );
                stats = Some(PendingStatsRead {
                    charged_to: plan.seq,
                    span,
                    machine,
                });
            }
            for term in plan.fetch_terms() {
                let key = (plan.frontend, term.to_string());
                if shards.iter().any(|p| p.key == key) {
                    continue;
                }
                let span = self
                    .net
                    .tracer()
                    .record_with(window_span, "fetch", at, at, || term.to_string());
                let current_version = self.shard_versions.get(term).copied().unwrap_or(0);
                let machine = self.dist_index.begin_read_shard_fresh(
                    &mut self.net,
                    &mut self.dht,
                    plan.origin_peer,
                    term,
                    current_version,
                    at,
                    span.or(window_span),
                );
                shards.push(PendingShardFetch {
                    key,
                    charged_to: plan.seq,
                    origin_peer: plan.origin_peer,
                    span,
                    machine,
                });
            }
        }
        (stats, shards)
    }

    /// Advance a window's in-flight fetches at instant `at`, folding every
    /// read that completed into the window's fetch set and completion
    /// bookkeeping. Sets `win.next_event` to the earliest instant any
    /// remaining read advances at (`None` when the window is complete).
    pub(crate) fn poll_window_fetches(
        &mut self,
        win: &mut crate::query::pipeline::WindowRun,
        at: SimInstant,
    ) -> QbResult<()> {
        let mut next_event: Option<SimInstant> = None;
        let track = |cand: SimInstant, next_event: &mut Option<SimInstant>| {
            *next_event = Some(next_event.map_or(cand, |cur: SimInstant| cur.min(cand)));
        };
        if let Some(pending) = win.pending_stats.as_mut() {
            match self.dist_index.poll_read_stats(
                &mut self.net,
                &mut self.dht,
                &mut pending.machine,
                at,
            ) {
                qb_index::ShardReadStep::Ready => {
                    let pending = win.pending_stats.take().expect("matched Some above");
                    let queue_delay = pending.machine.queue_delay();
                    let (stats, cost, completed_at) = pending.machine.into_result()?;
                    self.net.tracer().close(pending.span, completed_at);
                    win.stats_read = Some(SharedStatsRead {
                        stats,
                        latency: cost.latency,
                        messages: cost.messages,
                        charged_to: pending.charged_to,
                    });
                    win.stats_done = Some(completed_at);
                    win.stats_queue = queue_delay;
                    win.completes_at = win.completes_at.max(completed_at);
                    win.queue_delay += queue_delay;
                }
                qb_index::ShardReadStep::Pending { next_event_at } => {
                    track(next_event_at, &mut next_event);
                }
            }
        }
        let mut i = 0;
        while i < win.pending_shards.len() {
            let pending = &mut win.pending_shards[i];
            match self.dist_index.poll_read_shard(
                &mut self.net,
                &mut self.dht,
                &mut self.storage,
                &mut pending.machine,
                at,
            ) {
                qb_index::ShardReadStep::Ready => {
                    let pending = win.pending_shards.remove(i);
                    let queue_delay = pending.machine.queue_delay();
                    let (shard, cost, completed_at) = pending.machine.into_result()?;
                    self.net.tracer().close(pending.span, completed_at);
                    win.fetch_done.insert(pending.key.clone(), completed_at);
                    win.fetch_queue.insert(pending.key.clone(), queue_delay);
                    win.completes_at = win.completes_at.max(completed_at);
                    win.queue_delay += queue_delay;
                    win.fetched.insert(
                        pending.key,
                        FetchedShard {
                            shard,
                            latency: cost.latency,
                            messages: cost.messages,
                            charged_to: pending.charged_to,
                            origin_peer: pending.origin_peer,
                        },
                    );
                }
                qb_index::ShardReadStep::Pending { next_event_at } => {
                    track(next_event_at, &mut next_event);
                    i += 1;
                }
            }
        }
        win.next_event = next_event;
        Ok(())
    }

    /// Retire whatever a window still has in flight without processing it
    /// (abort path), so an aborted run leaves no phantom link occupancy.
    pub(crate) fn abandon_window_fetches(&mut self, win: &mut crate::query::pipeline::WindowRun) {
        if let Some(pending) = win.pending_stats.as_mut() {
            pending.machine.abandon(&mut self.net);
        }
        win.pending_stats = None;
        for pending in win.pending_shards.iter_mut() {
            pending.machine.abandon(&mut self.net);
        }
        win.pending_shards.clear();
    }

    /// Predicted relative cost of a window: the number of distinct
    /// `(frontend, term)` shards its requests *could* require. A pure
    /// routing + analysis pass — no cache probes, no network traffic, no
    /// state changes — so the pipeline's shortest-first issue order under
    /// saturation is deterministic and free.
    pub(crate) fn predict_window_cost(&self, requests: &[SearchRequest]) -> usize {
        let mut distinct: BTreeSet<(Option<usize>, String)> = BTreeSet::new();
        for request in requests {
            if let Ok((_, frontend)) = self.resolve_route(&request.routing) {
                for term in self.analyzer.analyze(&request.query) {
                    distinct.insert((frontend, term));
                }
            }
        }
        distinct.len()
    }

    /// Queue a batch window's freshly fetched shard keys as batch-aware
    /// gossip advertisements of the serving frontend (no-op outside fleet
    /// mode or when `GossipConfig::batch_advertise` is off).
    /// [`batch_advert_groups`] produces the per-frontend groups.
    pub(crate) fn note_batch_fetches(&mut self, frontend: usize, terms: &[(String, u64)]) {
        if let Some(fleet) = self.fleet.as_mut() {
            fleet.note_batch_fetches(frontend, terms);
        }
    }

    /// Fold a pipelined run's counters into the engine-lifetime stats.
    pub(crate) fn record_pipeline_run(
        &mut self,
        report: &crate::query::pipeline::PipelineReport,
        memo: &WindowMemo,
    ) {
        self.pipelined_windows += report.windows as u64;
        self.pipelined_queries += report.queries as u64;
        self.window_memo_hits += memo.hits;
        self.window_memo_partial_hits += memo.partial_hits;
    }

    /// Engine-lifetime counters of the query-serving path: real
    /// intersect/score computations, window-memo savings and pipelined
    /// window/query totals.
    pub fn query_stats(&self) -> QueryEngineStats {
        QueryEngineStats {
            score_invocations: self.score_invocations,
            window_memo_hits: self.window_memo_hits,
            window_memo_partial_hits: self.window_memo_partial_hits,
            pipelined_windows: self.pipelined_windows,
            pipelined_queries: self.pipelined_queries,
        }
    }

    /// Resolve a request's routing policy to `(origin peer, frontend)`.
    fn resolve_route(&self, routing: &RoutingPolicy) -> QbResult<(u64, Option<usize>)> {
        match (routing, self.fleet.as_ref()) {
            (RoutingPolicy::Direct(f), Some(fleet)) => {
                if *f >= fleet.len() {
                    return Err(QbError::Config(format!(
                        "frontend {f} out of range (fleet has {})",
                        fleet.len()
                    )));
                }
                if !fleet.is_active(*f) {
                    return Err(QbError::Config(format!(
                        "frontend {f} has left the fleet (rejoin it before routing to it)"
                    )));
                }
                Ok((fleet.frontend_peer(*f), Some(*f)))
            }
            (RoutingPolicy::Direct(_), None) => Err(QbError::Config(
                "search_from needs a frontend fleet (config.gossip.num_frontends > 0)".into(),
            )),
            (RoutingPolicy::HashPeer(peer), Some(fleet)) if !fleet.is_empty() => {
                // Rendezvous hashing over the live membership plus
                // power-of-two-choices on the routing-load picture (see
                // [`crate::query::routing`]): of the peer's two
                // highest-scoring active slots, the one whose advertised
                // load EWMA plus the dispatcher's own since-that-fold
                // routing ledger is lower serves; ties keep the rendezvous
                // winner so routing is deterministic for a given
                // membership + load picture.
                let active = (0..fleet.len()).filter(|&f| fleet.is_active(f));
                let (first, second) = crate::query::routing::hrw_top2(*peer, active);
                let Some(first) = first else {
                    return Err(QbError::Config(
                        "no active frontend left in the fleet".into(),
                    ));
                };
                let f = match second {
                    Some(second) if fleet.routing_load(second) < fleet.routing_load(first) => {
                        second
                    }
                    _ => first,
                };
                Ok((fleet.frontend_peer(f), Some(f)))
            }
            (RoutingPolicy::HashPeer(peer), _) => Ok((*peer, None)),
            (RoutingPolicy::RingSuccessor(peer), Some(fleet)) if !fleet.is_empty() => {
                // Hash onto the slot ring, then walk to the next active
                // frontend — the seed's failover geometry, which dumps a
                // dead slot's whole keyspace on one successor. Kept so
                // experiments can measure the spike two-choices removes.
                let n = fleet.len();
                let mut f = *peer as usize % n;
                let mut tried = 0;
                while !fleet.is_active(f) && tried < n {
                    f = (f + 1) % n;
                    tried += 1;
                }
                if !fleet.is_active(f) {
                    return Err(QbError::Config(
                        "no active frontend left in the fleet".into(),
                    ));
                }
                Ok((fleet.frontend_peer(f), Some(f)))
            }
            (RoutingPolicy::RingSuccessor(peer), _) => Ok((*peer, None)),
        }
    }

    /// Resolve a routing policy to the fleet slot that would serve it right
    /// now, without serving anything (`None` in single-frontend mode).
    /// Experiments use this to observe landing distributions of the routing
    /// policies side by side.
    pub fn route_frontend(&self, routing: &RoutingPolicy) -> QbResult<Option<usize>> {
        self.resolve_route(routing).map(|(_, f)| f)
    }

    /// Check the serving cache out of its slot (the single-mode cache, or
    /// the routed frontend's private cache in fleet mode).
    fn checkout_cache(&mut self, frontend: Option<usize>) -> Option<QueryCache> {
        match frontend {
            Some(i) => self.fleet.as_mut().and_then(|f| f.take_cache(i)),
            None => self.cache.take(),
        }
    }

    /// Return a checked-out cache to its slot.
    fn restore_cache_slot(&mut self, frontend: Option<usize>, cache: Option<QueryCache>) {
        match frontend {
            Some(i) => {
                if let Some(fleet) = self.fleet.as_mut() {
                    fleet.restore_cache(i, cache);
                }
            }
            None => self.cache = cache,
        }
    }

    /// Stage 3 of the pipeline: turn one plan plus the window's shared
    /// fetches into a [`SearchResponse`], store what the serving cache
    /// should keep, record version observations, account freshness and
    /// attach the ad. With a window memo, identical and prefix-sharing
    /// queries in the in-flight window set skip the intersect/score work.
    pub(crate) fn serve_plan(
        &mut self,
        plan: QueryPlan,
        fetched: &FetchSet,
        stats_read: &Option<SharedStatsRead>,
        now: qb_common::SimInstant,
        memo: Option<&mut WindowMemo>,
    ) -> SearchResponse {
        let hit_latency = self.config.cache.hit_latency;
        let top_k = plan.request.top_k.unwrap_or(self.config.top_k);
        let page = plan.request.page;
        let terms: Vec<String> = plan.terms.iter().map(|t| t.term.clone()).collect();

        // A current result-cache entry answers the whole request locally.
        if let Some(entry) = &plan.cached_result {
            let hits = paginate(&entry.results, page, top_k);
            let observed = entry.term_versions.clone();
            let total = entry.results.len();
            self.record_observations(plan.frontend, &observed);
            let trace = StageCosts {
                plan: hit_latency,
                ..StageCosts::default()
            };
            let provenance = vec![TermProvenance::ResultCache; terms.len()];
            return self.finish_response(
                plan,
                terms,
                hits,
                total,
                top_k,
                hit_latency,
                trace,
                provenance,
            );
        }

        // Assemble the shards in term order from the plan's resolutions and
        // the window's shared fetches.
        let mut shards: Vec<ShardEntry> = Vec::with_capacity(terms.len());
        let mut provenance: Vec<TermProvenance> = Vec::with_capacity(terms.len());
        let mut term_latencies: Vec<SimDuration> = Vec::with_capacity(terms.len());
        let mut observed: Vec<(String, u64)> = Vec::new();
        let mut fan_out: Vec<&ShardEntry> = Vec::new();
        let mut messages = 0u64;
        let mut any_stale = false;
        for planned in &plan.terms {
            match &planned.plan {
                TermPlan::CachedShard(shard) => {
                    provenance.push(TermProvenance::ShardCache);
                    term_latencies.push(hit_latency);
                    observed.push((planned.term.clone(), shard.version));
                    shards.push(shard.clone());
                }
                TermPlan::Negative => {
                    provenance.push(TermProvenance::NegativeCache);
                    term_latencies.push(hit_latency);
                    shards.push(ShardEntry::empty(&planned.term));
                }
                TermPlan::Stale { shard, age } => {
                    any_stale = true;
                    provenance.push(TermProvenance::StaleCache { age: *age });
                    term_latencies.push(hit_latency);
                    shards.push(shard.clone());
                }
                TermPlan::Fetch => {
                    let fetch = &fetched[&(plan.frontend, planned.term.clone())];
                    term_latencies.push(fetch.latency);
                    if fetch.charged_to == plan.seq {
                        messages += fetch.messages;
                        provenance.push(TermProvenance::DhtFetch);
                    } else {
                        provenance.push(TermProvenance::BatchShared);
                    }
                    observed.push((planned.term.clone(), fetch.shard.version));
                    fan_out.push(&fetch.shard);
                    shards.push(fetch.shard.clone());
                }
                TermPlan::ResultCached => unreachable!("handled by the result-hit path"),
            }
        }

        // Statistics: the plan's cached copy, or the window's shared read.
        let (stats, stats_latency, stats_fetched) = match &plan.stats {
            StatsPlan::Cached(stats) => (*stats, hit_latency, false),
            StatsPlan::Fetch => {
                let read = stats_read
                    .as_ref()
                    .expect("window performed a stats read for fetch plans");
                if read.charged_to == plan.seq {
                    messages += read.messages;
                }
                (read.stats, read.latency, true)
            }
        };

        // The window's reads run conceptually in parallel: total latency is
        // the max over the stats read and this query's term components.
        let shard_stage = qb_simnet::parallel_latency(&term_latencies);
        let latency = shard_stage.max(stats_latency);

        // Score the full candidate list; pagination slices it afterwards.
        // A window memo serves duplicate computations from its
        // version-tagged entries; every genuine computation is counted.
        let (full, candidates_scored, memo_hit) = match memo {
            Some(m) => {
                let key = WindowMemo::fingerprint(plan.frontend, &stats, &shards);
                m.intersect_and_score(
                    &key,
                    &shards,
                    &stats,
                    |name| self.ranks_by_name.get(name).copied().unwrap_or(0.0),
                    self.config.rank_weight,
                )
            }
            None => {
                let (full, scored) = intersect_and_score(
                    &shards,
                    &stats,
                    |name| self.ranks_by_name.get(name).copied().unwrap_or(0.0),
                    self.config.rank_weight,
                );
                (full, scored, false)
            }
        };
        if !memo_hit {
            self.score_invocations += 1;
        }

        // Cache stores: fetched shards fan out into this query's serving
        // cache (negative entries included — an empty version-0 shard is
        // stored as proven absence), the stats record refreshes, and the
        // full result list is remembered under the shard versions actually
        // served (a lagging replica's true version, never the current
        // counter, so a stale response can never outlive its window).
        // Responses computed from deliberately stale `MaxStaleness` shards
        // are not cached: a strict reader must never inherit them.
        let mut cache = self.checkout_cache(plan.frontend);
        if let Some(c) = cache.as_mut() {
            for shard in &fan_out {
                c.store_shard(shard, now);
            }
            if stats_fetched {
                c.store_stats(stats, stats.version);
            }
            if !any_stale {
                let term_versions: Vec<(String, u64)> = terms
                    .iter()
                    .zip(&shards)
                    .map(|(t, s)| (t.clone(), s.version))
                    .collect();
                c.store_result(&plan.result_key, full.clone(), term_versions, now);
            }
        }
        self.restore_cache_slot(plan.frontend, cache);
        self.record_observations(plan.frontend, &observed);

        let hits = paginate(&full, page, top_k);
        let total = full.len();
        // The compute stages (plan/score/rank-blend) stay at their zero
        // default: local work is free under the simulated cost model.
        let trace = StageCosts {
            stats: stats_latency,
            shard_fetch: shard_stage,
            messages,
            candidates_scored,
            ..StageCosts::default()
        };
        self.finish_response(plan, terms, hits, total, top_k, latency, trace, provenance)
    }

    /// Record the shard versions a fleet frontend observed while serving.
    fn record_observations(&mut self, frontend: Option<usize>, observed: &[(String, u64)]) {
        if let (Some(i), Some(fleet)) = (frontend, self.fleet.as_mut()) {
            for (term, version) in observed {
                fleet.observe(i, term, *version);
            }
        }
    }

    /// Shared tail of every served plan: freshness accounting, ad selection
    /// (the ad market lives on-chain and is always consulted live, so a
    /// cached response can never show an expired campaign) and response
    /// assembly.
    #[allow(clippy::too_many_arguments)]
    fn finish_response(
        &mut self,
        plan: QueryPlan,
        terms: Vec<String>,
        hits: Vec<ScoredDoc>,
        total_matches: usize,
        top_k: usize,
        latency: SimDuration,
        trace: StageCosts,
        provenance: Vec<TermProvenance>,
    ) -> SearchResponse {
        // Freshness accounting against the registry's current versions.
        for r in &hits {
            if let Some(rec) = self.chain.publish_registry().get(&r.name) {
                self.freshness.record(r.version, rec.version);
            }
        }

        // Ad selection: highest-bidding active campaign matching any query term.
        let mut ad = None;
        if plan.request.ads {
            for term in &terms {
                if let Some(campaign) = self.chain.ad_market().match_keyword(term).first() {
                    ad = Some(campaign.id);
                    break;
                }
            }
        }
        let served_by_bee = self.bees[(plan.seq as usize) % self.bees.len()].account;
        SearchResponse {
            query: plan.request.query,
            terms,
            hits,
            total_matches,
            page: plan.request.page,
            top_k,
            ad,
            latency,
            trace,
            provenance,
            served_by_bee,
        }
    }

    /// Register an advertiser campaign on-chain (funding the advertiser's
    /// account from the treasury first, as its "fiat on-ramp").
    pub fn register_advertiser(&mut self, spec: &AdSpec) -> QbResult<()> {
        let account = AccountId(spec.advertiser);
        self.chain.fund_from_treasury(account, spec.budget)?;
        self.known_advertisers.insert(account);
        self.chain.submit_call(
            account,
            Call::CreateAdCampaign {
                keywords: spec.keywords.clone(),
                bid_per_click: spec.bid_per_click,
                budget: spec.budget,
            },
        );
        self.chain.seal_block(self.net.now());
        Ok(())
    }

    /// The user clicked the ad shown with `outcome`: charge the advertiser
    /// and split the revenue between the top result's creator, the serving
    /// bee and the treasury.
    pub fn click_ad(&mut self, outcome: &SearchOutcome) -> QbResult<bool> {
        let (Some(ad), Some(top)) = (outcome.ad, outcome.results.first()) else {
            return Ok(false);
        };
        self.chain.submit_call(
            qb_chain::TREASURY,
            Call::RecordAdClick {
                ad,
                page_creator: AccountId(top.creator),
                serving_bee: outcome.served_by_bee,
            },
        );
        self.chain.seal_block(self.net.now());
        Ok(true)
    }

    /// Honey split across stakeholder roles.
    pub fn honey_by_role(&self) -> HoneyByRole {
        HoneyByRole::from_chain(
            &self.chain,
            &self.creator_accounts(),
            &self.bee_accounts(),
            &self.advertiser_accounts(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(name: &str, body: &str, links: Vec<String>) -> WebPage {
        WebPage::new(name, format!("Title {name}"), body, links)
    }

    fn engine() -> QueenBee {
        QueenBee::new(QueenBeeConfig::small()).unwrap()
    }

    #[test]
    fn publish_index_search_round_trip() {
        let mut qb = engine();
        let creator = AccountId(1_000);
        qb.publish(
            1,
            creator,
            &page(
                "wiki/dweb",
                "the decentralized web is served by peer devices",
                vec![],
            ),
        )
        .unwrap();
        qb.publish(
            2,
            AccountId(1_001),
            &page(
                "wiki/bees",
                "worker bees earn honey for indexing pages",
                vec!["wiki/dweb".into()],
            ),
        )
        .unwrap();
        qb.seal();
        let handled = qb.process_publish_events().unwrap();
        assert_eq!(handled, 2);
        let out = qb.search(5, "decentralized peer").unwrap();
        assert!(!out.results.is_empty());
        assert_eq!(out.results[0].name, "wiki/dweb");
        assert!(out.latency.as_micros() > 0);
        assert!(out.messages > 0);
        // Bees were rewarded for indexing.
        let bee_balance: u64 = qb.bee_accounts().iter().map(|a| qb.chain.balance(*a)).sum();
        assert!(bee_balance > 0);
        // The creator got the publish reward.
        assert!(qb.chain.balance(creator) >= qb.config().chain.publish_reward);
    }

    #[test]
    fn updates_are_searchable_immediately_after_processing() {
        let mut qb = engine();
        let creator = AccountId(1_000);
        qb.publish(
            1,
            creator,
            &page("news/today", "old stale headline about yesterday", vec![]),
        )
        .unwrap();
        qb.seal();
        qb.process_publish_events().unwrap();
        // Update the page with a brand-new term.
        qb.publish(
            1,
            creator,
            &page(
                "news/today",
                "breaking exclusive zebrastampede coverage",
                vec![],
            ),
        )
        .unwrap();
        qb.seal();
        qb.process_publish_events().unwrap();
        let out = qb.search(3, "zebrastampede").unwrap();
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results[0].version, 2);
        assert_eq!(qb.freshness.staleness_rate(), 0.0);
    }

    #[test]
    fn empty_query_is_rejected() {
        let mut qb = engine();
        assert!(matches!(qb.search(0, "the of and"), Err(QbError::Query(_))));
    }

    #[test]
    fn scraper_mirror_is_rejected_by_duplicate_detection() {
        let mut qb = engine();
        let victim = page(
            "blog/popular",
            &(0..150)
                .map(|i| format!("organicword{} ", i % 40))
                .collect::<String>(),
            vec![],
        );
        qb.publish(1, AccountId(1_000), &victim).unwrap();
        qb.seal();
        let attack = ScraperAttack::new(6_666, 1);
        let reports = qb
            .run_scraper_attack(&attack, std::slice::from_ref(&victim))
            .unwrap();
        assert_eq!(reports.len(), 1);
        assert!(!reports[0].accepted);
        assert!(reports[0]
            .reject_reason
            .as_ref()
            .unwrap()
            .contains("near-duplicate"));
        // Without the defense the mirror is accepted.
        let mut cfg = QueenBeeConfig::small();
        cfg.duplicate_detection = false;
        let mut qb2 = QueenBee::new(cfg).unwrap();
        qb2.publish(1, AccountId(1_000), &victim).unwrap();
        qb2.seal();
        let reports = qb2.run_scraper_attack(&attack, &[victim]).unwrap();
        assert!(reports[0].accepted);
    }

    #[test]
    fn colluding_minority_is_flagged_and_spam_kept_out_of_the_index() {
        let mut qb = engine();
        let attack = CollusionAttack::new(0.25, vec!["evil/spam".into()]);
        qb.apply_collusion(&attack);
        assert_eq!(qb.bees().iter().filter(|b| b.is_colluding()).count(), 1);
        qb.publish(
            1,
            AccountId(1_000),
            &page(
                "wiki/honest",
                "legitimate honest content about honeybees",
                vec![],
            ),
        )
        .unwrap();
        qb.seal();
        qb.process_publish_events().unwrap();
        let out = qb.search(2, "honeybees").unwrap();
        assert!(out.results.iter().all(|r| r.name != "evil/spam"));
        // At least one verification quorum caught a colluder (if one was assigned).
        let flagged: u64 = qb.bees().iter().map(|b| b.times_flagged).sum();
        let colluder_assigned = qb
            .bees()
            .iter()
            .any(|b| b.is_colluding() && b.pages_indexed + b.times_flagged > 0);
        if colluder_assigned {
            assert!(flagged > 0);
        }
    }

    #[test]
    fn rank_round_pays_bees_and_popular_creators() {
        let mut qb = engine();
        // A small web where everybody links to the hub.
        for i in 0..6 {
            qb.publish(
                1,
                AccountId(1_000 + i),
                &page(
                    &format!("site/{i}"),
                    "spoke page content words",
                    vec!["site/hub".into()],
                ),
            )
            .unwrap();
        }
        qb.publish(
            2,
            AccountId(1_100),
            &page("site/hub", "hub page everyone links here", vec![]),
        )
        .unwrap();
        qb.seal();
        qb.process_publish_events().unwrap();
        let report = qb.run_rank_round().unwrap();
        assert!(report.flagged_bees.is_empty());
        assert!(qb.rank_of("site/hub") > qb.rank_of("site/0"));
        // Bees earned rank bounties on top of index bounties.
        let bee_total: u64 = qb.bee_accounts().iter().map(|a| qb.chain.balance(*a)).sum();
        assert!(bee_total > 0);
        // The hub creator earned the popularity reward.
        assert!(qb.chain.balance(AccountId(1_100)) > qb.config().chain.publish_reward);
    }

    #[test]
    fn rank_rounds_are_deterministic_across_identical_engines() {
        // The registry iterates a HashMap whose order varies per instance;
        // before pages were sorted at graph-build time, node ids — and with
        // them the block partition the collusion defense medians over —
        // differed between otherwise identical runs, making E6's
        // rank_inflation_x jitter. Two identical engines must now produce
        // byte-identical rank rounds.
        let build = || {
            let mut qb = engine();
            for i in 0..8u64 {
                qb.publish(
                    1,
                    AccountId(1_000 + i),
                    &page(
                        &format!("site/{i}"),
                        "spoke page content words",
                        vec!["site/hub".into(), format!("site/{}", (i + 1) % 8)],
                    ),
                )
                .unwrap();
            }
            qb.publish(
                2,
                AccountId(1_100),
                &page("site/hub", "hub page everyone links here", vec![]),
            )
            .unwrap();
            qb.publish(
                1,
                AccountId(6_000),
                &page("evil/spam", "buy cheap honey now", vec![]),
            )
            .unwrap();
            qb.seal();
            qb.process_publish_events().unwrap();
            qb.apply_collusion(&CollusionAttack::new(0.5, vec!["evil/spam".into()]));
            let report = qb.run_rank_round().unwrap();
            (report, qb.rank_of("evil/spam"))
        };
        let (a, spam_a) = build();
        let (b, spam_b) = build();
        assert_eq!(a.ranks, b.ranks, "rank vectors must be byte-identical");
        assert_eq!(a.flagged_bees, b.flagged_bees);
        assert_eq!(
            spam_a.to_bits(),
            spam_b.to_bits(),
            "the collusion rank path must not jitter between runs"
        );
    }

    #[test]
    fn batch_window_fetches_each_distinct_term_once() {
        use crate::query::{RoutingPolicy, SearchRequest};
        let publish_set = |qb: &mut QueenBee| {
            qb.publish(
                1,
                AccountId(1_000),
                &page("wiki/a", "meadow honey nectar pollen", vec![]),
            )
            .unwrap();
            qb.publish(
                2,
                AccountId(1_001),
                &page("wiki/b", "meadow honey clover fields", vec![]),
            )
            .unwrap();
            qb.seal();
            qb.process_publish_events().unwrap();
        };
        let requests = vec![
            SearchRequest::new("meadow honey").route(RoutingPolicy::HashPeer(3)),
            SearchRequest::new("honey nectar").route(RoutingPolicy::HashPeer(4)),
            SearchRequest::new("meadow clover").route(RoutingPolicy::HashPeer(5)),
        ];

        // No cache: the batch window is the only sharing mechanism.
        let mut batched = engine();
        publish_set(&mut batched);
        let responses = batched.search_batch(requests.clone()).unwrap();
        let fetches: usize = responses.iter().map(|r| r.shards_fetched()).sum();
        let shared: usize = responses.iter().map(|r| r.batch_shared()).sum();
        assert_eq!(fetches, 4, "distinct terms: meadow, honey, nectar, clover");
        assert_eq!(shared, 2, "meadow and honey are reused from the window");

        // Sequential execution of the same stream on an identical engine
        // pays per-query fetches but returns byte-identical hits.
        let mut sequential = engine();
        publish_set(&mut sequential);
        let mut seq_fetches = 0usize;
        let mut seq_messages = 0u64;
        for (request, batched_response) in requests.into_iter().zip(&responses) {
            let response = sequential.search_request(request).unwrap();
            seq_fetches += response.shards_fetched();
            seq_messages += response.messages();
            assert_eq!(response.hits, batched_response.hits);
            assert_eq!(response.total_matches, batched_response.total_matches);
        }
        assert_eq!(seq_fetches, 6, "sequential pays every term again");
        let batch_messages: u64 = responses.iter().map(|r| r.messages()).sum();
        assert!(
            batch_messages < seq_messages,
            "batching must cut total RPC messages ({batch_messages} vs {seq_messages})"
        );
    }

    #[test]
    fn pipelined_execution_matches_sequential_results_and_cuts_makespan() {
        use crate::query::{PipelineConfig, RoutingPolicy, SearchRequest};
        let publish_set = |qb: &mut QueenBee| {
            qb.publish(
                1,
                AccountId(1_000),
                &page("wiki/a", "meadow honey nectar pollen", vec![]),
            )
            .unwrap();
            qb.publish(
                2,
                AccountId(1_001),
                &page("wiki/b", "meadow honey clover fields", vec![]),
            )
            .unwrap();
            qb.seal();
            qb.process_publish_events().unwrap();
        };
        // A duplicate-heavy stream: four windows of two, with the same
        // query recurring across (and within) windows.
        let queries = [
            "meadow honey",
            "meadow honey",
            "honey nectar",
            "meadow honey",
            "meadow clover",
            "honey nectar",
            "meadow honey",
            "clover fields",
        ];
        let requests = |offset: u64| -> Vec<SearchRequest> {
            queries
                .iter()
                .enumerate()
                .map(|(i, q)| {
                    SearchRequest::new(*q).route(RoutingPolicy::HashPeer(offset + i as u64))
                })
                .collect()
        };

        // Sequential reference (windows of one, no memo).
        let mut sequential = engine();
        publish_set(&mut sequential);
        let mut seq_hits = Vec::new();
        for req in requests(3) {
            seq_hits.push(sequential.search_request(req).unwrap().hits);
        }
        let seq_invocations = sequential.query_stats().score_invocations;

        // Back-to-back windows (the PR 3 path): makespan = sum of window
        // latencies.
        let mut b2b = engine();
        publish_set(&mut b2b);
        let mut b2b_makespan = SimDuration::ZERO;
        for window in requests(3).chunks(2) {
            let responses = b2b.search_batch(window.to_vec()).unwrap();
            b2b_makespan += qb_simnet::parallel_latency(
                &responses.iter().map(|r| r.latency).collect::<Vec<_>>(),
            );
        }
        let b2b_invocations = b2b.query_stats().score_invocations;

        // Pipelined: same stream, windows of two, overlapped.
        let mut pipelined = engine();
        publish_set(&mut pipelined);
        let outcome = pipelined
            .search_pipelined(
                requests(3),
                PipelineConfig {
                    window_size: 2,
                    max_windows_in_flight: 4,
                    ..PipelineConfig::default()
                },
            )
            .unwrap();
        assert_eq!(outcome.responses.len(), queries.len());
        for (resp, seq) in outcome.responses.iter().zip(&seq_hits) {
            assert_eq!(&resp.hits, seq, "pipelined results must be byte-identical");
        }
        let report = outcome.report;
        assert_eq!(report.windows, 4);
        assert!(
            report.makespan < b2b_makespan,
            "overlap must beat back-to-back ({} vs {b2b_makespan})",
            report.makespan
        );
        assert!(report.memo_hits > 0, "duplicate queries must hit the memo");
        assert!(report.peak_windows_in_flight > 1, "windows must overlap");
        let stats = pipelined.query_stats();
        assert_eq!(stats.pipelined_windows, 4);
        assert_eq!(stats.pipelined_queries, queries.len() as u64);
        assert_eq!(stats.window_memo_hits, report.memo_hits);
        assert!(
            stats.score_invocations < b2b_invocations,
            "memo must cut intersect/score invocations ({} vs {})",
            stats.score_invocations,
            b2b_invocations
        );
        assert!(stats.score_invocations < seq_invocations);
        // The async tracker was fully drained, and every fetch expanded
        // into at least one per-hop asynchronous operation on the wire.
        assert_eq!(pipelined.net.async_in_flight(), 0);
        assert!(
            pipelined.net.stats().async_ops >= report.shard_fetches + report.stats_reads,
            "event-driven fetches issue at least one async op each ({} vs {})",
            pipelined.net.stats().async_ops,
            report.shard_fetches + report.stats_reads
        );
    }

    #[test]
    fn depth_one_pipeline_degenerates_to_back_to_back() {
        use crate::query::{PipelineConfig, RoutingPolicy, SearchRequest};
        let mut qb = engine();
        qb.publish(
            1,
            AccountId(1_000),
            &page("wiki/a", "larkspur bumble crickets", vec![]),
        )
        .unwrap();
        qb.seal();
        qb.process_publish_events().unwrap();
        let requests: Vec<SearchRequest> = (0..4)
            .map(|i| SearchRequest::new("larkspur crickets").route(RoutingPolicy::HashPeer(i)))
            .collect();
        let outcome = qb
            .search_pipelined(
                requests,
                PipelineConfig {
                    window_size: 2,
                    max_windows_in_flight: 1,
                    ..PipelineConfig::default()
                },
            )
            .unwrap();
        assert_eq!(outcome.report.peak_windows_in_flight, 1);
        // With one window in flight the makespan is the sum of the window
        // tails: no window ever overlaps another.
        assert!(outcome.report.makespan >= outcome.responses[0].latency);
        assert_eq!(outcome.responses.len(), 4);
    }

    fn cached_engine() -> QueenBee {
        let mut config = QueenBeeConfig::small();
        config.cache = qb_cache::CacheConfig::enabled();
        QueenBee::new(config).unwrap()
    }

    #[test]
    fn warm_repeated_query_issues_no_rpc_messages() {
        let mut qb = cached_engine();
        qb.publish(
            1,
            AccountId(1_000),
            &page("wiki/dweb", "peers serve the decentralized web", vec![]),
        )
        .unwrap();
        qb.seal();
        qb.process_publish_events().unwrap();

        let cold = qb.search(5, "decentralized peers").unwrap();
        assert!(!cold.result_cache_hit);
        assert!(cold.messages > 0);
        assert!(cold.shards_fetched > 0);

        let warm = qb.search(5, "decentralized peers").unwrap();
        assert!(warm.result_cache_hit);
        assert_eq!(warm.messages, 0, "warm query must not touch the DHT");
        assert_eq!(warm.shards_fetched, 0);
        assert!(warm.latency < cold.latency);
        assert_eq!(warm.results, cold.results);

        // Term order must not defeat the result cache.
        let reordered = qb.search(5, "peers decentralized").unwrap();
        assert!(reordered.result_cache_hit);

        let m = qb.cache_metrics().expect("cache enabled");
        assert_eq!(m.result.hits, 2);
        assert!(m.result.misses >= 1);
    }

    #[test]
    fn shard_cache_serves_overlapping_queries() {
        let mut qb = cached_engine();
        qb.publish(
            1,
            AccountId(1_000),
            &page("wiki/honey", "honey and nectar from bees", vec![]),
        )
        .unwrap();
        qb.seal();
        qb.process_publish_events().unwrap();

        let first = qb.search(3, "honey nectar").unwrap();
        assert_eq!(first.shard_cache_hits, 0);
        // A different query sharing a term reuses that term's cached shard.
        let second = qb.search(3, "honey bees").unwrap();
        assert!(!second.result_cache_hit);
        assert!(second.shard_cache_hits >= 1);
        assert!(second.messages < first.messages);
    }

    #[test]
    fn republish_invalidates_cached_results_immediately() {
        let mut qb = cached_engine();
        let creator = AccountId(1_000);
        qb.publish(
            1,
            creator,
            &page("news/today", "headline about honeybadgers", vec![]),
        )
        .unwrap();
        qb.seal();
        qb.process_publish_events().unwrap();

        // Warm the cache on the old version.
        let v1 = qb.search(4, "honeybadgers").unwrap();
        assert_eq!(v1.results[0].version, 1);
        assert!(qb.search(4, "honeybadgers").unwrap().result_cache_hit);

        // Republish: same term, new version. Indexing must purge the entry.
        qb.publish(
            1,
            creator,
            &page("news/today", "fresh honeybadgers exclusive", vec![]),
        )
        .unwrap();
        qb.seal();
        qb.process_publish_events().unwrap();

        let after = qb.search(4, "honeybadgers").unwrap();
        assert!(!after.result_cache_hit, "stale entry must not serve");
        assert_eq!(after.results[0].version, 2);
        assert_eq!(qb.freshness.stale_results, 0, "no stale result ever served");
        let m = qb.cache_metrics().unwrap();
        assert!(m.total_invalidations() > 0);
    }

    #[test]
    fn negative_cache_suppresses_repeat_lookups_for_absent_terms() {
        let mut qb = cached_engine();
        qb.publish(
            1,
            AccountId(1_000),
            &page("wiki/a", "ordinary page body", vec![]),
        )
        .unwrap();
        qb.seal();
        qb.process_publish_events().unwrap();

        let cold = qb.search(2, "nonexistentterm").unwrap();
        assert!(cold.results.is_empty());
        assert!(cold.messages > 0);
        // The result cache would satisfy the identical query; a *different*
        // query sharing the absent term exercises the negative tier.
        let warm = qb.search(2, "nonexistentterm ordinary").unwrap();
        assert_eq!(warm.negative_cache_hits, 1);
        // Once the term is published, the negative entry dies.
        qb.publish(
            1,
            AccountId(1_000),
            &page("wiki/b", "nonexistentterm appears now", vec![]),
        )
        .unwrap();
        qb.seal();
        qb.process_publish_events().unwrap();
        let found = qb.search(2, "nonexistentterm").unwrap();
        assert_eq!(found.negative_cache_hits, 0);
        assert_eq!(found.results.len(), 1);
    }

    #[test]
    fn cache_disabled_preserves_seed_behavior() {
        let mut qb = engine();
        qb.publish(
            1,
            AccountId(1_000),
            &page("wiki/x", "plain page about caching", vec![]),
        )
        .unwrap();
        qb.seal();
        qb.process_publish_events().unwrap();
        assert!(qb.cache_metrics().is_none());
        let a = qb.search(5, "caching").unwrap();
        let b = qb.search(5, "caching").unwrap();
        assert!(!a.result_cache_hit && !b.result_cache_hit);
        assert_eq!(
            a.messages, b.messages,
            "no warm-up effect without the cache"
        );
    }

    fn fleet_engine(n: usize, gossip_on: bool) -> QueenBee {
        let mut config = QueenBeeConfig::small();
        config.cache = qb_cache::CacheConfig::enabled();
        config.gossip = if gossip_on {
            qb_gossip::GossipConfig::enabled(n)
        } else {
            qb_gossip::GossipConfig::fleet(n)
        };
        QueenBee::new(config).unwrap()
    }

    #[test]
    fn fleet_frontends_have_private_caches() {
        let mut qb = fleet_engine(3, false);
        qb.publish(
            5,
            AccountId(1_000),
            &page("wiki/fleet", "frontends cache privately", vec![]),
        )
        .unwrap();
        qb.seal();
        qb.process_publish_events().unwrap();
        assert_eq!(qb.num_frontends(), 3);
        let cold0 = qb.search_from(0, "frontends privately").unwrap();
        assert!(cold0.shards_fetched > 0);
        // Without gossip, frontend 1 cold-starts on its own.
        let cold1 = qb.search_from(1, "frontends privately").unwrap();
        assert!(cold1.shards_fetched > 0, "no sharing without gossip");
        // But each frontend's own repeat is warm.
        let warm0 = qb.search_from(0, "frontends privately").unwrap();
        assert!(warm0.result_cache_hit);
        // search() routes by rendezvous hash over the live fleet; peer 3's
        // winning slot is one of the two frontends warmed above.
        let routed = qb.search(3, "frontends privately").unwrap();
        assert!(routed.result_cache_hit, "peer 3 routes to a warm frontend");
        // search_from out of range / without a fleet errors cleanly.
        assert!(qb.search_from(9, "x").is_err());
        assert!(engine().search_from(0, "x").is_err());
    }

    #[test]
    fn gossip_warms_the_rest_of_the_fleet() {
        let mut qb = fleet_engine(3, true);
        qb.publish(
            5,
            AccountId(1_000),
            &page("wiki/swarm", "gossip spreads cached shards", vec![]),
        )
        .unwrap();
        qb.seal();
        qb.process_publish_events().unwrap();
        let cold = qb.search_from(0, "gossip shards").unwrap();
        assert!(cold.shards_fetched > 0);
        qb.run_gossip_round(false);
        for i in 1..3 {
            let warmed = qb.search_from(i, "gossip shards").unwrap();
            assert_eq!(
                warmed.shards_fetched, 0,
                "frontend {i} should be warm after the gossip round"
            );
            assert!(warmed.shard_cache_hits > 0);
            assert_eq!(warmed.results, cold.results);
        }
        let stats = qb.gossip_stats().unwrap();
        assert!(stats.shards_accepted >= 2);
        assert!(stats.total_bytes() > 0);
        assert_eq!(stats.stale_rejected, 0);
        assert_eq!(qb.freshness.stale_results, 0);
    }

    #[test]
    fn gossip_rounds_fire_as_time_advances() {
        let mut qb = fleet_engine(2, true);
        qb.publish(
            5,
            AccountId(1_000),
            &page("a/b", "timed gossip rounds", vec![]),
        )
        .unwrap();
        qb.seal();
        qb.process_publish_events().unwrap();
        qb.search_from(0, "timed rounds").unwrap();
        assert_eq!(qb.gossip_stats().unwrap().rounds, 0, "not due yet");
        let interval = qb.config().gossip.round_interval;
        qb.advance_time(interval);
        assert!(qb.gossip_stats().unwrap().rounds >= 1);
        let warmed = qb.search_from(1, "timed rounds").unwrap();
        assert_eq!(warmed.shards_fetched, 0);
    }

    #[test]
    fn fleet_join_bootstraps_from_the_fleet_not_the_dht() {
        let mut qb = fleet_engine(3, true);
        qb.publish(
            10,
            AccountId(1_000),
            &page(
                "wiki/churn",
                "churned frontends warm from neighbours",
                vec![],
            ),
        )
        .unwrap();
        qb.seal();
        qb.process_publish_events().unwrap();
        // Warm the fleet through one frontend + a gossip round.
        qb.search_from(0, "churned neighbours").unwrap();
        qb.run_gossip_round(false);
        // A fourth frontend joins and is warm *before* its first query.
        let idx = qb.fleet_join().unwrap();
        assert_eq!(idx, 3);
        assert_eq!(qb.num_frontends(), 4);
        let out = qb.search_from(idx, "churned neighbours").unwrap();
        assert_eq!(
            out.shards_fetched, 0,
            "the joiner's bootstrap must warm it without DHT fetches"
        );
        assert!(out.shard_cache_hits > 0);
        assert_eq!(qb.freshness.stale_results, 0);
        assert_eq!(qb.gossip_stats().unwrap().joins, 1);
    }

    fn segment_fleet_engine(n: usize) -> QueenBee {
        let mut config = QueenBeeConfig::small();
        config.cache = qb_cache::CacheConfig::enabled();
        config.gossip = qb_gossip::GossipConfig::enabled(n);
        config.segment = qb_segment::SegmentConfig::enabled();
        // Compact on every publish batch so the tests see artifacts
        // without bulk workloads.
        config.segment.max_pending_terms = 1;
        QueenBee::new(config).unwrap()
    }

    #[test]
    fn writer_compaction_publishes_generational_artifacts() {
        let mut qb = segment_fleet_engine(2);
        qb.publish(
            10,
            AccountId(1_000),
            &page("wiki/seg", "segments compact writer output", vec![]),
        )
        .unwrap();
        qb.seal();
        qb.process_publish_events().unwrap();
        let s = qb.segment_stats();
        assert_eq!(s.compactions, 1);
        assert_eq!(s.segments_published, 1);
        assert!(s.publish_bytes > 0, "publishing an artifact is never free");
        let first = qb.latest_segment().unwrap();
        assert_eq!(first.generation, 1);
        assert!(first.term_count > 0);
        assert_eq!(qb.pending_segment_terms(), 0, "compaction drains pending");
        // A second batch folds forward into generation 2, keeping at least
        // the previously published terms (version-dominant merge).
        qb.publish(
            10,
            AccountId(1_000),
            &page("wiki/seg2", "segments keep merging forward", vec![]),
        )
        .unwrap();
        qb.seal();
        qb.process_publish_events().unwrap();
        let second = qb.latest_segment().unwrap();
        assert_eq!(second.generation, 2);
        assert!(second.term_count >= first.term_count);
        assert_eq!(qb.segment_stats().compactions, 2);
    }

    #[test]
    fn segment_join_bulk_bootstraps_a_new_frontend() {
        let mut qb = segment_fleet_engine(2);
        qb.publish(
            10,
            AccountId(1_000),
            &page("wiki/boot", "artifact bootstrap warms joiners", vec![]),
        )
        .unwrap();
        qb.seal();
        qb.process_publish_events().unwrap();
        assert!(qb.latest_segment().is_some());
        let (idx, report) = qb.fleet_join_with_segment().unwrap();
        assert_eq!(idx, 2);
        assert!(report.used_segment, "an advertised artifact must be used");
        assert!(report.imported.accepted > 0);
        let s = qb.segment_stats();
        assert_eq!(s.segments_fetched, 1);
        assert!(s.fetch_bytes > 0, "fetching an artifact is never free");
        assert_eq!(s.shards_imported, report.imported.accepted);
        let out = qb.search_from(idx, "artifact bootstrap").unwrap();
        assert_eq!(out.shards_fetched, 0, "the import must warm the joiner");
        assert!(out.shard_cache_hits > 0);
        assert_eq!(
            qb.freshness.stale_results, 0,
            "no stale serves after import"
        );
        // The segment counters ride the unified metrics snapshot.
        let snap = qb.metrics_snapshot();
        assert_eq!(snap.counter("segment.segments_fetched"), 1);
        assert!(snap.counter("segment.publish_bytes") > 0);
    }

    #[test]
    fn segment_join_falls_back_to_gossip_without_an_artifact() {
        // Segments disabled: no artifact is ever advertised, so the same
        // call bootstraps through the ordinary gossip exchange.
        let mut qb = fleet_engine(2, true);
        qb.publish(
            10,
            AccountId(1_000),
            &page("wiki/fallback", "no artifact means gossip warmup", vec![]),
        )
        .unwrap();
        qb.seal();
        qb.process_publish_events().unwrap();
        qb.search_from(0, "artifact gossip").unwrap();
        qb.run_gossip_round(false);
        let (idx, report) = qb.fleet_join_with_segment().unwrap();
        assert!(!report.used_segment);
        assert_eq!(qb.segment_stats().segments_fetched, 0);
        let out = qb.search_from(idx, "artifact gossip").unwrap();
        assert_eq!(out.shards_fetched, 0, "gossip fallback still warms");
    }

    #[test]
    fn fleet_leave_and_rejoin_route_around_departed_frontends() {
        let mut qb = fleet_engine(3, true);
        qb.publish(
            10,
            AccountId(1_000),
            &page("wiki/leave", "departures reroute queries", vec![]),
        )
        .unwrap();
        qb.seal();
        qb.process_publish_events().unwrap();
        qb.search_from(0, "departures reroute").unwrap();
        qb.run_gossip_round(false);

        qb.fleet_leave(1, true).unwrap();
        // Direct routing to the departed frontend fails cleanly...
        assert!(qb.search_from(1, "departures reroute").is_err());
        assert!(
            qb.fleet_rejoin(0).is_err(),
            "active frontends cannot rejoin"
        );
        // ...while hashed routing falls over to a surviving slot.
        let routed = qb.search(1, "departures reroute").unwrap();
        assert!(!routed.results.is_empty());
        // A crashed frontend rejoins with a fleet-warmed cache.
        qb.fleet_leave(2, false).unwrap();
        assert_eq!(qb.gossip_stats().unwrap().crashes, 1);
        qb.fleet_rejoin(2).unwrap();
        let out = qb.search_from(2, "departures reroute").unwrap();
        assert_eq!(out.shards_fetched, 0, "rejoin warms from the fleet");
        assert_eq!(qb.freshness.stale_results, 0);
        let stats = qb.gossip_stats().unwrap();
        assert_eq!(stats.leaves, 1);
        assert_eq!(stats.joins, 1, "rejoin counts as a join");
    }

    #[test]
    fn crashed_slot_keyspace_spreads_across_the_surviving_fleet() {
        use std::collections::HashSet;
        let mut qb = fleet_engine(8, true);
        // Peers whose rendezvous winner is slot 2 — the keyspace a crash
        // of that slot orphans.
        let orphans: Vec<u64> = (0..512u64)
            .filter(|&p| qb.route_frontend(&RoutingPolicy::HashPeer(p)).unwrap() == Some(2))
            .collect();
        assert!(
            orphans.len() > 16,
            "rendezvous gives slot 2 roughly 1/8 of 512 peers, got {}",
            orphans.len()
        );
        qb.fleet_leave(2, false).unwrap();
        let landed: HashSet<usize> = orphans
            .iter()
            .map(|&p| {
                let f = qb
                    .route_frontend(&RoutingPolicy::HashPeer(p))
                    .unwrap()
                    .expect("fleet mode");
                assert_ne!(f, 2, "crashed slot must not serve");
                f
            })
            .collect();
        // Each orphaned peer falls over to its own second choice, so the
        // dead slot's keyspace spreads across at least half the survivors.
        assert!(
            landed.len() * 2 >= 7,
            "orphans landed on only {} of 7 survivors",
            landed.len()
        );
        // The seed's ring walk dumps its entire orphaned keyspace (peers
        // hashing to slot 2 modulo 8) onto the single ring successor.
        let ring_landed: HashSet<usize> = (0..512u64)
            .filter(|p| p % 8 == 2)
            .map(|p| {
                qb.route_frontend(&RoutingPolicy::RingSuccessor(p))
                    .unwrap()
                    .expect("fleet mode")
            })
            .collect();
        assert_eq!(
            ring_landed,
            HashSet::from([3]),
            "ring-successor failover concentrates on one slot"
        );
    }

    #[test]
    fn writer_path_reuses_cached_shards_on_reindex() {
        let mut qb = cached_engine();
        let creator = AccountId(1_000);
        qb.publish(
            1,
            creator,
            &page("news/cycle", "rolling headline coverage", vec![]),
        )
        .unwrap();
        qb.seal();
        qb.process_publish_events().unwrap();
        let (reads_v1, hits_v1) = qb.writer_cache_stats();
        assert!(reads_v1 > 0);
        assert_eq!(hits_v1, 0, "first index of each term must read the DHT");
        // Republishing the same page merges the same terms: the writer path
        // now serves them from its shard tier instead of re-reading the DHT.
        qb.publish(
            1,
            creator,
            &page("news/cycle", "rolling headline coverage", vec![]),
        )
        .unwrap();
        qb.seal();
        qb.process_publish_events().unwrap();
        let (reads_v2, hits_v2) = qb.writer_cache_stats();
        assert!(reads_v2 > reads_v1);
        assert_eq!(
            hits_v2,
            reads_v2 - reads_v1,
            "every re-merged term should hit the writer cache"
        );
        // The version discipline held: the fresh version serves.
        let out = qb.search(4, "headline").unwrap();
        assert_eq!(out.results[0].version, 2);
        assert_eq!(qb.freshness.stale_results, 0);
    }

    #[test]
    fn warm_start_prefills_a_restarted_frontend() {
        let build = || {
            let mut qb = cached_engine();
            qb.publish(
                1,
                AccountId(1_000),
                &page(
                    "wiki/persist",
                    "warm start snapshots survive restarts",
                    vec![],
                ),
            )
            .unwrap();
            qb.seal();
            qb.process_publish_events().unwrap();
            qb
        };
        let mut first = build();
        let cold = first.search(5, "snapshots survive").unwrap();
        assert!(cold.shards_fetched > 0);
        let snapshot = first.export_hot_set(0, 16).expect("cache enabled");
        // Same deployment, restarted: import the previous session's hot set.
        let mut restarted = build();
        let admitted = restarted.import_hot_set(0, &snapshot).unwrap();
        assert!(admitted > 0);
        let warm = restarted.search(5, "snapshots survive").unwrap();
        assert_eq!(
            warm.shards_fetched, 0,
            "pre-filled shards serve the first query"
        );
        assert!(warm.shard_cache_hits > 0);
        assert_eq!(warm.results, cold.results);
    }

    #[test]
    fn ad_click_splits_revenue() {
        let mut qb = engine();
        qb.publish(
            1,
            AccountId(1_000),
            &page("shop/rust", "buy rusty decentralized widgets", vec![]),
        )
        .unwrap();
        qb.seal();
        qb.process_publish_events().unwrap();
        let spec = AdSpec {
            advertiser: 5_000,
            keywords: vec![Analyzer::stem("widgets")],
            bid_per_click: 100,
            budget: 1_000,
        };
        qb.register_advertiser(&spec).unwrap();
        let out = qb.search(3, "decentralized widgets").unwrap();
        assert!(out.ad.is_some(), "an ad should match the query");
        let creator_before = qb.chain.balance(AccountId(1_000));
        let clicked = qb.click_ad(&out).unwrap();
        assert!(clicked);
        assert!(qb.chain.balance(AccountId(1_000)) > creator_before);
        let roles = qb.honey_by_role();
        assert_eq!(roles.total(), qb.chain.accounts().total_supply());
    }
}
