//! Engine configuration.

use qb_cache::CacheConfig;
use qb_chain::ChainConfig;
use qb_dht::DhtConfig;
use qb_gossip::GossipConfig;
use qb_rank::DecentralizedPageRank;
use qb_simnet::NetConfig;
use qb_storage::StorageConfig;

/// Configuration of a QueenBee deployment.
#[derive(Debug, Clone)]
pub struct QueenBeeConfig {
    /// Number of simulated peers (devices) in the DWeb.
    pub num_peers: usize,
    /// Number of worker bees (each bee runs on one peer).
    pub num_bees: usize,
    /// Network model.
    pub net: NetConfig,
    /// DHT parameters.
    pub dht: DhtConfig,
    /// Storage parameters (replication, chunking, caches).
    pub storage: StorageConfig,
    /// Blockchain parameters (rewards, revenue split, validators).
    pub chain: ChainConfig,
    /// Decentralized PageRank parameters (blocks, quorum, tolerance).
    pub rank: DecentralizedPageRank,
    /// Indexing verification quorum: number of bees independently indexing
    /// each published page version. 1 disables the collusion defense.
    pub index_quorum: usize,
    /// Weight of PageRank when blending with BM25 in the frontend.
    pub rank_weight: f64,
    /// Results returned per query.
    pub top_k: usize,
    /// Shards up to this encoded size are stored inline in DHT records.
    pub shard_inline_threshold: usize,
    /// Enable MinHash near-duplicate detection at publish time (the scraper
    /// defense).
    pub duplicate_detection: bool,
    /// Jaccard-similarity threshold above which a publish is rejected as a
    /// mirror of an existing page owned by someone else.
    pub duplicate_threshold: f64,
    /// Frontend query-serving cache (result/shard/negative tiers). Disabled
    /// by default so deployments keep the uncached seed behavior.
    pub cache: CacheConfig,
    /// Frontend fleet + cooperative cache-gossip overlay. Default-off; with
    /// `num_frontends > 0` the engine runs that many frontends with private
    /// caches (on peers `0..num_frontends`), and with `enabled` they gossip
    /// hot-shard digests and fills so one frontend's DHT fetch warms the
    /// rest of the fleet.
    pub gossip: GossipConfig,
    /// Writer-side segment compaction: accumulate published shards into
    /// pending index artifacts and periodically merge + publish them as
    /// content-addressed segments new frontends can bulk-bootstrap from.
    /// Default-off; with it off the engine never touches the segment path.
    pub segment: qb_segment::SegmentConfig,
    /// Open-loop admission control: bounded per-frontend ingress queues,
    /// load shedding and `Fresh` → `CacheOk` degradation. Default-off; only
    /// [`crate::QueenBee::serve_open_loop`] consults it, so every
    /// closed-loop path keeps its exact behavior.
    pub admission: crate::query::admission::AdmissionConfig,
    /// Stake each bee deposits at registration (slashable).
    pub bee_stake: u64,
    /// Honey slashed from a bee caught submitting manipulated data.
    pub slash_amount: u64,
    /// Master seed; every random decision in the engine derives from it.
    pub seed: u64,
}

impl Default for QueenBeeConfig {
    fn default() -> Self {
        QueenBeeConfig {
            num_peers: 64,
            num_bees: 8,
            net: NetConfig::default(),
            dht: DhtConfig::default(),
            storage: StorageConfig::default(),
            chain: ChainConfig::default(),
            rank: DecentralizedPageRank::default(),
            index_quorum: 3,
            rank_weight: 0.3,
            top_k: 10,
            shard_inline_threshold: 2048,
            duplicate_detection: true,
            duplicate_threshold: 0.8,
            cache: CacheConfig::default(),
            gossip: GossipConfig::default(),
            segment: qb_segment::SegmentConfig::default(),
            admission: crate::query::admission::AdmissionConfig::default(),
            bee_stake: 1_000,
            slash_amount: 500,
            seed: 0xBEE5,
        }
    }
}

impl QueenBeeConfig {
    /// A small, fast configuration for unit and integration tests.
    pub fn small() -> QueenBeeConfig {
        QueenBeeConfig {
            num_peers: 24,
            num_bees: 4,
            net: NetConfig::lan(),
            dht: DhtConfig::small(),
            storage: StorageConfig::small(),
            index_quorum: 3,
            ..QueenBeeConfig::default()
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), qb_common::QbError> {
        use qb_common::QbError;
        if self.num_peers == 0 {
            return Err(QbError::Config("num_peers must be positive".into()));
        }
        if self.num_bees == 0 || self.num_bees > self.num_peers {
            return Err(QbError::Config(format!(
                "num_bees must be in 1..={}, got {}",
                self.num_peers, self.num_bees
            )));
        }
        if self.index_quorum == 0 || self.index_quorum > self.num_bees {
            return Err(QbError::Config(format!(
                "index_quorum must be in 1..={}, got {}",
                self.num_bees, self.index_quorum
            )));
        }
        if !(0.0..=1.0).contains(&self.rank_weight) {
            return Err(QbError::Config("rank_weight must be within [0, 1]".into()));
        }
        if !(0.0..=1.0).contains(&self.duplicate_threshold) {
            return Err(QbError::Config(
                "duplicate_threshold must be within [0, 1]".into(),
            ));
        }
        self.cache.validate()?;
        self.gossip.validate()?;
        self.segment.validate().map_err(QbError::Config)?;
        if self.segment.enabled && !self.cache.enabled {
            return Err(QbError::Config(
                "segment compaction needs the query cache enabled (pending segments \
                 snapshot the writer cache's shard tier)"
                    .into(),
            ));
        }
        self.admission.validate()?;
        if self.gossip.num_frontends > 0 {
            if !self.cache.enabled {
                return Err(QbError::Config(
                    "a frontend fleet needs the query cache enabled (gossip fills land in its shard tier)"
                        .into(),
                ));
            }
            if self.gossip.num_frontends + self.num_bees > self.num_peers {
                return Err(QbError::Config(format!(
                    "num_frontends ({}) + num_bees ({}) must fit within num_peers ({})",
                    self.gossip.num_frontends, self.num_bees, self.num_peers
                )));
            }
            // Zone labels only mean something when they coincide with the
            // network's latency classes (both are `peer % zones`); a
            // mismatch would bias sampling toward labels with no latency
            // behind them while silently shrinking every sample pool.
            if self.gossip.enabled && self.gossip.zones > 1 && self.gossip.zones != self.net.zones {
                return Err(QbError::Config(format!(
                    "gossip zones ({}) must match the network's latency zones ({}) — \
                     pair GossipConfig::enabled_zoned(n, z) with NetConfig::zoned(z, ..)",
                    self.gossip.zones, self.net.zones
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(QueenBeeConfig::default().validate().is_ok());
        assert!(QueenBeeConfig::small().validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = QueenBeeConfig::small();
        c.num_bees = 0;
        assert!(c.validate().is_err());
        let mut c = QueenBeeConfig::small();
        c.num_bees = c.num_peers + 1;
        assert!(c.validate().is_err());
        let mut c = QueenBeeConfig::small();
        c.index_quorum = c.num_bees + 1;
        assert!(c.validate().is_err());
        let mut c = QueenBeeConfig::small();
        c.rank_weight = 1.5;
        assert!(c.validate().is_err());
        let mut c = QueenBeeConfig::small();
        c.num_peers = 0;
        assert!(c.validate().is_err());
        // An enabled cache with a zero budget is invalid; disabled is fine.
        let mut c = QueenBeeConfig::small();
        c.cache = CacheConfig::enabled();
        c.cache.shard_capacity_bytes = 0;
        assert!(c.validate().is_err());
        c.cache.enabled = false;
        assert!(c.validate().is_ok());
        // A frontend fleet requires the cache and room next to the bees.
        let mut c = QueenBeeConfig::small();
        c.gossip = GossipConfig::enabled(4);
        assert!(c.validate().is_err(), "fleet without cache is invalid");
        c.cache = CacheConfig::enabled();
        assert!(c.validate().is_ok());
        c.gossip.num_frontends = c.num_peers;
        assert!(c.validate().is_err(), "fleet + bees must fit in the peers");
        // Gossip zone labels must coincide with the network's latency
        // zones; zone-unaware gossip (zones = 1) pairs with any network.
        let mut c = QueenBeeConfig::small();
        c.cache = CacheConfig::enabled();
        c.gossip = GossipConfig::enabled_zoned(4, 4);
        assert!(c.validate().is_err(), "zoned gossip over an unzoned net");
        c.net = qb_simnet::NetConfig::zoned(4, 2_000, 40_000);
        assert!(c.validate().is_ok());
        c.gossip.zones = 1;
        assert!(c.validate().is_ok(), "unzoned gossip runs on any net");
        // Segment compaction needs the cache; an enabled config with a
        // zero threshold is invalid.
        let mut c = QueenBeeConfig::small();
        c.segment = qb_segment::SegmentConfig::enabled();
        assert!(
            c.validate().is_err(),
            "segments without a cache are invalid"
        );
        c.cache = CacheConfig::enabled();
        assert!(c.validate().is_ok());
        c.segment.max_pending_terms = 0;
        assert!(c.validate().is_err());
        // An enabled admission layer with degenerate knobs is invalid;
        // the default (disabled) tolerates them.
        let mut c = QueenBeeConfig::small();
        c.admission = crate::query::admission::AdmissionConfig::enabled();
        assert!(c.validate().is_ok());
        c.admission.window_size = 0;
        assert!(c.validate().is_err());
        c.admission.enabled = false;
        assert!(c.validate().is_ok());
    }
}
