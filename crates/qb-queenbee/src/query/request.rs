//! [`SearchRequest`]: what a caller asks the query frontend for.
//!
//! The seed API (`search(peer, text)`) could only express "this peer asks
//! this query": top-k, pagination, routing and freshness were all implicit.
//! A `SearchRequest` makes every knob explicit and builder-style, so the
//! planner can analyze a whole batch of requests before any network traffic
//! is issued.

use qb_common::SimDuration;

/// How the request reaches a frontend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Issue the query from this simulated peer. In fleet mode the request
    /// is routed with rendezvous (highest-random-weight) hashing plus
    /// power-of-two-choices over the *live* membership: the two
    /// highest-scoring active frontends for the peer are candidates and the
    /// one advertising less load (gossip-propagated EWMA of recently served
    /// queries) wins. A crashed frontend's keyspace therefore spreads
    /// across the whole surviving fleet instead of piling onto one ring
    /// successor.
    HashPeer(u64),
    /// The seed's implicit modulo behaviour: frontend `peer %
    /// num_frontends`, walking the ring to the next active slot when that
    /// frontend is down. Kept as an explicit policy so experiments can
    /// measure the post-crash load spike [`RoutingPolicy::HashPeer`]
    /// eliminates.
    RingSuccessor(u64),
    /// Serve at this specific fleet frontend (errors without a fleet or when
    /// the index is out of range, exactly like the old `search_from`).
    Direct(usize),
}

/// How stale an answer the caller tolerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Freshness {
    /// Bypass the result/shard/negative tiers entirely: every term is
    /// re-fetched through the versioned DHT read. The fetched shards still
    /// warm the cache afterwards.
    Fresh,
    /// The default: serve from the cache tiers under the usual version
    /// checks (a superseded entry never serves).
    CacheOk,
    /// Like `CacheOk`, but a cached shard whose version has been superseded
    /// may still serve when it was stored no more than this long ago —
    /// trading a bounded amount of staleness for skipping the DHT trip
    /// (useful when the DHT is partitioned or under load).
    MaxStaleness(SimDuration),
}

/// A fully specified query, built with a fluent builder:
///
/// ```ignore
/// let req = SearchRequest::new("decentralized web")
///     .top_k(5)
///     .page(1)
///     .route(RoutingPolicy::Direct(2))
///     .freshness(Freshness::MaxStaleness(SimDuration::from_secs(30)))
///     .ads(false);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchRequest {
    /// The raw query text (analyzed and deduplicated by the planner).
    pub query: String,
    /// Results per page; `None` uses the engine's configured `top_k`.
    pub top_k: Option<usize>,
    /// Zero-based page index; hits `page * top_k ..` of the ranked list.
    pub page: usize,
    /// Frontend routing.
    pub routing: RoutingPolicy,
    /// Staleness tolerance.
    pub freshness: Freshness,
    /// Whether to attach an ad from the on-chain market.
    pub ads: bool,
}

impl SearchRequest {
    /// A request with the seed defaults: engine top-k, first page, routed
    /// from peer 0, cache-friendly freshness, ads on.
    pub fn new(query: impl Into<String>) -> SearchRequest {
        SearchRequest {
            query: query.into(),
            top_k: None,
            page: 0,
            routing: RoutingPolicy::HashPeer(0),
            freshness: Freshness::CacheOk,
            ads: true,
        }
    }

    /// Results per page (overrides the engine's configured `top_k`).
    pub fn top_k(mut self, k: usize) -> SearchRequest {
        self.top_k = Some(k);
        self
    }

    /// Zero-based page of the ranked list to return.
    pub fn page(mut self, page: usize) -> SearchRequest {
        self.page = page;
        self
    }

    /// Frontend routing policy.
    pub fn route(mut self, routing: RoutingPolicy) -> SearchRequest {
        self.routing = routing;
        self
    }

    /// Staleness tolerance.
    pub fn freshness(mut self, freshness: Freshness) -> SearchRequest {
        self.freshness = freshness;
        self
    }

    /// Attach (or suppress) an ad next to the results.
    pub fn ads(mut self, ads: bool) -> SearchRequest {
        self.ads = ads;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_the_seed_behaviour() {
        let req = SearchRequest::new("worker bees");
        assert_eq!(req.query, "worker bees");
        assert_eq!(req.top_k, None, "engine top_k applies");
        assert_eq!(req.page, 0);
        assert_eq!(req.routing, RoutingPolicy::HashPeer(0));
        assert_eq!(req.freshness, Freshness::CacheOk);
        assert!(req.ads);
    }

    #[test]
    fn builder_sets_every_knob() {
        let req = SearchRequest::new("honey")
            .top_k(3)
            .page(2)
            .route(RoutingPolicy::Direct(1))
            .freshness(Freshness::MaxStaleness(SimDuration::from_secs(30)))
            .ads(false);
        assert_eq!(req.top_k, Some(3));
        assert_eq!(req.page, 2);
        assert_eq!(req.routing, RoutingPolicy::Direct(1));
        assert_eq!(
            req.freshness,
            Freshness::MaxStaleness(SimDuration::from_secs(30))
        );
        assert!(!req.ads);
    }
}
