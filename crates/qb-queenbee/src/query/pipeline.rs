//! The pipelined execution engine: overlapping windows whose individual
//! DHT fetches run as event-driven state machines on one shared virtual
//! timeline.
//!
//! # The state machine
//!
//! [`QueenBee::search_batch`](crate::QueenBee::search_batch) runs its three
//! stages in lockstep: the whole window is planned, then fetched, then
//! scored, and the next window starts only after the previous one finished.
//! The [`PipelineDriver`] breaks that lockstep. Every window moves through
//! an explicit [`WindowState`]:
//!
//! ```text
//!   Planned ──issue fetches──▶ Fetching ──all machines done──▶ Scoring ──▶ Done
//! ```
//!
//! * **Planned** — the window's requests are analyzed against the serving
//!   frontend's cache tiers ([`plan_request`](crate::query::plan)); no
//!   network traffic yet.
//! * **Fetching** — each distinct missing `(frontend, term)` shard (plus at
//!   most one statistics record per window) becomes an **event-driven read
//!   machine** ([`qb_index::ShardReadMachine`]): a per-lookup α-frontier
//!   state machine whose individual DHT hops are issued through
//!   [`qb_simnet::SimNet::send_async_at`] on the origin peer's uplink. The
//!   per-peer in-flight limit
//!   ([`qb_simnet::NetConfig::max_in_flight_per_link`]) queues excess hops
//!   — *hop by hop*, so the hops of different windows genuinely interleave
//!   on a contended link — and every queue delay is charged to
//!   [`qb_simnet::NetStats`] and to the window.
//! * **Scoring** — once the window's slowest machine completes, shards are
//!   intersected and scored. Identical and prefix-sharing queries in the
//!   in-flight window set resolve against the window-scoped
//!   [`WindowMemo`]: a scored list tagged with the exact per-term shard
//!   versions it was computed from serves every duplicate without
//!   re-running intersect/score.
//! * **Done** — responses are assembled, fetched shards fan out into the
//!   serving cache, and (in fleet mode) the window's freshly fetched shard
//!   keys are queued as **batch-aware gossip advertisements**
//!   ([`qb_gossip::GossipFleet::note_batch_fetches`]) so the next digest
//!   round warms the rest of the fleet one round earlier.
//!
//! # The event loop
//!
//! The driver owns a cursor on the virtual timeline and repeatedly takes
//! the earliest pending event: *issue* a window (when a pipeline slot is
//! free and the issue instant is due) or *advance* the in-flight machines
//! to their next completion. Windows retire in FIFO order (like a CPU
//! pipeline) so cache stores happen in a deterministic sequence; the
//! **makespan** of the whole stream is the completion instant of the last
//! window, which experiment E13 compares against back-to-back execution of
//! the same stream (≥30% lower on a duplicate-heavy Zipf stream, with
//! byte-identical per-query results).
//!
//! # Self-steering
//!
//! With [`PipelineConfig::adaptive`] on (see
//! [`PipelineConfig::self_steering`]) the driver watches, at every
//! retirement, how much of the window's busy time (charged queue delay
//! plus read service time) was spent queueing. When queueing
//! dominates ([`PipelineConfig::backoff_queue_percent`]) it *backs off*:
//! first growing the window (a larger window dedupes more fetches per
//! query, putting less work on the saturated links), then shedding
//! pipeline depth — never below 2, since depth is what keeps a saturated
//! link busy across window boundaries; when queueing is negligible
//! ([`PipelineConfig::rampup_queue_percent`]) it reverses course. While
//! saturated it also issues the cheapest ready window first —
//! *cost-predicted shortest-first*, where the predicted cost is the number
//! of distinct shards a window could fetch (a pure routing + analysis
//! pass). Responses always come back in request order;
//! [`WindowSpan::first_query`] records which slice an out-of-order window
//! served.
//!
//! The virtual timeline never moves the engine's shared clock: cache
//! effects are applied at the call instant (exactly as `search_batch`
//! treats a window), while issue/completion instants drive latency,
//! queueing and makespan accounting.

use crate::engine::{PendingShardFetch, PendingStatsRead, QueenBee};
use crate::query::executor::WindowMemo;
use crate::query::plan::QueryPlan;
use crate::query::request::SearchRequest;
use crate::query::response::SearchResponse;
use qb_common::{QbResult, SimDuration, SimInstant};
use std::collections::{HashMap, VecDeque};

/// Knobs of one pipelined run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Queries per window (the concurrency the frontend batches together).
    /// With [`PipelineConfig::adaptive`] on this is the *base* size the
    /// driver starts from and ramps back down to.
    pub window_size: usize,
    /// Windows allowed in flight at once. 1 degenerates to back-to-back
    /// execution; the default keeps a small pipeline of windows overlapped.
    /// With [`PipelineConfig::adaptive`] on this is the *ceiling* the
    /// driver steers below when queueing dominates.
    pub max_windows_in_flight: usize,
    /// Self-steer window size, depth and issue order from the observed
    /// queue-delay share of each retired window's busy time.
    pub adaptive: bool,
    /// Back off (grow the window, then shed depth) when queueing reaches
    /// this percentage of a retired window's busy time (queue delay plus
    /// service time across its fetches) — i.e. when the links, not the
    /// reads, dominate the window.
    pub backoff_queue_percent: u32,
    /// Ramp back up (restore depth, then shrink the window) when the
    /// queue share falls to this percentage or below.
    pub rampup_queue_percent: u32,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            window_size: 32,
            max_windows_in_flight: 4,
            adaptive: false,
            backoff_queue_percent: 60,
            rampup_queue_percent: 5,
        }
    }
}

impl PipelineConfig {
    /// The default pipeline with the self-steering controller on.
    pub fn self_steering() -> PipelineConfig {
        PipelineConfig {
            adaptive: true,
            ..PipelineConfig::default()
        }
    }
}

/// Lifecycle of one window inside the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowState {
    /// Requests analyzed against the cache tiers; nothing issued yet.
    Planned,
    /// Distinct-shard read machines issued and advancing event by event.
    Fetching,
    /// All machines complete; intersect/score in progress.
    Scoring,
    /// Responses assembled and caches updated.
    Done,
}

/// One window in flight: its plans, its in-flight read machines and the
/// completion bookkeeping the driver schedules by.
pub(crate) struct WindowRun {
    pub(crate) state: WindowState,
    /// Index of the window's first response in the (request-ordered)
    /// response vector — windows may issue out of request order under the
    /// saturated shortest-first policy.
    pub(crate) first_query: usize,
    pub(crate) plans: Vec<QueryPlan>,
    /// The window's shared fetches (each distinct `(frontend, term)` once),
    /// filled in as the read machines complete.
    pub(crate) fetched: crate::query::executor::FetchSet,
    /// The window's (at most one) statistics read, once complete.
    pub(crate) stats_read: Option<crate::engine::SharedStatsRead>,
    /// When the window was issued on the virtual timeline.
    pub(crate) issued_at: SimInstant,
    /// Completion instant per fetched `(frontend, term)` key.
    pub(crate) fetch_done: HashMap<(Option<usize>, String), SimInstant>,
    /// Queueing delay inside each fetched key's wall latency.
    pub(crate) fetch_queue: HashMap<(Option<usize>, String), SimDuration>,
    /// Completion instant of the shared statistics read, when one ran.
    pub(crate) stats_done: Option<SimInstant>,
    /// Queueing delay inside the statistics read, when one ran.
    pub(crate) stats_queue: SimDuration,
    /// When the window's slowest dependency completed (so far).
    pub(crate) completes_at: SimInstant,
    /// The in-flight statistics read machine, if still pending.
    pub(crate) pending_stats: Option<PendingStatsRead>,
    /// The in-flight shard read machines, in issue order.
    pub(crate) pending_shards: Vec<PendingShardFetch>,
    /// Earliest instant any pending machine advances at (`None` once the
    /// window is complete).
    pub(crate) next_event: Option<SimInstant>,
    /// The window's trace span (children: one `fetch`/`stats_read` span
    /// per read, each nesting its per-hop `dht.lookup`/`rpc` spans).
    pub(crate) span: Option<qb_trace::SpanId>,
    /// Queueing delay the per-link in-flight limits charged this window.
    pub(crate) queue_delay: SimDuration,
}

/// What one pipelined run did, beyond the responses themselves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineReport {
    /// Windows fully executed (counted at retirement, so an aborted run
    /// reports only the windows that actually served).
    pub windows: usize,
    /// Queries served to completion.
    pub queries: usize,
    /// Completion instant of the last window minus the stream start — what
    /// back-to-back execution pays as the *sum* of window latencies.
    pub makespan: SimDuration,
    /// Scored lists served from the window memo (duplicate queries that
    /// skipped intersect/score entirely).
    pub memo_hits: u64,
    /// Partial intersections reused across prefix-sharing queries.
    pub memo_partial_hits: u64,
    /// Genuine intersect+score computations this run performed.
    pub score_invocations: u64,
    /// Distinct DHT shard fetches issued.
    pub shard_fetches: u64,
    /// Statistics-record reads issued (at most one per window).
    pub stats_reads: u64,
    /// Total queueing delay charged by the per-link in-flight limits.
    pub queue_delay: SimDuration,
    /// Most windows observed in flight at once.
    pub peak_windows_in_flight: usize,
    /// Self-steering back-off steps taken (depth shed or window grown).
    pub adapt_backoffs: u64,
    /// Self-steering ramp-up steps taken (window shrunk or depth restored).
    pub adapt_rampups: u64,
}

/// Virtual-timeline span of one retired window: which slice of the
/// response vector it served and when it issued/completed. The open-loop
/// admission layer uses these to place each response on the arrival
/// timeline (`issued_at + response.latency` is the query's completion
/// instant) without re-deriving the driver's scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpan {
    /// Index of the window's first response in [`PipelineOutcome::responses`].
    pub first_query: usize,
    /// Number of responses the window served.
    pub queries: usize,
    /// When the window's fetches were issued on the virtual timeline.
    pub issued_at: SimInstant,
    /// When the window's slowest dependency completed.
    pub completed_at: SimInstant,
}

/// A pipelined run's responses (in request order) plus its report.
#[derive(Debug)]
pub struct PipelineOutcome {
    /// One response per request, in request order, byte-identical to
    /// executing the same requests sequentially (E13 asserts this).
    pub responses: Vec<SearchResponse>,
    /// Stream-level accounting.
    pub report: PipelineReport,
    /// One span per retired window, in retirement order (request order
    /// unless the saturated shortest-first policy reordered issue).
    pub window_spans: Vec<WindowSpan>,
}

/// How many windows the driver keeps cut and ready ahead of issue — the
/// candidate pool the saturated shortest-first policy picks from.
const READY_STOCK: usize = 4;

/// Drives a request stream through overlapping windows. Construct with a
/// [`PipelineConfig`] and run once; the engine wraps this in
/// [`crate::QueenBee::search_pipelined`].
#[derive(Debug)]
pub struct PipelineDriver {
    config: PipelineConfig,
    report: PipelineReport,
    spans: Vec<WindowSpan>,
    /// Live pipeline depth (≤ `config.max_windows_in_flight`).
    depth: usize,
    /// Live window size (≥ `config.window_size`).
    window: usize,
    /// Whether the last adaptation step saw queueing dominate.
    saturated: bool,
}

impl PipelineDriver {
    /// A driver for one run.
    pub fn new(config: PipelineConfig) -> PipelineDriver {
        PipelineDriver {
            config,
            report: PipelineReport::default(),
            spans: Vec::new(),
            depth: config.max_windows_in_flight.max(1),
            window: config.window_size.max(1),
            saturated: false,
        }
    }

    /// Execute `requests` in overlapping windows against `qb`. Responses
    /// come back in request order; an invalid request or failed fetch
    /// aborts the run with the first error (exactly like `search_batch`).
    pub fn run(
        mut self,
        qb: &mut QueenBee,
        requests: Vec<SearchRequest>,
    ) -> QbResult<PipelineOutcome> {
        let t0 = qb.net.now();
        let total = requests.len();

        let mut pending: VecDeque<SearchRequest> = requests.into();
        let mut next_first_query = 0usize;
        // Windows cut and ready to issue: (first response index, requests).
        let mut ready: VecDeque<(usize, Vec<SearchRequest>)> = VecDeque::new();

        let mut memo = WindowMemo::default();
        let mut responses: Vec<Option<SearchResponse>> = Vec::new();
        responses.resize_with(total, || None);
        let mut in_flight: VecDeque<WindowRun> = VecDeque::new();
        // Window w may issue once window w - depth has retired; FIFO
        // retirement makes this the completion instant of the window
        // retired most recently.
        let mut next_issue_at = t0;
        let mut makespan_end = t0;
        // The driver's position on the virtual timeline; only ever moves
        // forward (to an issue instant or the next machine completion).
        let mut cursor = t0;

        loop {
            // Retire the front window once all its machines completed.
            if in_flight
                .front()
                .is_some_and(|w| w.pending_stats.is_none() && w.pending_shards.is_empty())
            {
                let mut win = in_flight.pop_front().expect("front checked above");
                next_issue_at = next_issue_at.max(win.completes_at);
                makespan_end = makespan_end.max(win.completes_at);
                self.adapt(&win);
                self.score_window(qb, &mut win, &mut memo, &mut responses);
                continue;
            }

            // Keep a stock of windows cut at the *live* window size so the
            // shortest-first policy has candidates to choose from.
            while ready.len() < READY_STOCK && !pending.is_empty() {
                let take = self.window.min(pending.len());
                let reqs: Vec<SearchRequest> = pending.drain(..take).collect();
                ready.push_back((next_first_query, reqs));
                next_first_query += take;
            }

            let can_issue = !ready.is_empty() && in_flight.len() < self.depth;
            let issue_at = next_issue_at.max(cursor);
            let next_completion: Option<SimInstant> =
                in_flight.iter().filter_map(|w| w.next_event).min();

            let issue_now = match (can_issue, next_completion) {
                (false, None) => break,
                (true, completion) => completion.is_none_or(|c| issue_at <= c),
                (false, Some(_)) => false,
            };

            if issue_now {
                let idx = if self.config.adaptive && self.saturated && ready.len() > 1 {
                    // Cost-predicted shortest-first under saturation: the
                    // cheapest ready window (fewest distinct predicted
                    // shards) issues first; request order breaks ties so
                    // the choice is deterministic.
                    (0..ready.len())
                        .min_by_key(|&i| (qb.predict_window_cost(&ready[i].1), ready[i].0))
                        .expect("ready is non-empty")
                } else {
                    0
                };
                let (first_query, reqs) = ready.remove(idx).expect("index from range");
                cursor = issue_at;
                match self.issue_window(qb, first_query, reqs, issue_at) {
                    Ok(win) => {
                        in_flight.push_back(win);
                        self.report.peak_windows_in_flight =
                            self.report.peak_windows_in_flight.max(in_flight.len());
                    }
                    Err(e) => return self.abort(qb, &mut in_flight, memo, e),
                }
            } else {
                cursor = next_completion.expect("issue_now is false ⇒ a completion exists");
                // Advance every in-flight window: machines of *different*
                // windows share the per-peer uplinks, so a completion in
                // one window can unblock (or be interleaved with) hops of
                // another. FIFO order keeps the advancement deterministic.
                for win in in_flight.iter_mut() {
                    if let Err(e) = qb.poll_window_fetches(win, cursor) {
                        return self.abort(qb, &mut in_flight, memo, e);
                    }
                }
            }
        }

        self.report.makespan = makespan_end.since(t0);
        self.report.memo_hits = memo.hits;
        self.report.memo_partial_hits = memo.partial_hits;
        self.report.score_invocations = memo.invocations;
        qb.record_pipeline_run(&self.report, &memo);
        Ok(PipelineOutcome {
            responses: responses
                .into_iter()
                .map(|r| r.expect("every window retired ⇒ every slot served"))
                .collect(),
            report: self.report,
            window_spans: self.spans,
        })
    }

    /// Abort cleanly: abandon every in-flight window's machines so the
    /// aborted run leaves no phantom link occupancy behind to throttle
    /// later runs, and fold the work already done into the engine counters
    /// (windows that fully served before the abort did score and did hit
    /// the memo).
    fn abort(
        mut self,
        qb: &mut QueenBee,
        in_flight: &mut VecDeque<WindowRun>,
        memo: WindowMemo,
        e: qb_common::QbError,
    ) -> QbResult<PipelineOutcome> {
        for win in in_flight.iter_mut() {
            qb.abandon_window_fetches(win);
        }
        self.report.memo_hits = memo.hits;
        self.report.memo_partial_hits = memo.partial_hits;
        self.report.score_invocations = memo.invocations;
        qb.record_pipeline_run(&self.report, &memo);
        Err(e)
    }

    /// One self-steering step at window retirement: compare the queue
    /// delay the window was charged against its total busy time (queue
    /// delay plus the service time of its reads) and adjust window size /
    /// depth for the windows still to issue.
    ///
    /// A dominant queue share means the uplinks — not the reads — are the
    /// bottleneck, and the only way to finish sooner on a saturated link
    /// is to put *less work* on it: the back-off grows the window first
    /// (a bigger window dedupes more `(frontend, term)` fetches per query
    /// on a duplicate-heavy stream), then sheds pipeline depth, never
    /// below 2 — depth is what keeps the bottleneck link busy across
    /// window boundaries, and shedding it to 1 degenerates to
    /// back-to-back execution. The ramp-up reverses in the opposite order
    /// (restore depth, then shrink the window back to the configured
    /// base), so an unsaturated run converges to — and then never leaves —
    /// the configured operating point.
    fn adapt(&mut self, win: &WindowRun) {
        if !self.config.adaptive {
            return;
        }
        let service: SimDuration = win
            .fetched
            .values()
            .map(|f| f.latency)
            .fold(SimDuration::ZERO, |a, b| a + b)
            + win
                .stats_read
                .map_or(SimDuration::ZERO, |read| read.latency);
        let busy_us = (win.queue_delay + service).as_micros();
        let share = win.queue_delay.as_micros().saturating_mul(100) / busy_us.max(1);
        let base = self.config.window_size.max(1);
        self.saturated = share >= u64::from(self.config.backoff_queue_percent);
        if self.saturated {
            if self.window < base * 4 {
                self.window = (self.window * 2).min(base * 4);
                self.report.adapt_backoffs += 1;
            } else if self.depth > 2 {
                self.depth -= 1;
                self.report.adapt_backoffs += 1;
            }
        } else if share <= u64::from(self.config.rampup_queue_percent) {
            if self.depth < self.config.max_windows_in_flight.max(1) {
                self.depth += 1;
                self.report.adapt_rampups += 1;
            } else if self.window > base {
                self.window = (self.window / 2).max(base);
                self.report.adapt_rampups += 1;
            }
        }
    }

    /// Plan a window and start its distinct read machines at `issued_at`
    /// (Planned → Fetching). The machines advance only through
    /// [`QueenBee::poll_window_fetches`]; the immediate poll here lets
    /// zero-latency reads (cache-complete windows) finish in place.
    fn issue_window(
        &mut self,
        qb: &mut QueenBee,
        first_query: usize,
        requests: Vec<SearchRequest>,
        issued_at: SimInstant,
    ) -> QbResult<WindowRun> {
        let plans = qb.plan_window(requests)?;
        let query_count = plans.len();
        let span = qb
            .net
            .tracer()
            .record_with(None, "window", issued_at, issued_at, || {
                format!("{query_count} queries")
            });
        let (pending_stats, pending_shards) = qb.begin_window_fetches(&plans, issued_at, span);
        self.report.stats_reads += u64::from(pending_stats.is_some());
        self.report.shard_fetches += pending_shards.len() as u64;
        let mut win = WindowRun {
            state: WindowState::Fetching,
            first_query,
            plans,
            fetched: crate::query::executor::FetchSet::new(),
            stats_read: None,
            issued_at,
            fetch_done: HashMap::new(),
            fetch_queue: HashMap::new(),
            stats_done: None,
            stats_queue: SimDuration::ZERO,
            completes_at: issued_at,
            pending_stats,
            pending_shards,
            next_event: None,
            span,
            queue_delay: SimDuration::ZERO,
        };
        qb.poll_window_fetches(&mut win, issued_at)?;
        Ok(win)
    }

    /// Score a completed window (Fetching → Scoring → Done): every plan is
    /// served through the window memo, and per-query latency is rebased on
    /// the virtual timeline (the query's slowest dependency completion
    /// minus the window's issue instant).
    fn score_window(
        &mut self,
        qb: &mut QueenBee,
        win: &mut WindowRun,
        memo: &mut WindowMemo,
        responses: &mut [Option<SearchResponse>],
    ) {
        debug_assert_eq!(
            win.state,
            WindowState::Fetching,
            "only issued windows retire"
        );
        win.state = WindowState::Scoring;
        qb.net.tracer().close(win.span, win.completes_at);
        self.report.queue_delay += win.queue_delay;
        let now = qb.net.now();
        let plans = std::mem::take(&mut win.plans);
        self.report.windows += 1;
        self.report.queries += plans.len();
        self.spans.push(WindowSpan {
            first_query: win.first_query,
            queries: plans.len(),
            issued_at: win.issued_at,
            completed_at: win.completes_at,
        });
        let fetched_terms = crate::engine::batch_advert_groups(
            &win.fetched,
            plans.len() >= 2 && qb.fleet().is_some(),
        );
        for (j, plan) in plans.into_iter().enumerate() {
            let frontend = plan.frontend;
            let used_stats_read =
                matches!(plan.stats, crate::query::plan::StatsPlan::Fetch) && !plan.is_result_hit();
            let fetch_keys: Vec<(Option<usize>, String)> = plan
                .fetch_terms()
                .map(|t| (frontend, t.to_string()))
                .collect();
            let mut response = qb.serve_plan(plan, &win.fetched, &win.stats_read, now, Some(memo));
            // Rebase latency on the virtual timeline when the query waited
            // on any asynchronous dependency.
            let mut done_at: Option<SimInstant> = None;
            let mut critical_queue = SimDuration::ZERO;
            for key in &fetch_keys {
                if let Some(&d) = win.fetch_done.get(key) {
                    if done_at.is_none_or(|cur| d > cur) {
                        critical_queue = win.fetch_queue.get(key).copied().unwrap_or_default();
                    }
                    done_at = Some(done_at.map_or(d, |cur| cur.max(d)));
                }
            }
            if used_stats_read {
                if let Some(d) = win.stats_done {
                    if done_at.is_none_or(|cur| d > cur) {
                        critical_queue = win.stats_queue;
                    }
                    done_at = Some(done_at.map_or(d, |cur| cur.max(d)));
                }
            }
            if let Some(done) = done_at {
                response.latency = done.since(win.issued_at);
                response.trace.net_queue = critical_queue.min(response.latency);
            }
            responses[win.first_query + j] = Some(response);
        }
        // Batch-aware gossip: the window's freshly fetched shard keys enter
        // the serving frontends' next digest round, so the rest of the
        // fleet warms one round earlier than hot-set popularity alone
        // would allow.
        for (frontend, terms) in fetched_terms {
            qb.note_batch_fetches(frontend, &terms);
        }
        win.state = WindowState::Done;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_keep_a_small_pipeline() {
        let c = PipelineConfig::default();
        assert_eq!(c.window_size, 32);
        assert_eq!(c.max_windows_in_flight, 4);
        assert!(!c.adaptive);
    }

    #[test]
    fn self_steering_turns_adaptation_on_over_the_defaults() {
        let c = PipelineConfig::self_steering();
        assert!(c.adaptive);
        assert_eq!(c.window_size, PipelineConfig::default().window_size);
        assert!(c.rampup_queue_percent < c.backoff_queue_percent);
    }

    #[test]
    fn window_states_progress_in_order() {
        // The enum is the documentation of the lifecycle; keep the order.
        let order = [
            WindowState::Planned,
            WindowState::Fetching,
            WindowState::Scoring,
            WindowState::Done,
        ];
        assert_eq!(order.len(), 4);
        assert_ne!(WindowState::Planned, WindowState::Done);
    }
}
