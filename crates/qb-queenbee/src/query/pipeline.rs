//! The pipelined execution engine: overlapping windows driven by an
//! explicit per-window state machine.
//!
//! # The state machine
//!
//! [`QueenBee::search_batch`](crate::QueenBee::search_batch) runs its three
//! stages in lockstep: the whole window is planned, then fetched, then
//! scored, and the next window starts only after the previous one finished.
//! The [`PipelineDriver`] breaks that lockstep. Every window moves through
//! an explicit [`WindowState`]:
//!
//! ```text
//!   Planned ──issue fetches──▶ Fetching ──all handles done──▶ Scoring ──▶ Done
//! ```
//!
//! * **Planned** — the window's requests are analyzed against the serving
//!   frontend's cache tiers ([`plan_request`](crate::query::plan)); no
//!   network traffic yet.
//! * **Fetching** — each distinct missing `(frontend, term)` shard (plus at
//!   most one statistics record per window) is fetched through the
//!   versioned DHT read and registered as a **non-blocking request handle**
//!   ([`qb_simnet::SimNet::begin_async_op`]) issued at the window's virtual
//!   issue instant. The per-peer in-flight limit
//!   ([`qb_simnet::NetConfig::max_in_flight_per_link`]) queues excess
//!   fetches and charges the queueing delay, so overlap is a modeled
//!   resource, not free parallelism.
//! * **Scoring** — once the window's slowest handle completes, shards are
//!   intersected and scored. Identical and prefix-sharing queries in the
//!   in-flight window set resolve against the window-scoped
//!   [`WindowMemo`]: a scored list tagged with the exact per-term shard
//!   versions it was computed from serves every duplicate without
//!   re-running intersect/score.
//! * **Done** — responses are assembled, fetched shards fan out into the
//!   serving cache, and (in fleet mode) the window's freshly fetched shard
//!   keys are queued as **batch-aware gossip advertisements**
//!   ([`qb_gossip::GossipFleet::note_batch_fetches`]) so the next digest
//!   round warms the rest of the fleet one round earlier.
//!
//! # Window overlap
//!
//! Up to [`PipelineConfig::max_windows_in_flight`] windows are in flight at
//! once: window *N+1* is planned and its distinct-shard fetches issued
//! while window *N*'s fetches are still pending, so the plan cost and the
//! per-window fetch tails overlap instead of summing. Windows retire in
//! FIFO order (like a CPU pipeline) so cache stores happen in a
//! deterministic sequence; the **makespan** of the whole stream is the
//! completion instant of the last window, which experiment E13 compares
//! against back-to-back execution of the same stream (≥30% lower on a
//! duplicate-heavy Zipf stream, with byte-identical per-query results).
//!
//! The virtual timeline never moves the engine's shared clock: cache
//! effects are applied at the call instant (exactly as `search_batch`
//! treats a window), while issue/completion instants drive latency,
//! queueing and makespan accounting.

use crate::engine::QueenBee;
use crate::query::executor::WindowMemo;
use crate::query::plan::QueryPlan;
use crate::query::request::SearchRequest;
use crate::query::response::SearchResponse;
use qb_common::{QbResult, SimDuration, SimInstant};
use std::collections::{HashMap, VecDeque};

/// Knobs of one pipelined run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Queries per window (the concurrency the frontend batches together).
    pub window_size: usize,
    /// Windows allowed in flight at once. 1 degenerates to back-to-back
    /// execution; the default keeps a small pipeline of windows overlapped.
    pub max_windows_in_flight: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            window_size: 32,
            max_windows_in_flight: 4,
        }
    }
}

/// Lifecycle of one window inside the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowState {
    /// Requests analyzed against the cache tiers; nothing issued yet.
    Planned,
    /// Distinct-shard fetches issued as non-blocking handles.
    Fetching,
    /// All handles complete; intersect/score in progress.
    Scoring,
    /// Responses assembled and caches updated.
    Done,
}

/// One window in flight: its plans, its issued fetches and the completion
/// bookkeeping the driver schedules by.
#[derive(Debug)]
pub(crate) struct WindowRun {
    pub(crate) state: WindowState,
    pub(crate) plans: Vec<QueryPlan>,
    /// The window's shared fetches (each distinct `(frontend, term)` once).
    pub(crate) fetched: crate::query::executor::FetchSet,
    /// The window's (at most one) statistics read.
    pub(crate) stats_read: Option<crate::engine::SharedStatsRead>,
    /// When the window was issued on the virtual timeline.
    pub(crate) issued_at: SimInstant,
    /// Completion instant per fetched `(frontend, term)` key.
    pub(crate) fetch_done: HashMap<(Option<usize>, String), SimInstant>,
    /// Completion instant of the shared statistics read, when one ran.
    pub(crate) stats_done: Option<SimInstant>,
    /// When the window's slowest dependency completes.
    pub(crate) completes_at: SimInstant,
    /// Live handles of the window's in-flight operations; retired (and
    /// their link slots freed) when the window leaves the pipeline.
    pub(crate) handles: Vec<qb_simnet::RpcHandle>,
    /// Queueing delay the per-link in-flight limits charged this window.
    pub(crate) queue_delay: SimDuration,
}

/// What one pipelined run did, beyond the responses themselves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineReport {
    /// Windows fully executed (counted at retirement, so an aborted run
    /// reports only the windows that actually served).
    pub windows: usize,
    /// Queries served to completion.
    pub queries: usize,
    /// Completion instant of the last window minus the stream start — what
    /// back-to-back execution pays as the *sum* of window latencies.
    pub makespan: SimDuration,
    /// Scored lists served from the window memo (duplicate queries that
    /// skipped intersect/score entirely).
    pub memo_hits: u64,
    /// Partial intersections reused across prefix-sharing queries.
    pub memo_partial_hits: u64,
    /// Genuine intersect+score computations this run performed.
    pub score_invocations: u64,
    /// Distinct DHT shard fetches issued.
    pub shard_fetches: u64,
    /// Statistics-record reads issued (at most one per window).
    pub stats_reads: u64,
    /// Total queueing delay charged by the per-link in-flight limits.
    pub queue_delay: SimDuration,
    /// Most windows observed in flight at once.
    pub peak_windows_in_flight: usize,
}

/// Virtual-timeline span of one retired window: which slice of the
/// response vector it served and when it issued/completed. The open-loop
/// admission layer uses these to place each response on the arrival
/// timeline (`issued_at + response.latency` is the query's completion
/// instant) without re-deriving the driver's scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpan {
    /// Index of the window's first response in [`PipelineOutcome::responses`].
    pub first_query: usize,
    /// Number of responses the window served.
    pub queries: usize,
    /// When the window's fetches were issued on the virtual timeline.
    pub issued_at: SimInstant,
    /// When the window's slowest dependency completed.
    pub completed_at: SimInstant,
}

/// A pipelined run's responses (in request order) plus its report.
#[derive(Debug)]
pub struct PipelineOutcome {
    /// One response per request, in request order, byte-identical to
    /// executing the same requests sequentially (E13 asserts this).
    pub responses: Vec<SearchResponse>,
    /// Stream-level accounting.
    pub report: PipelineReport,
    /// One span per retired window, in retirement (= request) order.
    pub window_spans: Vec<WindowSpan>,
}

/// Drives a request stream through overlapping windows. Construct with a
/// [`PipelineConfig`] and run once; the engine wraps this in
/// [`crate::QueenBee::search_pipelined`].
#[derive(Debug)]
pub struct PipelineDriver {
    config: PipelineConfig,
    report: PipelineReport,
    spans: Vec<WindowSpan>,
}

impl PipelineDriver {
    /// A driver for one run.
    pub fn new(config: PipelineConfig) -> PipelineDriver {
        PipelineDriver {
            config,
            report: PipelineReport::default(),
            spans: Vec::new(),
        }
    }

    /// Execute `requests` in overlapping windows against `qb`. Responses
    /// come back in request order; an invalid request or failed fetch
    /// aborts the run with the first error (exactly like `search_batch`).
    pub fn run(
        mut self,
        qb: &mut QueenBee,
        requests: Vec<SearchRequest>,
    ) -> QbResult<PipelineOutcome> {
        let t0 = qb.net.now();
        let window_size = self.config.window_size.max(1);
        let depth = self.config.max_windows_in_flight.max(1);

        let mut queue: VecDeque<Vec<SearchRequest>> = VecDeque::new();
        let mut pending = requests;
        while !pending.is_empty() {
            let rest = pending.split_off(window_size.min(pending.len()));
            queue.push_back(std::mem::replace(&mut pending, rest));
        }

        let mut memo = WindowMemo::default();
        let mut responses: Vec<SearchResponse> = Vec::new();
        let mut in_flight: VecDeque<WindowRun> = VecDeque::new();
        // Window w may issue once window w - depth has retired; FIFO
        // retirement makes this the completion instant of the window
        // retired most recently.
        let mut next_issue_at = t0;
        let mut makespan_end = t0;

        while !queue.is_empty() || !in_flight.is_empty() {
            if let Some(window_requests) = (in_flight.len() < depth)
                .then(|| queue.pop_front())
                .flatten()
            {
                let win = match self.issue_window(qb, window_requests, next_issue_at) {
                    Ok(win) => win,
                    Err(e) => {
                        // Abort cleanly: retire every in-flight window's
                        // handles so the aborted run leaves no phantom
                        // link occupancy behind to throttle later runs,
                        // and fold the work already done into the engine
                        // counters (windows that fully served before the
                        // abort did score and did hit the memo).
                        for mut win in in_flight.drain(..) {
                            for handle in std::mem::take(&mut win.handles) {
                                let _ = qb.net.poll_complete(handle, win.completes_at);
                            }
                        }
                        self.report.memo_hits = memo.hits;
                        self.report.memo_partial_hits = memo.partial_hits;
                        self.report.score_invocations = memo.invocations;
                        qb.record_pipeline_run(&self.report, &memo);
                        return Err(e);
                    }
                };
                in_flight.push_back(win);
                self.report.peak_windows_in_flight =
                    self.report.peak_windows_in_flight.max(in_flight.len());
            } else {
                let mut win = in_flight.pop_front().expect("loop invariant");
                next_issue_at = next_issue_at.max(win.completes_at);
                makespan_end = makespan_end.max(win.completes_at);
                self.score_window(qb, &mut win, &mut memo, &mut responses);
            }
        }

        self.report.makespan = makespan_end.since(t0);
        self.report.memo_hits = memo.hits;
        self.report.memo_partial_hits = memo.partial_hits;
        self.report.score_invocations = memo.invocations;
        qb.record_pipeline_run(&self.report, &memo);
        Ok(PipelineOutcome {
            responses,
            report: self.report,
            window_spans: self.spans,
        })
    }

    /// Plan a window and issue its distinct fetches at `issued_at`
    /// (Planned → Fetching).
    fn issue_window(
        &mut self,
        qb: &mut QueenBee,
        requests: Vec<SearchRequest>,
        issued_at: SimInstant,
    ) -> QbResult<WindowRun> {
        let plans = qb.plan_window(requests)?;
        let mut win = WindowRun {
            state: WindowState::Planned,
            plans,
            fetched: crate::query::executor::FetchSet::new(),
            stats_read: None,
            issued_at,
            fetch_done: HashMap::new(),
            stats_done: None,
            completes_at: issued_at,
            handles: Vec::new(),
            queue_delay: SimDuration::ZERO,
        };
        let (fetched, stats_read) = qb.fetch_window(&win.plans)?;
        win.state = WindowState::Fetching;

        let query_count = win.plans.len();
        let window_span = qb
            .net
            .tracer()
            .open_with("window", issued_at, || format!("{query_count} queries"));

        // Register every fetch (and the stats read) as an in-flight
        // operation of its issuing peer; the per-link limit may queue some
        // of them, pushing this window's completion out. Handles stay live
        // until the window retires, so fetches of the *next* windows queue
        // behind this window's occupancy.
        if let Some(read) = &stats_read {
            let span = qb.net.tracer().open("stats_read", issued_at);
            let handle = qb
                .net
                .begin_async_op(read.origin_peer, issued_at, read.latency);
            let done = qb.net.async_completes_at(handle).expect("just issued");
            qb.net.tracer().close(span, done);
            win.handles.push(handle);
            win.stats_done = Some(done);
            win.completes_at = win.completes_at.max(done);
            self.report.stats_reads += 1;
        }
        for (key, fetch) in &fetched {
            let term = &key.1;
            let span = qb
                .net
                .tracer()
                .open_with("fetch", issued_at, || term.clone());
            let handle = qb
                .net
                .begin_async_op(fetch.origin_peer, issued_at, fetch.latency);
            let done = qb.net.async_completes_at(handle).expect("just issued");
            qb.net.tracer().close(span, done);
            win.handles.push(handle);
            win.fetch_done.insert(key.clone(), done);
            win.completes_at = win.completes_at.max(done);
            self.report.shard_fetches += 1;
        }
        let window_done = win.completes_at;
        qb.net.tracer().close(window_span, window_done);
        win.fetched = fetched;
        win.stats_read = stats_read;
        Ok(win)
    }

    /// Score a completed window (Fetching → Scoring → Done): every plan is
    /// served through the window memo, and per-query latency is rebased on
    /// the virtual timeline (the query's slowest dependency completion
    /// minus the window's issue instant).
    fn score_window(
        &mut self,
        qb: &mut QueenBee,
        win: &mut WindowRun,
        memo: &mut WindowMemo,
        responses: &mut Vec<SearchResponse>,
    ) {
        debug_assert_eq!(
            win.state,
            WindowState::Fetching,
            "only issued windows retire"
        );
        win.state = WindowState::Scoring;
        // Retire the window's handles: this frees its link slots on the
        // virtual timeline and reports the queueing delay each operation
        // actually paid.
        for handle in std::mem::take(&mut win.handles) {
            if let Some(qb_simnet::Poll::Ready(done)) =
                qb.net.poll_complete(handle, win.completes_at)
            {
                win.queue_delay += done.queue_delay;
            }
        }
        self.report.queue_delay += win.queue_delay;
        let now = qb.net.now();
        let plans = std::mem::take(&mut win.plans);
        self.report.windows += 1;
        self.report.queries += plans.len();
        self.spans.push(WindowSpan {
            first_query: responses.len(),
            queries: plans.len(),
            issued_at: win.issued_at,
            completed_at: win.completes_at,
        });
        let fetched_terms = crate::engine::batch_advert_groups(
            &win.fetched,
            plans.len() >= 2 && qb.fleet().is_some(),
        );
        for plan in plans {
            let frontend = plan.frontend;
            let used_stats_read =
                matches!(plan.stats, crate::query::plan::StatsPlan::Fetch) && !plan.is_result_hit();
            let fetch_keys: Vec<(Option<usize>, String)> = plan
                .fetch_terms()
                .map(|t| (frontend, t.to_string()))
                .collect();
            let mut response = qb.serve_plan(plan, &win.fetched, &win.stats_read, now, Some(memo));
            // Rebase latency on the virtual timeline when the query waited
            // on any asynchronous dependency.
            let mut done_at: Option<SimInstant> = None;
            for key in &fetch_keys {
                if let Some(&d) = win.fetch_done.get(key) {
                    done_at = Some(done_at.map_or(d, |cur| cur.max(d)));
                }
            }
            if used_stats_read {
                if let Some(d) = win.stats_done {
                    done_at = Some(done_at.map_or(d, |cur| cur.max(d)));
                }
            }
            if let Some(done) = done_at {
                response.latency = done.since(win.issued_at);
            }
            responses.push(response);
        }
        // Batch-aware gossip: the window's freshly fetched shard keys enter
        // the serving frontends' next digest round, so the rest of the
        // fleet warms one round earlier than hot-set popularity alone
        // would allow.
        for (frontend, terms) in fetched_terms {
            qb.note_batch_fetches(frontend, &terms);
        }
        win.state = WindowState::Done;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_keep_a_small_pipeline() {
        let c = PipelineConfig::default();
        assert_eq!(c.window_size, 32);
        assert_eq!(c.max_windows_in_flight, 4);
    }

    #[test]
    fn window_states_progress_in_order() {
        // The enum is the documentation of the lifecycle; keep the order.
        let order = [
            WindowState::Planned,
            WindowState::Fetching,
            WindowState::Scoring,
            WindowState::Done,
        ];
        assert_eq!(order.len(), 4);
        assert_ne!(WindowState::Planned, WindowState::Done);
    }
}
