//! The planner: analyze a [`SearchRequest`] into a [`QueryPlan`] before any
//! network traffic is issued.
//!
//! Planning resolves everything the local tiers can answer — the result
//! cache, per-term shard/negative entries (strict or staleness-bounded,
//! per the request's [`Freshness`]), the statistics record — and leaves a
//! precise list of *fetch* terms for the executor. Because plans carry no
//! network state, a batch window can plan every request first and then
//! fetch each distinct missing term exactly once.

use crate::query::request::{Freshness, SearchRequest};
use qb_cache::{result_key, BoundedShardLookup, CachedResult, QueryCache, ShardLookup};
use qb_common::{QbError, QbResult, SimDuration, SimInstant};
use qb_index::{Analyzer, IndexStats, ShardEntry};
use std::collections::HashMap;

/// How one query term will be satisfied.
#[derive(Debug, Clone)]
pub enum TermPlan {
    /// Served from the shard tier at the current version.
    CachedShard(ShardEntry),
    /// Proven absent by the negative tier; no lookup needed.
    Negative,
    /// A version-superseded copy served under a `MaxStaleness` bound.
    Stale {
        /// The cached (superseded) shard.
        shard: ShardEntry,
        /// How long ago the copy was stored.
        age: SimDuration,
    },
    /// Must be fetched through the DHT (the executor dedupes these across a
    /// batch window).
    Fetch,
    /// The whole query was answered by the result cache; the term needs no
    /// individual resolution.
    ResultCached,
}

/// One analyzed query term and its resolution.
#[derive(Debug, Clone)]
pub struct PlannedTerm {
    /// The analyzed term.
    pub term: String,
    /// How it will be satisfied.
    pub plan: TermPlan,
}

/// How the global statistics record will be satisfied.
#[derive(Debug, Clone)]
pub enum StatsPlan {
    /// The cached record is still at the current version.
    Cached(IndexStats),
    /// Must be read through the DHT (once per batch window).
    Fetch,
}

/// A fully analyzed request, ready for execution.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Position of this query in the engine's lifetime query sequence
    /// (drives the serving-bee rotation exactly like the seed counter).
    pub seq: u64,
    /// The request being planned.
    pub request: SearchRequest,
    /// The simulated peer network traffic is issued from.
    pub origin_peer: u64,
    /// The fleet frontend serving the request (`None` in single mode).
    pub frontend: Option<usize>,
    /// Deduplicated analyzed terms, in query order, with their resolutions.
    pub terms: Vec<PlannedTerm>,
    /// Normalized result-cache key (sorted terms).
    pub result_key: String,
    /// A result-cache entry answering the whole query, when one was current.
    pub cached_result: Option<CachedResult>,
    /// How the BM25 statistics record will be satisfied.
    pub stats: StatsPlan,
}

impl QueryPlan {
    /// Terms the executor must fetch through the DHT.
    pub fn fetch_terms(&self) -> impl Iterator<Item = &str> {
        self.terms.iter().filter_map(|t| match t.plan {
            TermPlan::Fetch => Some(t.term.as_str()),
            _ => None,
        })
    }

    /// True when the whole response comes from the result cache.
    pub fn is_result_hit(&self) -> bool {
        self.cached_result.is_some()
    }
}

/// Analyze `request` against the local tiers. `cache` is the serving
/// frontend's checked-out cache (`None` when caching is disabled),
/// `shard_versions` the engine's monotonic per-term version counters and
/// `stats_version` the current statistics version. Probing mutates the
/// cache exactly as the seed's serve path did (recency, hit/miss counters,
/// version-check evictions) — planning *is* the cache read.
#[allow(clippy::too_many_arguments)]
pub fn plan_request(
    request: SearchRequest,
    seq: u64,
    origin_peer: u64,
    frontend: Option<usize>,
    analyzer: &Analyzer,
    cache: &mut Option<QueryCache>,
    shard_versions: &HashMap<String, u64>,
    stats_version: u64,
    now: SimInstant,
) -> QbResult<QueryPlan> {
    let mut terms: Vec<String> = Vec::new();
    for t in analyzer.analyze(&request.query) {
        if !terms.contains(&t) {
            terms.push(t);
        }
    }
    if terms.is_empty() {
        return Err(QbError::Query(format!(
            "query '{}' has no searchable terms",
            request.query
        )));
    }
    let key = result_key(&terms);

    // Result-cache probe: a warm normalized query whose term shard versions
    // are all still current answers the whole request locally. `Fresh`
    // bypasses it; `MaxStaleness` keeps the strict version check (only the
    // shard tier below is allowed to serve superseded data).
    if !matches!(request.freshness, Freshness::Fresh) {
        if let Some(c) = cache.as_mut() {
            if let Some(entry) =
                c.lookup_result(&key, now, |t| shard_versions.get(t).copied().unwrap_or(0))
            {
                return Ok(QueryPlan {
                    seq,
                    request,
                    origin_peer,
                    frontend,
                    terms: terms
                        .into_iter()
                        .map(|term| PlannedTerm {
                            term,
                            plan: TermPlan::ResultCached,
                        })
                        .collect(),
                    result_key: key,
                    cached_result: Some(entry),
                    stats: StatsPlan::Cached(IndexStats::default()),
                });
            }
        }
    }

    // Statistics record.
    let stats = match cache
        .as_mut()
        .filter(|_| !matches!(request.freshness, Freshness::Fresh))
        .and_then(|c| c.lookup_stats(stats_version))
    {
        Some(cached) => StatsPlan::Cached(cached.stats),
        None => StatsPlan::Fetch,
    };

    // Per-term resolution through the shard/negative tiers.
    let planned: Vec<PlannedTerm> = terms
        .into_iter()
        .map(|term| {
            let current = shard_versions.get(&term).copied().unwrap_or(0);
            let plan = match (&request.freshness, cache.as_mut()) {
                (Freshness::Fresh, _) | (_, None) => TermPlan::Fetch,
                (Freshness::CacheOk, Some(c)) => match c.lookup_shard(&term, now, current) {
                    ShardLookup::Hit(shard) => TermPlan::CachedShard(shard),
                    ShardLookup::Negative => TermPlan::Negative,
                    ShardLookup::Miss => TermPlan::Fetch,
                },
                (Freshness::MaxStaleness(bound), Some(c)) => {
                    match c.lookup_shard_bounded(&term, now, current, *bound) {
                        BoundedShardLookup::Hit(shard) => TermPlan::CachedShard(shard),
                        BoundedShardLookup::Stale { shard, age } => TermPlan::Stale { shard, age },
                        BoundedShardLookup::Negative => TermPlan::Negative,
                        BoundedShardLookup::Miss => TermPlan::Fetch,
                    }
                }
            };
            PlannedTerm { term, plan }
        })
        .collect();

    Ok(QueryPlan {
        seq,
        request,
        origin_peer,
        frontend,
        terms: planned,
        result_key: key,
        cached_result: None,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::request::SearchRequest;
    use qb_cache::CacheConfig;
    use qb_index::ShardPosting;

    fn t0() -> SimInstant {
        SimInstant::ZERO
    }

    fn shard(term: &str, version: u64) -> ShardEntry {
        let mut s = ShardEntry::empty(term);
        s.version = version;
        s.upsert(ShardPosting {
            doc_id: 1,
            term_freq: 2,
            doc_len: 40,
            name: format!("page/{term}"),
            version: 1,
            creator: 9,
        });
        s
    }

    fn plan(
        req: SearchRequest,
        cache: &mut Option<QueryCache>,
        versions: &HashMap<String, u64>,
    ) -> QbResult<QueryPlan> {
        plan_request(req, 1, 0, None, &Analyzer::new(), cache, versions, 0, t0())
    }

    #[test]
    fn empty_queries_are_rejected() {
        let mut none = None;
        let err = plan(SearchRequest::new("the of and"), &mut none, &HashMap::new());
        assert!(matches!(err, Err(QbError::Query(_))));
    }

    #[test]
    fn terms_are_deduplicated_in_query_order() {
        let mut none = None;
        let p = plan(
            SearchRequest::new("honey bees honey"),
            &mut none,
            &HashMap::new(),
        )
        .unwrap();
        let terms: Vec<&str> = p.terms.iter().map(|t| t.term.as_str()).collect();
        assert_eq!(terms, vec![Analyzer::stem("honey"), Analyzer::stem("bees")]);
        assert_eq!(p.fetch_terms().count(), 2, "no cache: everything fetches");
        assert!(matches!(p.stats, StatsPlan::Fetch));
    }

    #[test]
    fn cache_tiers_resolve_terms_at_plan_time() {
        let mut cache = Some(QueryCache::new(CacheConfig::enabled()));
        let honey = Analyzer::stem("honey");
        let ghost = Analyzer::stem("ghost");
        let c = cache.as_mut().unwrap();
        c.store_shard(&shard(&honey, 2), t0());
        c.store_shard(&ShardEntry::empty(&ghost), t0());
        let versions: HashMap<String, u64> = [(honey.clone(), 2u64)].into_iter().collect();
        let p = plan(
            SearchRequest::new("honey ghost nectar"),
            &mut cache,
            &versions,
        )
        .unwrap();
        assert!(matches!(p.terms[0].plan, TermPlan::CachedShard(_)));
        assert!(matches!(p.terms[1].plan, TermPlan::Negative));
        assert!(matches!(p.terms[2].plan, TermPlan::Fetch));
        assert_eq!(
            p.fetch_terms().map(str::to_string).collect::<Vec<_>>(),
            vec![Analyzer::stem("nectar")]
        );
    }

    #[test]
    fn fresh_mode_bypasses_every_tier() {
        let mut cache = Some(QueryCache::new(CacheConfig::enabled()));
        let honey = Analyzer::stem("honey");
        cache.as_mut().unwrap().store_shard(&shard(&honey, 2), t0());
        let versions: HashMap<String, u64> = [(honey, 2u64)].into_iter().collect();
        let p = plan(
            SearchRequest::new("honey").freshness(Freshness::Fresh),
            &mut cache,
            &versions,
        )
        .unwrap();
        assert!(matches!(p.terms[0].plan, TermPlan::Fetch));
        assert!(matches!(p.stats, StatsPlan::Fetch));
    }

    #[test]
    fn max_staleness_serves_superseded_shards_within_bound() {
        let mut cache = Some(QueryCache::new(CacheConfig::enabled()));
        let honey = Analyzer::stem("honey");
        cache.as_mut().unwrap().store_shard(&shard(&honey, 2), t0());
        // The engine has since seen version 3.
        let versions: HashMap<String, u64> = [(honey, 3u64)].into_iter().collect();
        let p = plan(
            SearchRequest::new("honey")
                .freshness(Freshness::MaxStaleness(SimDuration::from_secs(60))),
            &mut cache,
            &versions,
        )
        .unwrap();
        assert!(
            matches!(&p.terms[0].plan, TermPlan::Stale { shard, .. } if shard.version == 2),
            "superseded copy must serve under the bound"
        );
        // A strict plan for the same term falls through to a fetch.
        let versions: HashMap<String, u64> =
            [(Analyzer::stem("honey"), 3u64)].into_iter().collect();
        let p = plan(SearchRequest::new("honey"), &mut cache, &versions).unwrap();
        assert!(matches!(p.terms[0].plan, TermPlan::Fetch));
    }
}
