//! [`SearchResponse`]: the structured answer to a
//! [`SearchRequest`](crate::query::request::SearchRequest), with a
//! per-stage cost trace and per-term cache provenance.

use crate::engine::SearchOutcome;
use qb_chain::{AccountId, AdId};
use qb_common::SimDuration;
use qb_index::ScoredDoc;

/// Where one query term's posting data came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermProvenance {
    /// The whole response was served from the result cache (every term
    /// collapses to this).
    ResultCache,
    /// The term's shard came from the shard tier at the current version.
    ShardCache,
    /// The term was answered by the negative tier (proven absent).
    NegativeCache,
    /// A version-superseded shard served under a `MaxStaleness` bound;
    /// `age` is how long ago the copy was stored.
    StaleCache {
        /// Age of the served copy.
        age: SimDuration,
    },
    /// This query triggered the DHT fetch for the term.
    DhtFetch,
    /// Another query in the same batch window triggered the fetch; this
    /// query reused the shard at zero message cost.
    BatchShared,
}

/// Per-stage cost decomposition of one served query. Network stages carry
/// the simulated latency they contributed; the compute stages (plan, score,
/// rank blend) run locally and are charged zero simulated time, but report
/// how much work they did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCosts {
    /// Planning: cache probes and term analysis (local, zero charge).
    pub plan: SimDuration,
    /// Reading the BM25 statistics record (cache-hit latency or one DHT read
    /// shared across the batch window).
    pub stats: SimDuration,
    /// Fetching/serving the term shards — the parallel-window maximum over
    /// this query's terms.
    pub shard_fetch: SimDuration,
    /// Per-link queueing delay inside the slowest dependency's wall time.
    /// Already counted in `shard_fetch` and the response latency; split out
    /// so trace attribution can separate waiting on contended links from
    /// service.
    pub net_queue: SimDuration,
    /// BM25 scoring of the candidate set (local).
    pub score: SimDuration,
    /// Blending relevance with PageRank and sorting (local).
    pub rank_blend: SimDuration,
    /// RPC attempts this query was charged for (shared fetches are charged
    /// to the query that triggered them).
    pub messages: u64,
    /// Candidate documents scored.
    pub candidates_scored: usize,
}

/// The structured answer to one [`crate::SearchRequest`].
#[derive(Debug, Clone)]
pub struct SearchResponse {
    /// The raw query string.
    pub query: String,
    /// Deduplicated analyzed terms, in query order.
    pub terms: Vec<String>,
    /// The requested page of ranked results (best first).
    pub hits: Vec<ScoredDoc>,
    /// Total matches before pagination.
    pub total_matches: usize,
    /// Zero-based page this response covers.
    pub page: usize,
    /// Page size the response was sliced with.
    pub top_k: usize,
    /// Ad displayed next to the results (`None` when no campaign matched or
    /// the request disabled ads).
    pub ad: Option<AdId>,
    /// End-to-end latency experienced by the user.
    pub latency: SimDuration,
    /// Per-stage cost decomposition.
    pub trace: StageCosts,
    /// Cache provenance per term, parallel to `terms`.
    pub provenance: Vec<TermProvenance>,
    /// Worker bee credited for serving the index (receives the ad share).
    pub served_by_bee: AccountId,
}

impl SearchResponse {
    /// True when the whole response came from the result cache.
    pub fn result_cache_hit(&self) -> bool {
        self.provenance
            .iter()
            .all(|p| *p == TermProvenance::ResultCache)
            && !self.provenance.is_empty()
    }

    /// Number of term shards this query fetched through the DHT itself
    /// (shards reused from the batch window are not counted).
    pub fn shards_fetched(&self) -> usize {
        self.count(|p| matches!(p, TermProvenance::DhtFetch))
    }

    /// Terms whose shard came from the shard tier at the current version.
    pub fn shard_cache_hits(&self) -> usize {
        self.count(|p| matches!(p, TermProvenance::ShardCache))
    }

    /// Terms answered by the negative tier.
    pub fn negative_cache_hits(&self) -> usize {
        self.count(|p| matches!(p, TermProvenance::NegativeCache))
    }

    /// Terms served from a version-superseded copy under `MaxStaleness`.
    pub fn stale_served(&self) -> usize {
        self.count(|p| matches!(p, TermProvenance::StaleCache { .. }))
    }

    /// Terms that reused a shard fetched by another query in the batch.
    pub fn batch_shared(&self) -> usize {
        self.count(|p| matches!(p, TermProvenance::BatchShared))
    }

    /// RPC attempts charged to this query.
    pub fn messages(&self) -> u64 {
        self.trace.messages
    }

    fn count(&self, f: impl Fn(&TermProvenance) -> bool) -> usize {
        self.provenance.iter().filter(|p| f(p)).count()
    }

    /// The seed-era flat view over this response (the `search`/`search_from`
    /// back-compat shims return this).
    pub fn to_outcome(&self) -> SearchOutcome {
        SearchOutcome {
            query: self.query.clone(),
            results: self.hits.clone(),
            ad: self.ad,
            latency: self.latency,
            messages: self.trace.messages,
            shards_fetched: self.shards_fetched(),
            served_by_bee: self.served_by_bee,
            result_cache_hit: self.result_cache_hit(),
            shard_cache_hits: self.shard_cache_hits(),
            negative_cache_hits: self.negative_cache_hits(),
        }
    }
}

/// Slice the requested page out of the full ranked list.
pub fn paginate(full: &[ScoredDoc], page: usize, top_k: usize) -> Vec<ScoredDoc> {
    let start = page.saturating_mul(top_k).min(full.len());
    let end = start.saturating_add(top_k).min(full.len());
    full[start..end].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(i: u64) -> ScoredDoc {
        ScoredDoc {
            doc_id: i,
            name: format!("page/{i}"),
            score: 1.0 / (i + 1) as f64,
            version: 1,
            creator: 7,
        }
    }

    #[test]
    fn pagination_slices_without_overlap_or_gaps() {
        let full: Vec<ScoredDoc> = (0..7).map(doc).collect();
        let p0 = paginate(&full, 0, 3);
        let p1 = paginate(&full, 1, 3);
        let p2 = paginate(&full, 2, 3);
        assert_eq!(p0.len(), 3);
        assert_eq!(p1.len(), 3);
        assert_eq!(p2.len(), 1);
        let stitched: Vec<ScoredDoc> = [p0, p1, p2].concat();
        assert_eq!(stitched, full);
        assert!(paginate(&full, 3, 3).is_empty(), "past the end is empty");
        assert!(paginate(&full, usize::MAX, 3).is_empty(), "no overflow");
    }

    #[test]
    fn provenance_counters_partition_the_terms() {
        let resp = SearchResponse {
            query: "q".into(),
            terms: vec!["a".into(), "b".into(), "c".into(), "d".into()],
            hits: vec![],
            total_matches: 0,
            page: 0,
            top_k: 10,
            ad: None,
            latency: SimDuration::ZERO,
            trace: StageCosts::default(),
            provenance: vec![
                TermProvenance::ShardCache,
                TermProvenance::DhtFetch,
                TermProvenance::BatchShared,
                TermProvenance::StaleCache {
                    age: SimDuration::from_secs(3),
                },
            ],
            served_by_bee: AccountId(1),
        };
        assert!(!resp.result_cache_hit());
        assert_eq!(resp.shards_fetched(), 1);
        assert_eq!(resp.shard_cache_hits(), 1);
        assert_eq!(resp.batch_shared(), 1);
        assert_eq!(resp.stale_served(), 1);
        assert_eq!(resp.negative_cache_hits(), 0);
        let outcome = resp.to_outcome();
        assert_eq!(outcome.shards_fetched, 1);
        assert!(!outcome.result_cache_hit);
    }
}
