//! Rendezvous (highest-random-weight) frontend routing.
//!
//! The seed routed a request from peer `p` to frontend `p % n` and, when
//! that frontend was down, walked the ring to the next active slot. That
//! makes a crash a *local* catastrophe: the dead frontend's entire keyspace
//! lands on its single ring successor, which promptly becomes the new
//! hotspot (E12's post-crash load spike).
//!
//! Rendezvous hashing fixes the failover geometry. Every (peer, slot) pair
//! gets an independent pseudo-random score; a peer is served by its
//! highest-scoring *live* slot. When a slot dies, each peer that hashed to
//! it independently falls over to its own second choice — so the orphaned
//! keyspace spreads across the whole surviving fleet instead of piling onto
//! one neighbour. Re-routing is minimal by construction: a membership
//! change only moves the peers whose top choice changed.
//!
//! On top of the rendezvous order we apply **power-of-two-choices**: the
//! top two live slots are candidates and the one advertising less load
//! (the gossip-propagated EWMA of recently served queries, see
//! [`qb_gossip::GossipFleet::advertised_load`]) serves the request. Two
//! choices are famously enough to collapse the max/mean load gap, and
//! because ties prefer the rendezvous winner the routing stays fully
//! deterministic for a given membership + load picture.

/// `splitmix64` finalizer: a cheap, statistically strong 64-bit mixer.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The rendezvous score of frontend slot `slot` for requester peer `peer`.
/// Independent across both arguments: changing the slot set never changes
/// the score of the remaining slots (the property minimal re-routing rests
/// on).
pub fn hrw_score(peer: u64, slot: usize) -> u64 {
    mix64(peer ^ mix64(slot as u64 ^ 0x5157_4545_4e42_4545)) // "QUEENBEE" salt
}

/// The two highest-scoring slots for `peer` among `slots` (typically the
/// *active* fleet members). Returns `(first, second)`; `second` is `None`
/// when fewer than two slots are offered. Ties break toward the lower slot
/// index so the order is total and deterministic.
pub fn hrw_top2(
    peer: u64,
    slots: impl IntoIterator<Item = usize>,
) -> (Option<usize>, Option<usize>) {
    let mut best: Option<(u64, usize)> = None;
    let mut second: Option<(u64, usize)> = None;
    for slot in slots {
        let cand = (hrw_score(peer, slot), slot);
        let beats =
            |other: &(u64, usize)| cand.0 > other.0 || (cand.0 == other.0 && cand.1 < other.1);
        if best.as_ref().is_none_or(&beats) {
            second = best;
            best = Some(cand);
        } else if second.as_ref().is_none_or(&beats) {
            second = Some(cand);
        }
    }
    (best.map(|(_, s)| s), second.map(|(_, s)| s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn top2_is_deterministic_and_distinct() {
        for peer in 0..64u64 {
            let (a1, b1) = hrw_top2(peer, 0..16);
            let (a2, b2) = hrw_top2(peer, (0..16).rev());
            assert_eq!((a1, b1), (a2, b2), "iteration order changed the pick");
            let (a, b) = (a1.unwrap(), b1.unwrap());
            assert_ne!(a, b);
            assert!(a < 16 && b < 16);
        }
    }

    #[test]
    fn single_slot_has_no_second_choice() {
        assert_eq!(hrw_top2(7, [3]), (Some(3), None));
        assert_eq!(hrw_top2(7, []), (None, None));
    }

    #[test]
    fn keyspace_spreads_roughly_evenly() {
        let n = 16usize;
        let mut landings = vec![0u32; n];
        for peer in 0..4096u64 {
            let (first, _) = hrw_top2(peer, 0..n);
            landings[first.unwrap()] += 1;
        }
        let mean = 4096 / n as u32;
        for (slot, &count) in landings.iter().enumerate() {
            assert!(
                count > mean / 2 && count < mean * 2,
                "slot {slot} got {count} of 4096 (mean {mean})"
            );
        }
    }

    #[test]
    fn crashed_slot_falls_over_to_the_second_choice() {
        // Removing the winning slot promotes exactly the second choice —
        // the property that spreads a dead frontend's keyspace fleet-wide.
        for peer in 0..256u64 {
            let (first, second) = hrw_top2(peer, 0..12);
            let survivors = (0..12).filter(|&s| Some(s) != first);
            let (promoted, _) = hrw_top2(peer, survivors);
            assert_eq!(promoted, second);
        }
    }

    proptest! {
        /// Join/leave stability: slots outside the top two never influence
        /// the pick, so removing one (leave) or adding a fresh one that
        /// scores below the pair (join) leaves the top-2 unchanged; a
        /// joining slot that scores higher displaces from the top, keeping
        /// the survivor order.
        #[test]
        fn top2_is_stable_under_join_and_leave(
            peer in any::<u64>(),
            slots in proptest::collection::btree_set(0usize..64, 3..24),
            newcomer in 64usize..128,
        ) {
            let mut slots = slots;
            let (first, second) = hrw_top2(peer, slots.iter().copied());
            let (f, s) = (first.unwrap(), second.unwrap());

            // Leave of a non-top-2 slot: pick unchanged.
            if let Some(&bystander) = slots.iter().find(|&&x| x != f && x != s) {
                let without = slots.iter().copied().filter(|&x| x != bystander);
                prop_assert_eq!(hrw_top2(peer, without), (first, second));
            }

            // Leave of the winner: second choice is promoted.
            let without_first = slots.iter().copied().filter(|&x| x != f);
            let (promoted, _) = hrw_top2(peer, without_first);
            prop_assert_eq!(promoted, second);

            // Join: the newcomer either scores below the pair (pick
            // unchanged) or enters it without reordering the survivors.
            slots.insert(newcomer);
            let (nf, ns) = hrw_top2(peer, slots.iter().copied());
            let grown = [nf.unwrap(), ns.unwrap()];
            if grown.contains(&newcomer) {
                prop_assert!(grown.contains(&f) || nf == Some(newcomer));
            } else {
                prop_assert_eq!((nf, ns), (first, second));
            }
        }
    }
}
