//! The staged planner/executor query pipeline.
//!
//! A query passes through four stages, each its own module and each
//! testable in isolation:
//!
//! 1. **request** — [`SearchRequest`] spells out everything the seed API
//!    left implicit: top-k, pagination, routing policy, freshness mode and
//!    ads.
//! 2. **plan** — the planner analyzes the query, dedupes terms and resolves
//!    each against the cache tiers, leaving a precise fetch list
//!    ([`QueryPlan`]).
//! 3. **executor** — misses are fetched through the versioned DHT read and
//!    the pure stages (intersect, BM25, PageRank blend, rank) produce the
//!    full result list. In a batch window
//!    ([`crate::QueenBee::search_batch`]) each distinct missing term is
//!    fetched **once** and fanned out to every query that needs it.
//! 4. **response** — [`SearchResponse`] carries the paginated hits, a
//!    per-stage cost trace and per-term cache provenance.

pub mod executor;
pub mod plan;
pub mod request;
pub mod response;

pub use plan::{PlannedTerm, QueryPlan, StatsPlan, TermPlan};
pub use request::{Freshness, RoutingPolicy, SearchRequest};
pub use response::{SearchResponse, StageCosts, TermProvenance};
