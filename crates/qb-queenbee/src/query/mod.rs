//! The staged planner/executor query pipeline.
//!
//! A query passes through four stages, each its own module and each
//! testable in isolation:
//!
//! 1. **request** — [`SearchRequest`] spells out everything the seed API
//!    left implicit: top-k, pagination, routing policy, freshness mode and
//!    ads.
//! 2. **plan** — the planner analyzes the query, dedupes terms and resolves
//!    each against the cache tiers, leaving a precise fetch list
//!    ([`QueryPlan`]).
//! 3. **executor** — misses are fetched through the versioned DHT read and
//!    the pure stages (intersect, BM25, PageRank blend, rank) produce the
//!    full result list. In a batch window
//!    ([`crate::QueenBee::search_batch`]) each distinct missing term is
//!    fetched **once** and fanned out to every query that needs it.
//! 4. **response** — [`SearchResponse`] carries the paginated hits, a
//!    per-stage cost trace and per-term cache provenance.
//!
//! On top of the stages sits the **pipelined execution engine**
//! ([`pipeline`]): a [`PipelineDriver`] moves whole windows through an
//! explicit `Planned → Fetching → Scoring → Done` state machine, overlaps
//! up to `max_windows_in_flight` windows (window N+1's fetches issue while
//! window N's are in flight, under the simulated network's per-link
//! in-flight limits), and dedupes identical/prefix-sharing queries across
//! the in-flight set through a version-tagged [`executor::WindowMemo`].
//! [`crate::QueenBee::search_pipelined`] is the entry point.
//!
//! For **open-loop** serving — queries arriving on their own clock instead
//! of draining a list — the [`admission`] module adds bounded per-frontend
//! ingress queues, load shedding and freshness degradation in front of the
//! pipeline; [`crate::QueenBee::serve_open_loop`] is that entry point.

pub mod admission;
pub mod executor;
pub mod pipeline;
pub mod plan;
pub mod request;
pub mod response;
pub mod routing;

pub use admission::{AdmissionConfig, LoadReport, TimedRequest};
pub use executor::WindowMemo;
pub use pipeline::{
    PipelineConfig, PipelineDriver, PipelineOutcome, PipelineReport, WindowSpan, WindowState,
};
pub use plan::{PlannedTerm, QueryPlan, StatsPlan, TermPlan};
pub use request::{Freshness, RoutingPolicy, SearchRequest};
pub use response::{SearchResponse, StageCosts, TermProvenance};
