//! The executor: turn resolved shards into a ranked result list, and track
//! the shared shard fetches of a batch window.
//!
//! The network side (versioned DHT reads) stays in the engine, which owns
//! the simulated network; this module holds the pure stages — intersection,
//! BM25 scoring, PageRank blending, ranking — and the bookkeeping that lets
//! a batch window fetch each distinct missing term exactly once and fan the
//! shard out to every query that needs it.

use qb_common::SimDuration;
use qb_index::{blend_with_rank, Bm25, IndexStats, PostingList, ScoredDoc, Scorer, ShardEntry};
use std::collections::BTreeMap;

/// One DHT shard fetch performed during a batch window, shared by every
/// query in the window that needs the term.
#[derive(Debug, Clone)]
pub struct FetchedShard {
    /// The fetched shard.
    pub shard: ShardEntry,
    /// Latency of the fetch (charged to every sharer: the window's fetches
    /// run concurrently).
    pub latency: SimDuration,
    /// RPC attempts of the fetch (charged only to the triggering query).
    pub messages: u64,
    /// `seq` of the query that triggered the fetch.
    pub charged_to: u64,
}

/// The distinct shard fetches of one batch window, keyed by
/// `(serving frontend, term)`. Sharing is scoped per frontend on purpose:
/// queries served by the same frontend ride one fetch, but two frontends
/// are two machines — moving a shard between them is the gossip overlay's
/// job, which charges the transfer to the simulated network. A batch
/// window must never become a free side channel around that accounting.
/// (In single mode the frontend slot is `None`, so the whole window
/// shares.)
pub type FetchSet = BTreeMap<(Option<usize>, String), FetchedShard>;

/// Intersect the query terms' posting lists (falling back to the union when
/// the conjunction is empty, so multi-term queries degrade gracefully),
/// score each candidate with BM25 summed over the terms, blend with
/// PageRank and rank. Returns the **full** sorted result list — pagination
/// is the response stage's job — plus the number of candidates scored.
pub fn intersect_and_score(
    shards: &[ShardEntry],
    stats: &IndexStats,
    rank_of: impl Fn(&str) -> f64,
    rank_weight: f64,
) -> (Vec<ScoredDoc>, usize) {
    // Intersect smallest-first so the candidate set shrinks fastest.
    let mut lists: Vec<PostingList> = shards.iter().map(|s| s.to_posting_list()).collect();
    lists.sort_by_key(|l| l.len());
    let mut candidates = lists.first().cloned().unwrap_or_default();
    for l in lists.iter().skip(1) {
        candidates = candidates.intersect(l);
    }
    if candidates.is_empty() && shards.len() > 1 {
        candidates = PostingList::new();
        for l in shards.iter().map(|s| s.to_posting_list()) {
            candidates = candidates.union(&l);
        }
    }

    let scorer = Bm25::default();
    let num_docs = stats.num_docs.max(1) as usize;
    let avg_len = stats.avg_len();
    let mut scored = 0usize;
    let mut results: Vec<ScoredDoc> = Vec::new();
    for posting in candidates.postings() {
        let mut relevance = 0.0;
        let mut meta: Option<&qb_index::ShardPosting> = None;
        for shard in shards {
            if let Some(p) = shard.get(posting.doc_id) {
                relevance +=
                    scorer.score(p.term_freq, p.doc_len, avg_len, shard.doc_freq(), num_docs);
                meta = Some(p);
            }
        }
        let Some(meta) = meta else { continue };
        scored += 1;
        let rank = rank_of(&meta.name);
        let score = blend_with_rank(relevance, rank, rank_weight);
        results.push(ScoredDoc {
            doc_id: posting.doc_id,
            name: meta.name.clone(),
            score,
            version: meta.version,
            creator: meta.creator,
        });
    }
    results.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.doc_id.cmp(&b.doc_id))
    });
    (results, scored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_index::ShardPosting;

    fn shard(term: &str, docs: &[(u64, u32)]) -> ShardEntry {
        let mut s = ShardEntry::empty(term);
        s.version = 1;
        for &(doc_id, tf) in docs {
            s.upsert(ShardPosting {
                doc_id,
                term_freq: tf,
                doc_len: 50,
                name: format!("page/{doc_id}"),
                version: 1,
                creator: doc_id,
            });
        }
        s
    }

    fn stats() -> IndexStats {
        IndexStats {
            num_docs: 10,
            total_len: 500,
            version: 1,
        }
    }

    #[test]
    fn conjunction_wins_and_ranking_is_stable() {
        let shards = vec![
            shard("alpha", &[(1, 3), (2, 1), (3, 1)]),
            shard("beta", &[(2, 2), (3, 2)]),
        ];
        let (results, scored) = intersect_and_score(&shards, &stats(), |_| 0.0, 0.0);
        // Docs 2 and 3 match both terms; doc 1 only one.
        assert_eq!(scored, 2);
        let ids: Vec<u64> = results.iter().map(|r| r.doc_id).collect();
        assert!(ids.contains(&2) && ids.contains(&3) && !ids.contains(&1));
        // Identical inputs rank identically (scores tie-broken by doc id).
        let (again, _) = intersect_and_score(&shards, &stats(), |_| 0.0, 0.0);
        assert_eq!(results, again);
    }

    #[test]
    fn empty_conjunction_degrades_to_union() {
        let shards = vec![shard("alpha", &[(1, 2)]), shard("beta", &[(9, 2)])];
        let (results, _) = intersect_and_score(&shards, &stats(), |_| 0.0, 0.0);
        let ids: Vec<u64> = results.iter().map(|r| r.doc_id).collect();
        assert_eq!(ids.len(), 2, "union fallback covers both terms");
        assert!(ids.contains(&1) && ids.contains(&9));
    }

    #[test]
    fn rank_blend_reorders_equal_relevance() {
        let shards = vec![shard("alpha", &[(1, 2), (2, 2)])];
        let rank = |name: &str| if name == "page/2" { 0.9 } else { 0.0 };
        let (no_blend, _) = intersect_and_score(&shards, &stats(), rank, 0.0);
        assert_eq!(no_blend[0].doc_id, 1, "doc-id tiebreak without blending");
        let (blended, _) = intersect_and_score(&shards, &stats(), rank, 0.8);
        assert_eq!(blended[0].doc_id, 2, "PageRank lifts page/2");
    }

    #[test]
    fn returns_the_full_list_unpaginated() {
        let docs: Vec<(u64, u32)> = (1..=25).map(|i| (i, 1)).collect();
        let shards = vec![shard("alpha", &docs)];
        let (results, scored) = intersect_and_score(&shards, &stats(), |_| 0.0, 0.3);
        assert_eq!(results.len(), 25, "executor never truncates");
        assert_eq!(scored, 25);
    }
}
