//! The executor: turn resolved shards into a ranked result list, and track
//! the shared shard fetches of a batch window.
//!
//! The network side (versioned DHT reads) stays in the engine, which owns
//! the simulated network; this module holds the pure stages — intersection,
//! BM25 scoring, PageRank blending, ranking — and the bookkeeping that lets
//! a batch window fetch each distinct missing term exactly once and fan the
//! shard out to every query that needs it.
//!
//! For the pipelined engine ([`crate::query::pipeline`]) this module also
//! holds the [`WindowMemo`]: a scoped memo of scored result lists and
//! partial intersections, tagged with the exact per-term shard versions
//! they were computed from, so identical and prefix-sharing queries in the
//! in-flight window set skip the intersect/score work without ever serving
//! a result computed from different data.

use qb_common::SimDuration;
use qb_index::{blend_with_rank, Bm25, IndexStats, PostingList, ScoredDoc, Scorer, ShardEntry};
use std::collections::{BTreeMap, HashMap};

/// One DHT shard fetch performed during a batch window, shared by every
/// query in the window that needs the term.
#[derive(Debug, Clone)]
pub struct FetchedShard {
    /// The fetched shard.
    pub shard: ShardEntry,
    /// Latency of the fetch (charged to every sharer: the window's fetches
    /// run concurrently).
    pub latency: SimDuration,
    /// RPC attempts of the fetch (charged only to the triggering query).
    pub messages: u64,
    /// `seq` of the query that triggered the fetch.
    pub charged_to: u64,
    /// The simulated peer the fetch was issued from (the pipeline driver
    /// tracks the fetch as an in-flight operation of this peer).
    pub origin_peer: u64,
}

/// The distinct shard fetches of one batch window, keyed by
/// `(serving frontend, term)`. Sharing is scoped per frontend on purpose:
/// queries served by the same frontend ride one fetch, but two frontends
/// are two machines — moving a shard between them is the gossip overlay's
/// job, which charges the transfer to the simulated network. A batch
/// window must never become a free side channel around that accounting.
/// (In single mode the frontend slot is `None`, so the whole window
/// shares.)
pub type FetchSet = BTreeMap<(Option<usize>, String), FetchedShard>;

/// Intersect the query terms' posting lists (falling back to the union when
/// the conjunction is empty, so multi-term queries degrade gracefully),
/// score each candidate with BM25 summed over the terms, blend with
/// PageRank and rank. Returns the **full** sorted result list — pagination
/// is the response stage's job — plus the number of candidates scored.
pub fn intersect_and_score(
    shards: &[ShardEntry],
    stats: &IndexStats,
    rank_of: impl Fn(&str) -> f64,
    rank_weight: f64,
) -> (Vec<ScoredDoc>, usize) {
    // Intersect smallest-first so the candidate set shrinks fastest.
    let mut lists: Vec<PostingList> = shards.iter().map(|s| s.to_posting_list()).collect();
    lists.sort_by_key(|l| l.len());
    let mut candidates = lists.first().cloned().unwrap_or_default();
    for l in lists.iter().skip(1) {
        candidates = candidates.intersect(l);
    }
    if candidates.is_empty() && shards.len() > 1 {
        candidates = PostingList::new();
        for l in shards.iter().map(|s| s.to_posting_list()) {
            candidates = candidates.union(&l);
        }
    }
    score_candidates(&candidates, shards, stats, rank_of, rank_weight)
}

/// BM25-score and rank the candidate set against the query shards — the
/// scoring tail shared by the plain and memoized intersection paths.
fn score_candidates(
    candidates: &PostingList,
    shards: &[ShardEntry],
    stats: &IndexStats,
    rank_of: impl Fn(&str) -> f64,
    rank_weight: f64,
) -> (Vec<ScoredDoc>, usize) {
    let scorer = Bm25::default();
    let num_docs = stats.num_docs.max(1) as usize;
    let avg_len = stats.avg_len();
    let mut scored = 0usize;
    let mut results: Vec<ScoredDoc> = Vec::new();
    for posting in candidates.postings() {
        let mut relevance = 0.0;
        let mut meta: Option<&qb_index::ShardPosting> = None;
        for shard in shards {
            if let Some(p) = shard.get(posting.doc_id) {
                relevance +=
                    scorer.score(p.term_freq, p.doc_len, avg_len, shard.doc_freq(), num_docs);
                meta = Some(p);
            }
        }
        let Some(meta) = meta else { continue };
        scored += 1;
        let rank = rank_of(&meta.name);
        let score = blend_with_rank(relevance, rank, rank_weight);
        results.push(ScoredDoc {
            doc_id: posting.doc_id,
            name: meta.name.clone(),
            score,
            version: meta.version,
            creator: meta.creator,
        });
    }
    results.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.doc_id.cmp(&b.doc_id))
    });
    (results, scored)
}

/// Cross-query result sharing across a pipelined run's window stream: a
/// memo of fully scored result lists plus partial intersections. It lives
/// for one `search_pipelined` call and is size-bounded
/// ([`WindowMemo::MAX_SCORED`] / [`WindowMemo::MAX_PARTIAL`] — the maps
/// reset wholesale at the cap, which only costs recomputation).
///
/// Correctness rests on the same per-term version tags the result cache
/// uses: every memo entry is keyed by the exact `(term, shard version)`
/// sequence (and collection statistics) the computation consumed, so a
/// hit is provably the identical computation — never a "close enough"
/// answer from different data. Both maps are scoped per serving frontend
/// (every key carries the frontend slot): frontends are separate machines,
/// and moving *results* between them is the gossip overlay's
/// network-charged job ([`qb_cache::QueryCache::store_remote_result`]),
/// not a free side channel of the pipeline.
#[derive(Debug, Default)]
pub struct WindowMemo {
    /// Full-query memo: fingerprint → (full scored list, candidates scored).
    scored: HashMap<String, (Vec<ScoredDoc>, usize)>,
    /// Prefix memo: partial conjunctions over the length-sorted list order,
    /// so `"a b"` and `"a b c"` share the `a ∩ b` work (within one
    /// frontend's scope).
    partial: HashMap<String, PostingList>,
    /// Full scored lists served from the memo.
    pub hits: u64,
    /// Partial intersections reused while computing a memo miss.
    pub partial_hits: u64,
    /// Genuine intersect+score computations performed through the memo.
    pub invocations: u64,
}

impl WindowMemo {
    /// Cap on memoized scored lists before the memo resets.
    pub const MAX_SCORED: usize = 4_096;
    /// Cap on memoized partial intersections before they reset.
    pub const MAX_PARTIAL: usize = 8_192;

    /// Fingerprint of one query's scoring inputs: the serving frontend,
    /// the collection statistics and the `(term, version)` sequence in
    /// plan order. Identical fingerprints read identical shard data, so
    /// the scored list is bit-reproducible.
    pub fn fingerprint(
        frontend: Option<usize>,
        stats: &IndexStats,
        shards: &[ShardEntry],
    ) -> String {
        use std::fmt::Write;
        let mut key = match frontend {
            Some(f) => format!("f{f}"),
            None => "single".to_string(),
        };
        let _ = write!(key, "|d{}l{}", stats.num_docs, stats.total_len);
        for shard in shards {
            let _ = write!(key, "|{}@{}", shard.term, shard.version);
        }
        key
    }

    /// Memoized [`intersect_and_score`]: serve the scored list from the
    /// memo when this exact computation already ran in the window set,
    /// otherwise compute it (reusing any cached partial intersections) and
    /// remember it. The third return value reports whether this was a memo
    /// hit. Results are byte-identical to the unmemoized path: intersection
    /// is set-algebra (order-insensitive) and scoring always iterates the
    /// query's shards in plan order.
    pub fn intersect_and_score(
        &mut self,
        key: &str,
        shards: &[ShardEntry],
        stats: &IndexStats,
        rank_of: impl Fn(&str) -> f64,
        rank_weight: f64,
    ) -> (Vec<ScoredDoc>, usize, bool) {
        if let Some((results, scored)) = self.scored.get(key) {
            self.hits += 1;
            return (results.clone(), *scored, true);
        }
        self.invocations += 1;
        if self.scored.len() >= Self::MAX_SCORED {
            self.scored.clear();
        }
        if self.partial.len() >= Self::MAX_PARTIAL {
            self.partial.clear();
        }

        // Intersect smallest-first (exactly like the plain path), caching
        // every prefix conjunction so a later query sharing the prefix
        // resumes from the cached candidate set. Prefix keys inherit the
        // fingerprint's frontend scope (everything before the first '|'):
        // partial intersections never cross frontends either.
        let scope = key.split('|').next().unwrap_or_default();
        let mut lists: Vec<(String, PostingList)> = shards
            .iter()
            .map(|s| (format!("{}@{}", s.term, s.version), s.to_posting_list()))
            .collect();
        lists.sort_by_key(|(_, l)| l.len());
        let prefix_keys: Vec<String> = lists
            .iter()
            .scan(scope.to_string(), |acc, (k, _)| {
                acc.push('|');
                acc.push_str(k);
                Some(acc.clone())
            })
            .collect();
        let cached_prefix = prefix_keys
            .iter()
            .enumerate()
            .rev()
            .find(|(_, k)| self.partial.contains_key(k.as_str()))
            .map(|(i, _)| i);
        let (mut candidates, start) = match cached_prefix {
            Some(i) => {
                self.partial_hits += 1;
                (self.partial[prefix_keys[i].as_str()].clone(), i + 1)
            }
            None => match lists.first() {
                Some((_, first)) => {
                    self.partial.insert(prefix_keys[0].clone(), first.clone());
                    (first.clone(), 1)
                }
                None => (PostingList::new(), 0),
            },
        };
        for i in start..lists.len() {
            candidates = candidates.intersect(&lists[i].1);
            self.partial
                .insert(prefix_keys[i].clone(), candidates.clone());
        }
        if candidates.is_empty() && shards.len() > 1 {
            candidates = PostingList::new();
            for (_, l) in &lists {
                candidates = candidates.union(l);
            }
        }
        let (results, scored) = score_candidates(&candidates, shards, stats, rank_of, rank_weight);
        self.scored
            .insert(key.to_string(), (results.clone(), scored));
        (results, scored, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_index::ShardPosting;

    fn shard(term: &str, docs: &[(u64, u32)]) -> ShardEntry {
        let mut s = ShardEntry::empty(term);
        s.version = 1;
        for &(doc_id, tf) in docs {
            s.upsert(ShardPosting {
                doc_id,
                term_freq: tf,
                doc_len: 50,
                name: format!("page/{doc_id}"),
                version: 1,
                creator: doc_id,
            });
        }
        s
    }

    fn stats() -> IndexStats {
        IndexStats {
            num_docs: 10,
            total_len: 500,
            version: 1,
        }
    }

    #[test]
    fn conjunction_wins_and_ranking_is_stable() {
        let shards = vec![
            shard("alpha", &[(1, 3), (2, 1), (3, 1)]),
            shard("beta", &[(2, 2), (3, 2)]),
        ];
        let (results, scored) = intersect_and_score(&shards, &stats(), |_| 0.0, 0.0);
        // Docs 2 and 3 match both terms; doc 1 only one.
        assert_eq!(scored, 2);
        let ids: Vec<u64> = results.iter().map(|r| r.doc_id).collect();
        assert!(ids.contains(&2) && ids.contains(&3) && !ids.contains(&1));
        // Identical inputs rank identically (scores tie-broken by doc id).
        let (again, _) = intersect_and_score(&shards, &stats(), |_| 0.0, 0.0);
        assert_eq!(results, again);
    }

    #[test]
    fn empty_conjunction_degrades_to_union() {
        let shards = vec![shard("alpha", &[(1, 2)]), shard("beta", &[(9, 2)])];
        let (results, _) = intersect_and_score(&shards, &stats(), |_| 0.0, 0.0);
        let ids: Vec<u64> = results.iter().map(|r| r.doc_id).collect();
        assert_eq!(ids.len(), 2, "union fallback covers both terms");
        assert!(ids.contains(&1) && ids.contains(&9));
    }

    #[test]
    fn rank_blend_reorders_equal_relevance() {
        let shards = vec![shard("alpha", &[(1, 2), (2, 2)])];
        let rank = |name: &str| if name == "page/2" { 0.9 } else { 0.0 };
        let (no_blend, _) = intersect_and_score(&shards, &stats(), rank, 0.0);
        assert_eq!(no_blend[0].doc_id, 1, "doc-id tiebreak without blending");
        let (blended, _) = intersect_and_score(&shards, &stats(), rank, 0.8);
        assert_eq!(blended[0].doc_id, 2, "PageRank lifts page/2");
    }

    #[test]
    fn returns_the_full_list_unpaginated() {
        let docs: Vec<(u64, u32)> = (1..=25).map(|i| (i, 1)).collect();
        let shards = vec![shard("alpha", &docs)];
        let (results, scored) = intersect_and_score(&shards, &stats(), |_| 0.0, 0.3);
        assert_eq!(results.len(), 25, "executor never truncates");
        assert_eq!(scored, 25);
    }

    #[test]
    fn window_memo_returns_byte_identical_results() {
        let shards = vec![
            shard("alpha", &[(1, 3), (2, 1), (3, 1)]),
            shard("beta", &[(2, 2), (3, 2)]),
        ];
        let (plain, plain_scored) = intersect_and_score(&shards, &stats(), |_| 0.0, 0.3);
        let mut memo = WindowMemo::default();
        let key = WindowMemo::fingerprint(None, &stats(), &shards);
        let (first, first_scored, hit) =
            memo.intersect_and_score(&key, &shards, &stats(), |_| 0.0, 0.3);
        assert!(!hit, "cold memo computes");
        assert_eq!(first, plain, "memoized path must match the plain path");
        assert_eq!(first_scored, plain_scored);
        // The identical query again: a memo hit, identical output, no new
        // computation.
        let (again, again_scored, hit) =
            memo.intersect_and_score(&key, &shards, &stats(), |_| 0.0, 0.3);
        assert!(hit);
        assert_eq!(again, first);
        assert_eq!(again_scored, first_scored);
        assert_eq!(memo.hits, 1);
        assert_eq!(memo.invocations, 1, "one real computation for two serves");
    }

    #[test]
    fn window_memo_shares_prefix_intersections() {
        // beta is the smallest list, alpha next: the sorted order for the
        // two-term query is [beta, alpha], and the three-term query
        // [beta, alpha, gamma] extends it — the beta ∩ alpha prefix is
        // reused.
        let two = vec![
            shard("alpha", &[(1, 1), (2, 1), (3, 1)]),
            shard("beta", &[(2, 2), (3, 2)]),
        ];
        let mut three = two.clone();
        three.push(shard("gamma", &[(1, 1), (2, 1), (3, 1), (4, 1)]));
        let mut memo = WindowMemo::default();
        let key2 = WindowMemo::fingerprint(None, &stats(), &two);
        let key3 = WindowMemo::fingerprint(None, &stats(), &three);
        memo.intersect_and_score(&key2, &two, &stats(), |_| 0.0, 0.0);
        assert_eq!(memo.partial_hits, 0);
        let (results, _, hit) = memo.intersect_and_score(&key3, &three, &stats(), |_| 0.0, 0.0);
        assert!(!hit, "different query: no full-memo hit");
        assert_eq!(memo.partial_hits, 1, "the shared prefix is reused");
        let (plain, _) = intersect_and_score(&three, &stats(), |_| 0.0, 0.0);
        assert_eq!(results, plain);
    }

    #[test]
    fn window_memo_fingerprints_separate_versions_and_frontends() {
        let s = stats();
        let shards_v1 = vec![shard("alpha", &[(1, 1)])];
        let mut shards_v2 = shards_v1.clone();
        shards_v2[0].version = 2;
        let a = WindowMemo::fingerprint(None, &s, &shards_v1);
        let b = WindowMemo::fingerprint(None, &s, &shards_v2);
        assert_ne!(a, b, "a republished shard must never share an entry");
        let f0 = WindowMemo::fingerprint(Some(0), &s, &shards_v1);
        let f1 = WindowMemo::fingerprint(Some(1), &s, &shards_v1);
        assert_ne!(f0, f1, "frontends never share compute for free");
        // The prefix memo is frontend-scoped too: the same query computed
        // on two frontends shares no partial intersections.
        let two = vec![
            shard("alpha", &[(1, 1), (2, 1)]),
            shard("beta", &[(2, 2), (3, 2)]),
        ];
        let mut memo = WindowMemo::default();
        let k0 = WindowMemo::fingerprint(Some(0), &s, &two);
        let k1 = WindowMemo::fingerprint(Some(1), &s, &two);
        let (r0, _, _) = memo.intersect_and_score(&k0, &two, &s, |_| 0.0, 0.0);
        let (r1, _, hit) = memo.intersect_and_score(&k1, &two, &s, |_| 0.0, 0.0);
        assert!(!hit, "different frontend: full memo must miss");
        assert_eq!(
            memo.partial_hits, 0,
            "partial intersections must not cross frontends"
        );
        assert_eq!(memo.invocations, 2);
        assert_eq!(r0, r1, "both frontends still compute the same answer");
        let other_stats = IndexStats {
            num_docs: 99,
            total_len: 500,
            version: 1,
        };
        assert_ne!(
            WindowMemo::fingerprint(None, &other_stats, &shards_v1),
            a,
            "different collection statistics change the scores"
        );
    }
}
