//! Admission control and load shedding for open-loop serving.
//!
//! Every earlier experiment drains a fixed query list as fast as the engine
//! serves it (closed-loop), so the engine never sees *offered load* above
//! its capacity. This module is the serving-side half of the open-loop
//! harness (`qb-load` generates the arrival traces): each frontend gets a
//! **bounded ingress queue** feeding [`crate::QueenBee::search_pipelined`]
//! windows — there is no unbounded buffering anywhere — and an admission
//! controller decides, at each query's arrival instant, whether to
//!
//! * **admit** it as-is,
//! * **degrade** it (a [`Freshness::Fresh`] request is downgraded to
//!   [`Freshness::CacheOk`], trading version-checked cache serving for a
//!   guaranteed DHT round trip), or
//! * **shed** it (rejected outright, the only honest answer once the
//!   backlog would blow the latency target anyway).
//!
//! The controller's signal is the **estimated sojourn** of the arriving
//! query: the frontend's remaining busy time plus its queued work, priced
//! at an exponentially weighted estimate of observed per-query service
//! time. The estimate is fed by the measured makespans of dispatched
//! pipeline batches, which already embed the per-link queueing delay the
//! [`crate::PipelineReport`] charges — so congestion inside the pipeline
//! pushes the estimate up and trips degradation/shedding without any
//! wall-clock input. Everything is integer arithmetic on simulated
//! microseconds: two runs of the same trace produce bit-identical
//! [`LoadReport`]s.
//!
//! [`Freshness::Fresh`]: crate::query::request::Freshness::Fresh
//! [`Freshness::CacheOk`]: crate::query::request::Freshness::CacheOk

use qb_common::{LatencyHistogram, QbError, QbResult, SimDuration, SimInstant};

use crate::query::request::SearchRequest;

/// Knobs of the per-frontend admission/backpressure layer. Disabled by
/// default: nothing outside [`crate::QueenBee::serve_open_loop`] consults
/// it, so every closed-loop path keeps its exact behavior.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionConfig {
    /// Master switch; [`crate::QueenBee::serve_open_loop`] refuses to run
    /// while off, and nothing else reads this config.
    pub enabled: bool,
    /// Hard bound on queries queued per frontend; an arrival that finds
    /// the queue full is shed unconditionally (the no-unbounded-buffering
    /// guarantee).
    pub queue_capacity: usize,
    /// Queries per pipeline window a dispatch cuts its batch into.
    pub window_size: usize,
    /// Pipeline depth (windows in flight) per dispatched batch.
    pub max_windows_in_flight: usize,
    /// A queued query older than this forces a partial-window dispatch, so
    /// light load is not penalized waiting for a full window.
    pub max_batch_delay: SimDuration,
    /// Estimated sojourn above which a `Fresh` arrival is degraded to
    /// `CacheOk` (first, cheaper relief valve).
    pub degrade_threshold: SimDuration,
    /// Estimated sojourn above which an arrival is shed even though the
    /// queue still has room (second valve; keeps the tail bounded).
    pub shed_threshold: SimDuration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            enabled: false,
            queue_capacity: 64,
            window_size: 16,
            max_windows_in_flight: 2,
            max_batch_delay: SimDuration::from_millis(2),
            degrade_threshold: SimDuration::from_millis(25),
            shed_threshold: SimDuration::from_millis(100),
        }
    }
}

impl AdmissionConfig {
    /// An enabled configuration with the default knobs.
    pub fn enabled() -> AdmissionConfig {
        AdmissionConfig {
            enabled: true,
            ..AdmissionConfig::default()
        }
    }

    /// Validate the configuration (only when enabled; a disabled config
    /// tolerates degenerate knobs, like the gossip config does).
    pub fn validate(&self) -> QbResult<()> {
        if !self.enabled {
            return Ok(());
        }
        if self.queue_capacity == 0 {
            return Err(QbError::Config(
                "admission queue capacity must be positive".into(),
            ));
        }
        if self.window_size == 0 || self.max_windows_in_flight == 0 {
            return Err(QbError::Config(
                "admission window size and pipeline depth must be positive".into(),
            ));
        }
        if self.degrade_threshold > self.shed_threshold {
            return Err(QbError::Config(
                "admission degrade threshold must not exceed the shed threshold".into(),
            ));
        }
        Ok(())
    }

    /// Most queries one dispatch hands to the pipeline (a full pipeline's
    /// worth of windows).
    pub(crate) fn dispatch_limit(&self) -> usize {
        self.window_size.max(1) * self.max_windows_in_flight.max(1)
    }
}

/// A query plus its arrival offset on the open-loop timeline (relative to
/// the instant the replay starts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedRequest {
    /// Arrival offset from the start of the replay.
    pub offset: SimDuration,
    /// The request itself.
    pub request: SearchRequest,
}

impl TimedRequest {
    /// A request arriving `offset` after the replay starts.
    pub fn new(offset: SimDuration, request: SearchRequest) -> TimedRequest {
        TimedRequest { offset, request }
    }
}

/// What one open-loop replay did: admission counters, first-class latency
/// accounting (per-query sojourn and queue-wait histograms) and goodput.
/// Derived `PartialEq` makes "two replays of the same trace are
/// bit-identical" a one-line assertion.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadReport {
    /// Queries the trace offered.
    pub offered: u64,
    /// Queries admitted (including degraded ones).
    pub admitted: u64,
    /// Admitted `Fresh` queries downgraded to `CacheOk`.
    pub degraded: u64,
    /// Queries rejected (queue full or shed threshold).
    pub shed: u64,
    /// Admitted queries served to completion.
    pub completed: u64,
    /// Pipeline windows dispatched.
    pub windows: u64,
    /// Dispatched batches (each one `search_pipelined` call).
    pub dispatches: u64,
    /// Deepest any frontend's ingress queue ever got (≤ the configured
    /// capacity by construction).
    pub peak_queue_depth: usize,
    /// Admitted queries per fleet slot (index = frontend). The routing
    /// experiments read the max/mean of this vector to quantify how evenly
    /// a policy spreads load — in particular across a crash window, where
    /// ring-successor routing piles the dead slot's keyspace onto one
    /// survivor.
    pub admitted_per_frontend: Vec<u64>,
    /// Per-query sojourn (arrival → response completion).
    pub sojourn: LatencyHistogram,
    /// Per-query ingress wait (arrival → window issue).
    pub queue_wait: LatencyHistogram,
    /// Total per-link queueing delay the dispatched pipelines charged.
    pub pipeline_queue_delay: SimDuration,
    /// Replay start → last completion.
    pub makespan: SimDuration,
}

impl LoadReport {
    /// Fraction of offered queries shed (0.0 when nothing was offered).
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }

    /// Completed queries per simulated second of makespan.
    pub fn goodput_qps(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }

    /// Median sojourn.
    pub fn p50(&self) -> SimDuration {
        self.sojourn.p50()
    }

    /// 99th-percentile sojourn.
    pub fn p99(&self) -> SimDuration {
        self.sojourn.p99()
    }

    /// 99.9th-percentile sojourn.
    pub fn p999(&self) -> SimDuration {
        self.sojourn.p999()
    }

    /// Ratio of the busiest frontend's admitted count to the mean over all
    /// slots (1.0 = perfectly even; 0.0 when nothing was admitted). The
    /// post-crash load-spike metric of E12/E17.
    pub fn admitted_imbalance(&self) -> f64 {
        let total: u64 = self.admitted_per_frontend.iter().sum();
        let slots = self.admitted_per_frontend.len();
        if total == 0 || slots == 0 {
            return 0.0;
        }
        let max = *self.admitted_per_frontend.iter().max().unwrap_or(&0);
        let mean = total as f64 / slots as f64;
        max as f64 / mean
    }
}

impl qb_trace::MetricsSource for LoadReport {
    fn metrics_into(&self, out: &mut qb_trace::MetricsSnapshot) {
        out.add_counter("load.offered", self.offered);
        out.add_counter("load.admitted", self.admitted);
        out.add_counter("load.degraded", self.degraded);
        out.add_counter("load.shed", self.shed);
        out.add_counter("load.completed", self.completed);
        out.add_counter("load.windows", self.windows);
        out.add_counter("load.dispatches", self.dispatches);
        out.add_counter("load.peak_queue_depth", self.peak_queue_depth as u64);
        out.add_counter(
            "load.pipeline_queue_delay_us",
            self.pipeline_queue_delay.as_micros(),
        );
        out.add_counter("load.makespan_us", self.makespan.as_micros());
        out.merge_histogram("load.sojourn", &self.sojourn);
        out.merge_histogram("load.queue_wait", &self.queue_wait);
    }
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "load: {} offered, {} admitted ({} degraded), {} shed ({:.1}%), {} completed",
            self.offered,
            self.admitted,
            self.degraded,
            self.shed,
            100.0 * self.shed_rate(),
            self.completed,
        )?;
        writeln!(
            f,
            "  sojourn: {} | goodput {:.1} q/s over {}",
            self.sojourn,
            self.goodput_qps(),
            self.makespan
        )?;
        writeln!(
            f,
            "  pipeline: {} dispatches, {} windows, peak queue {}, link queue delay {}",
            self.dispatches, self.windows, self.peak_queue_depth, self.pipeline_queue_delay
        )
    }
}

/// One frontend's bounded ingress queue plus the controller state scoped
/// to it (busy horizon and the service-time estimate its dispatches feed).
#[derive(Debug)]
pub(crate) struct IngressQueue {
    /// Queued `(arrival, request)` pairs, oldest first.
    pub(crate) queue: std::collections::VecDeque<(SimInstant, SearchRequest)>,
    /// When the frontend finishes its most recently dispatched batch.
    pub(crate) busy_until: SimInstant,
    /// EWMA of observed per-query service time in microseconds (0 until
    /// the first dispatch completes).
    pub(crate) service_est_us: u64,
}

impl IngressQueue {
    pub(crate) fn new(start: SimInstant) -> IngressQueue {
        IngressQueue {
            queue: std::collections::VecDeque::new(),
            busy_until: start,
            service_est_us: 0,
        }
    }

    /// The sojourn an arrival at `now` would see if admitted: remaining
    /// busy time, plus the queued backlog (itself included) priced at the
    /// observed per-query service estimate.
    pub(crate) fn estimated_sojourn(&self, now: SimInstant) -> SimDuration {
        let backlog = (self.queue.len() as u64 + 1).saturating_mul(self.service_est_us);
        SimDuration::from_micros(
            self.busy_until
                .since(now)
                .as_micros()
                .saturating_add(backlog),
        )
    }

    /// Fold a dispatched batch's measured per-query service time into the
    /// EWMA (weight 1/4 new, 3/4 history — smooth enough to ride out one
    /// lucky all-cached batch, fast enough to track a flash crowd).
    pub(crate) fn observe_service(&mut self, batch_len: usize, makespan: SimDuration) {
        if batch_len == 0 {
            return;
        }
        let per_query = makespan.as_micros() / batch_len as u64;
        self.service_est_us = if self.service_est_us == 0 {
            per_query
        } else {
            (3 * self.service_est_us + per_query) / 4
        };
    }

    /// When this queue wants to dispatch next, given the admission config:
    /// immediately once a full pipeline of work (or the batch-delay
    /// deadline of its oldest entry) is reached, but never before the
    /// frontend is free. `None` while empty.
    pub(crate) fn next_dispatch_at(
        &self,
        cfg: &AdmissionConfig,
        drain: bool,
    ) -> Option<SimInstant> {
        let oldest = self.queue.front()?.0;
        let limit = cfg.dispatch_limit();
        let trigger = if drain {
            oldest
        } else if self.queue.len() >= limit {
            // The arrival that filled the pipeline's worth of work.
            self.queue[limit - 1].0
        } else {
            oldest + cfg.max_batch_delay
        };
        Some(trigger.max(self.busy_until))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_off_and_valid() {
        let c = AdmissionConfig::default();
        assert!(!c.enabled);
        assert!(c.validate().is_ok());
        let e = AdmissionConfig::enabled();
        assert!(e.enabled);
        assert!(e.validate().is_ok());
        assert_eq!(e.dispatch_limit(), e.window_size * e.max_windows_in_flight);
    }

    #[test]
    fn invalid_configs_are_rejected_only_when_enabled() {
        let mut c = AdmissionConfig::enabled();
        c.queue_capacity = 0;
        assert!(c.validate().is_err());
        c.enabled = false;
        assert!(c.validate().is_ok());

        let mut c = AdmissionConfig::enabled();
        c.window_size = 0;
        assert!(c.validate().is_err());

        let mut c = AdmissionConfig::enabled();
        c.degrade_threshold = SimDuration::from_millis(200);
        assert!(c.validate().is_err());
    }

    #[test]
    fn estimated_sojourn_prices_backlog_and_busy_time() {
        let t0 = SimInstant(1_000_000);
        let mut q = IngressQueue::new(t0);
        assert_eq!(q.estimated_sojourn(t0), SimDuration::ZERO);
        q.busy_until = t0 + SimDuration::from_millis(5);
        q.service_est_us = 2_000;
        q.queue.push_back((t0, SearchRequest::new("hello")));
        // 5ms busy + (1 queued + the arrival itself) * 2ms.
        assert_eq!(q.estimated_sojourn(t0), SimDuration::from_millis(9));
    }

    #[test]
    fn service_estimate_is_an_ewma() {
        let mut q = IngressQueue::new(SimInstant::ZERO);
        q.observe_service(4, SimDuration::from_micros(8_000));
        assert_eq!(q.service_est_us, 2_000);
        q.observe_service(2, SimDuration::from_micros(12_000));
        assert_eq!(q.service_est_us, (3 * 2_000 + 6_000) / 4);
        let before = q.service_est_us;
        q.observe_service(0, SimDuration::from_micros(1));
        assert_eq!(q.service_est_us, before, "empty batches are ignored");
    }

    #[test]
    fn dispatch_deadline_follows_oldest_entry_until_the_pipeline_fills() {
        let cfg = AdmissionConfig::enabled();
        let t0 = SimInstant(500_000);
        let mut q = IngressQueue::new(t0);
        assert_eq!(q.next_dispatch_at(&cfg, false), None);
        q.queue.push_back((t0, SearchRequest::new("a")));
        assert_eq!(
            q.next_dispatch_at(&cfg, false),
            Some(t0 + cfg.max_batch_delay)
        );
        // Draining ignores the batching deadline.
        assert_eq!(q.next_dispatch_at(&cfg, true), Some(t0));
        // A busy frontend defers the dispatch regardless.
        q.busy_until = t0 + SimDuration::from_millis(50);
        assert_eq!(q.next_dispatch_at(&cfg, true), Some(q.busy_until));
        // Filling a pipeline's worth of work triggers on the filling arrival.
        let mut q = IngressQueue::new(t0);
        for i in 0..cfg.dispatch_limit() {
            q.queue.push_back((
                t0 + SimDuration::from_micros(i as u64),
                SearchRequest::new("x"),
            ));
        }
        assert_eq!(
            q.next_dispatch_at(&cfg, false),
            Some(t0 + SimDuration::from_micros(cfg.dispatch_limit() as u64 - 1))
        );
    }

    #[test]
    fn report_rates_handle_empty_runs() {
        let r = LoadReport::default();
        assert_eq!(r.shed_rate(), 0.0);
        assert_eq!(r.goodput_qps(), 0.0);
        let r = LoadReport {
            offered: 10,
            shed: 3,
            completed: 7,
            makespan: SimDuration::from_secs(2),
            ..LoadReport::default()
        };
        assert!((r.shed_rate() - 0.3).abs() < 1e-12);
        assert!((r.goodput_qps() - 3.5).abs() < 1e-12);
        assert!(r.to_string().contains("3 shed"));
    }

    #[test]
    fn admitted_imbalance_is_max_over_mean() {
        let r = LoadReport::default();
        assert_eq!(r.admitted_imbalance(), 0.0);
        let r = LoadReport {
            admitted_per_frontend: vec![4, 4, 4, 4],
            ..LoadReport::default()
        };
        assert!((r.admitted_imbalance() - 1.0).abs() < 1e-12);
        let r = LoadReport {
            // One slot took the whole orphaned keyspace: max 12, mean 6.
            admitted_per_frontend: vec![12, 4, 4, 4],
            ..LoadReport::default()
        };
        assert!((r.admitted_imbalance() - 2.0).abs() < 1e-12);
    }
}
