//! Gossip traffic and effectiveness counters.

use std::fmt;

/// Cumulative counters of the gossip overlay. Byte counters mirror exactly
/// what was charged to the simulated network, so experiment tables can
/// report gossip overhead next to the DHT traffic it saves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct GossipStats {
    /// Hot-set gossip rounds run.
    pub rounds: u64,
    /// Anti-entropy (full digest) rounds run.
    pub anti_entropy_rounds: u64,
    /// Digest exchanges completed.
    pub exchanges: u64,
    /// Digest exchanges that failed (partition, offline peer, drop).
    pub failed_exchanges: u64,
    /// Fill batches dropped after a successful digest swap (counted apart
    /// from `failed_exchanges` so ok + failed exchanges still sum to the
    /// pairs attempted).
    pub failed_fills: u64,
    /// Bytes spent on digest traffic.
    pub digest_bytes: u64,
    /// Bytes spent on shard fills.
    pub fill_bytes: u64,
    /// The slice of `fill_bytes` that stayed inside a latency zone
    /// (sender and receiver share a zone label; with an unzoned overlay
    /// every fill counts here).
    pub intra_zone_fill_bytes: u64,
    /// The slice of `fill_bytes` that crossed latency zones — the
    /// expensive links the zone-aware fill budgets exist to protect.
    pub cross_zone_fill_bytes: u64,
    /// The slice of `fill_bytes` sent by a join's bootstrap exchange (the
    /// elevated-budget warm-up), accounted apart from steady-state fills so
    /// a segment-vs-gossip bootstrap comparison is exact.
    pub bootstrap_fill_bytes: u64,
    /// The slice of `fill_bytes` sent by periodic anti-entropy rounds.
    pub anti_entropy_fill_bytes: u64,
    /// The slice of `anti_entropy_fill_bytes` that crossed latency zones —
    /// what zone-aware anti-entropy exists to shrink (asserted in E12).
    pub anti_entropy_cross_zone_fill_bytes: u64,
    /// Bytes spent advertising and probing segment pointers (piggybacked on
    /// digest swaps and join-time probes).
    pub segment_advert_bytes: u64,
    /// Shard fills sent.
    pub shards_pushed: u64,
    /// Shard fills accepted into a receiver's cache.
    pub shards_accepted: u64,
    /// Fills rejected because the receiver already knew a newer version —
    /// the staleness guard firing, not an error.
    pub stale_rejected: u64,
    /// Fills skipped because the receiver already held an equal-or-newer
    /// copy (digest raced a concurrent fetch).
    pub duplicates_skipped: u64,
    /// Fills the receiving tier's admission policy refused.
    pub admission_refused: u64,
    /// Bytes spent on membership summaries piggybacked on digest swaps
    /// (identical across digest modes, so accounted apart from
    /// `digest_bytes`).
    pub membership_bytes: u64,
    /// Frontends that joined the fleet (bootstrap-by-anti-entropy), crash
    /// recoveries included.
    pub joins: u64,
    /// Frontends that left gracefully (departure notices sent).
    pub leaves: u64,
    /// Frontends that crashed (no notice; peers detect via heartbeats).
    pub crashes: u64,
    /// Members marked dead in some frontend's view (liveness timeout or
    /// consecutive exchange failures).
    pub evictions: u64,
    /// Dead members revived by a fresher gossiped heartbeat (partition
    /// heals, crash recoveries observed).
    pub revivals: u64,
    /// Batch-aware advertisements that rode a digest ahead of hot-set
    /// popularity (one count per advert per exchange it rode).
    pub batch_adverts: u64,
    /// Holdings filters actually built for delta-digest exchanges.
    pub filter_builds: u64,
    /// Holdings filters served from the per-frontend cache (unchanged
    /// shard-tier generation at the same instant) instead of being rebuilt.
    pub filter_reuses: u64,
}

impl GossipStats {
    /// Total gossip overhead on the wire.
    pub fn total_bytes(&self) -> u64 {
        self.digest_bytes + self.fill_bytes + self.membership_bytes
    }

    /// Fraction of pushed fills that were accepted (0.0 when none pushed).
    pub fn acceptance_rate(&self) -> f64 {
        if self.shards_pushed == 0 {
            0.0
        } else {
            self.shards_accepted as f64 / self.shards_pushed as f64
        }
    }
}

impl qb_trace::MetricsSource for GossipStats {
    fn metrics_into(&self, out: &mut qb_trace::MetricsSnapshot) {
        out.add_counter("gossip.rounds", self.rounds);
        out.add_counter("gossip.anti_entropy_rounds", self.anti_entropy_rounds);
        out.add_counter("gossip.exchanges", self.exchanges);
        out.add_counter("gossip.failed_exchanges", self.failed_exchanges);
        out.add_counter("gossip.failed_fills", self.failed_fills);
        out.add_counter("gossip.digest_bytes", self.digest_bytes);
        out.add_counter("gossip.fill_bytes", self.fill_bytes);
        out.add_counter("gossip.intra_zone_fill_bytes", self.intra_zone_fill_bytes);
        out.add_counter("gossip.cross_zone_fill_bytes", self.cross_zone_fill_bytes);
        out.add_counter("gossip.bootstrap_fill_bytes", self.bootstrap_fill_bytes);
        out.add_counter(
            "gossip.anti_entropy_fill_bytes",
            self.anti_entropy_fill_bytes,
        );
        out.add_counter(
            "gossip.anti_entropy_cross_zone_fill_bytes",
            self.anti_entropy_cross_zone_fill_bytes,
        );
        out.add_counter("gossip.segment_advert_bytes", self.segment_advert_bytes);
        out.add_counter("gossip.shards_pushed", self.shards_pushed);
        out.add_counter("gossip.shards_accepted", self.shards_accepted);
        out.add_counter("gossip.stale_rejected", self.stale_rejected);
        out.add_counter("gossip.duplicates_skipped", self.duplicates_skipped);
        out.add_counter("gossip.admission_refused", self.admission_refused);
        out.add_counter("gossip.membership_bytes", self.membership_bytes);
        out.add_counter("gossip.joins", self.joins);
        out.add_counter("gossip.leaves", self.leaves);
        out.add_counter("gossip.crashes", self.crashes);
        out.add_counter("gossip.evictions", self.evictions);
        out.add_counter("gossip.revivals", self.revivals);
        out.add_counter("gossip.batch_adverts", self.batch_adverts);
        out.add_counter("gossip.filter_builds", self.filter_builds);
        out.add_counter("gossip.filter_reuses", self.filter_reuses);
    }
}

impl fmt::Display for GossipStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "gossip: {} rounds (+{} anti-entropy), {} exchanges ({} failed)",
            self.rounds, self.anti_entropy_rounds, self.exchanges, self.failed_exchanges
        )?;
        writeln!(
            f,
            "  fills: {} pushed, {} accepted, {} stale-rejected, {} duplicates, {} refused, {} batches dropped",
            self.shards_pushed,
            self.shards_accepted,
            self.stale_rejected,
            self.duplicates_skipped,
            self.admission_refused,
            self.failed_fills
        )?;
        writeln!(
            f,
            "  bytes: {} digest + {} fill ({} intra-zone / {} cross-zone) + {} membership = {} total",
            self.digest_bytes,
            self.fill_bytes,
            self.intra_zone_fill_bytes,
            self.cross_zone_fill_bytes,
            self.membership_bytes,
            self.total_bytes()
        )?;
        writeln!(
            f,
            "  fill classes: {} bootstrap + {} anti-entropy ({} cross-zone) of the fill bytes; {} segment-advert bytes",
            self.bootstrap_fill_bytes,
            self.anti_entropy_fill_bytes,
            self.anti_entropy_cross_zone_fill_bytes,
            self.segment_advert_bytes
        )?;
        writeln!(
            f,
            "  membership: {} joins, {} leaves, {} crashes, {} evictions, {} revivals",
            self.joins, self.leaves, self.crashes, self.evictions, self.revivals
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_rates() {
        let s = GossipStats {
            digest_bytes: 100,
            fill_bytes: 300,
            membership_bytes: 50,
            shards_pushed: 4,
            shards_accepted: 3,
            joins: 2,
            ..GossipStats::default()
        };
        assert_eq!(s.total_bytes(), 450);
        assert!((s.acceptance_rate() - 0.75).abs() < 1e-12);
        assert_eq!(GossipStats::default().acceptance_rate(), 0.0);
        let text = s.to_string();
        assert!(text.contains("3 accepted"));
        assert!(text.contains("2 joins"));
    }
}
