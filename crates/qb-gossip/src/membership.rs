//! Churn-aware fleet membership: who is in the fleet, which zone they live
//! in, and whether they are believed alive.
//!
//! Every frontend carries its own [`MembershipView`] — there is no central
//! membership service, matching the paper's setting where frontends are
//! ordinary peer devices. Liveness flows through the same gossip exchanges
//! that move cache digests:
//!
//! * each frontend increments a **heartbeat** counter every round and
//!   piggybacks a [`MembershipSummary`] (peer, zone, heartbeat triples) on
//!   every digest swap;
//! * receiving a summary entry with a **newer heartbeat** refreshes that
//!   member's `last_heard` (third-party liveness — a peer does not need to
//!   talk to everyone to stay alive in everyone's view);
//! * a member not heard from within the configured liveness timeout, or
//!   whose direct exchanges keep failing, is **marked dead** and evicted
//!   from the sample set, so rounds stop burning timeouts on it;
//! * a dead member that shows up again (heals from a partition, restarts)
//!   is **revived** the moment a fresher heartbeat arrives — anti-entropy
//!   rounds deliberately sample from dead members too, as the safety net
//!   that re-establishes contact.
//!
//! Partner sampling is **zone-aware**: a frontend prefers partners in its
//! own latency zone and escapes to a different zone with a configurable
//! probability, cutting round latency while keeping the fleet-wide graph
//! connected (the cross-zone links carry convergence).

use qb_common::{DetRng, SimDuration, SimInstant};
use std::collections::BTreeMap;

/// One member as seen from a particular frontend's view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberInfo {
    /// The simulated peer the member runs on.
    pub peer: u64,
    /// The member's latency zone.
    pub zone: usize,
    /// Highest incarnation epoch observed for this member. A restarted
    /// process bumps its incarnation (SWIM-style) and resets its heartbeat
    /// to zero; liveness evidence compares `(incarnation, heartbeat)`
    /// lexicographically, so a long-delayed summary from a previous
    /// incarnation — no matter how high its heartbeat — can never outrank
    /// the rejoined process.
    pub incarnation: u64,
    /// Highest heartbeat observed within the member's current incarnation.
    pub heartbeat: u64,
    /// When liveness evidence (direct exchange or fresher heartbeat) last
    /// arrived.
    pub last_heard: SimInstant,
    /// Consecutive direct exchange failures since the last success.
    pub failures: u32,
    /// Is the member believed alive (sampled in regular rounds)?
    pub alive: bool,
    /// The member's self-reported load signal (an EWMA of queries served
    /// per gossip round), piggybacked on its heartbeats. Routing's
    /// power-of-two-choices tiebreak reads this; 0 until the member
    /// advertises anything.
    pub load: u64,
}

/// The compact membership gossip piggybacked on every digest exchange:
/// `(peer, zone, incarnation, heartbeat, load)` for every member the
/// sender believes alive (itself included).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MembershipSummary {
    /// `(peer, zone, incarnation, heartbeat, load)` tuples.
    pub entries: Vec<(u64, usize, u64, u64, u64)>,
}

impl MembershipSummary {
    /// Bytes on the wire: a small frame plus a varint-budgeted tuple per
    /// entry (peer + zone byte + incarnation + heartbeat + load;
    /// incarnations count process restarts, so their varint stays one byte
    /// in practice, and the load EWMA is budgeted two bytes).
    pub fn wire_bytes(&self) -> usize {
        8 + self.entries.len() * 13
    }
}

/// Is liveness evidence `(a_inc, a_hb)` strictly fresher than
/// `(b_inc, b_hb)`? Lexicographic: a bumped incarnation outranks any
/// heartbeat of an older incarnation.
pub fn fresher(a_inc: u64, a_hb: u64, b_inc: u64, b_hb: u64) -> bool {
    (a_inc, a_hb) > (b_inc, b_hb)
}

/// One frontend's view of the fleet.
#[derive(Debug, Clone, Default)]
pub struct MembershipView {
    members: BTreeMap<u64, MemberInfo>,
}

impl MembershipView {
    /// An empty view (a joining frontend before bootstrap).
    pub fn new() -> MembershipView {
        MembershipView::default()
    }

    /// Number of known members (alive or dead).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no member is known.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Members currently believed alive.
    pub fn alive_count(&self) -> usize {
        self.members.values().filter(|m| m.alive).count()
    }

    /// Look up one member.
    pub fn get(&self, peer: u64) -> Option<&MemberInfo> {
        self.members.get(&peer)
    }

    /// Insert or refresh a member as alive with the given incarnation and
    /// heartbeat (direct contact is liveness evidence even when the
    /// counters themselves lag what we already knew).
    pub fn admit(
        &mut self,
        peer: u64,
        zone: usize,
        incarnation: u64,
        heartbeat: u64,
        now: SimInstant,
    ) {
        let entry = self.members.entry(peer).or_insert(MemberInfo {
            peer,
            zone,
            incarnation,
            heartbeat,
            last_heard: now,
            failures: 0,
            alive: true,
            load: 0,
        });
        entry.zone = zone;
        if fresher(incarnation, heartbeat, entry.incarnation, entry.heartbeat) {
            entry.incarnation = incarnation;
            entry.heartbeat = heartbeat;
        }
        entry.last_heard = entry.last_heard.max(now);
        entry.failures = 0;
        entry.alive = true;
    }

    /// Tombstone a member on a graceful departure notice: mark it dead at
    /// (at least) its final `(incarnation, heartbeat)`. Keeping the entry —
    /// rather than removing it — means lagging third-party summaries,
    /// which can carry at most that evidence, cannot re-admit the departed
    /// member as alive; only a genuine rejoin (incarnation bump) revives
    /// it.
    pub fn mark_departed(&mut self, peer: u64, final_incarnation: u64, final_heartbeat: u64) {
        let entry = self.members.entry(peer).or_insert(MemberInfo {
            peer,
            zone: 0,
            incarnation: final_incarnation,
            heartbeat: final_heartbeat,
            last_heard: SimInstant::ZERO,
            failures: 0,
            alive: false,
            load: 0,
        });
        if fresher(
            final_incarnation,
            final_heartbeat,
            entry.incarnation,
            entry.heartbeat,
        ) {
            entry.incarnation = final_incarnation;
            entry.heartbeat = final_heartbeat;
        }
        entry.alive = false;
    }

    /// Set a member's advertised load signal directly (a frontend is the
    /// authority on its own entry; gossip moves everyone else's). No-op for
    /// an unknown peer.
    pub fn note_load(&mut self, peer: u64, load: u64) {
        if let Some(m) = self.members.get_mut(&peer) {
            m.load = load;
        }
    }

    /// A member's advertised load signal (0 when unknown — an unknown or
    /// freshly admitted member looks idle, which is the optimistic default
    /// two-choices wants).
    pub fn load_of(&self, peer: u64) -> u64 {
        self.members.get(&peer).map(|m| m.load).unwrap_or(0)
    }

    /// Record a failed direct exchange with `peer`; marks it dead once
    /// `failure_threshold` consecutive failures accumulate. Returns true
    /// when this call transitioned the member from alive to dead.
    pub fn record_failure(&mut self, peer: u64, failure_threshold: u32) -> bool {
        let Some(m) = self.members.get_mut(&peer) else {
            return false;
        };
        m.failures = m.failures.saturating_add(1);
        if m.alive && m.failures >= failure_threshold.max(1) {
            m.alive = false;
            return true;
        }
        false
    }

    /// Merge a gossiped summary: strictly fresher `(incarnation,
    /// heartbeat)` evidence refreshes (and revives) the member, an unknown
    /// member is admitted. Entries about `self_peer` are ignored (a
    /// frontend is the authority on itself). A long-delayed summary
    /// replaying a member's *previous* incarnation — even with an
    /// arbitrarily high heartbeat — is stale evidence and changes nothing.
    /// Returns how many dead members were revived.
    pub fn merge_summary(
        &mut self,
        summary: &MembershipSummary,
        self_peer: u64,
        now: SimInstant,
    ) -> usize {
        let mut revived = 0;
        for &(peer, zone, incarnation, heartbeat, load) in &summary.entries {
            if peer == self_peer {
                continue;
            }
            match self.members.get_mut(&peer) {
                Some(m) => {
                    if fresher(incarnation, heartbeat, m.incarnation, m.heartbeat) {
                        m.incarnation = incarnation;
                        m.heartbeat = heartbeat;
                        m.load = load;
                        m.last_heard = m.last_heard.max(now);
                        m.failures = 0;
                        if !m.alive {
                            m.alive = true;
                            revived += 1;
                        }
                    }
                }
                None => {
                    self.admit(peer, zone, incarnation, heartbeat, now);
                    self.note_load(peer, load);
                }
            }
        }
        revived
    }

    /// Build the summary this frontend piggybacks on its exchanges: every
    /// member it believes alive, itself included. Anti-entropy and
    /// bootstrap exchanges use this full roster; regular rounds use the
    /// bounded [`MembershipView::summary_window`] so membership overhead
    /// stays flat as the fleet grows.
    pub fn summary(&self) -> MembershipSummary {
        MembershipSummary {
            entries: self
                .members
                .values()
                .filter(|m| m.alive)
                .map(|m| (m.peer, m.zone, m.incarnation, m.heartbeat, m.load))
                .collect(),
        }
    }

    /// A bounded summary: the sender itself plus up to `budget` other alive
    /// members, chosen by rotating `cursor` through the roster — every
    /// member is mentioned once per `ceil(alive / budget)` summaries, so
    /// liveness still spreads fleet-wide within a couple of rounds while
    /// the per-exchange overhead stays constant in fleet size.
    pub fn summary_window(
        &self,
        cursor: usize,
        budget: usize,
        self_peer: u64,
    ) -> MembershipSummary {
        let mut entries = Vec::new();
        if let Some(me) = self.members.get(&self_peer) {
            entries.push((me.peer, me.zone, me.incarnation, me.heartbeat, me.load));
        }
        let others: Vec<&MemberInfo> = self
            .members
            .values()
            .filter(|m| m.alive && m.peer != self_peer)
            .collect();
        if !others.is_empty() {
            let take = budget.min(others.len());
            let start = cursor % others.len();
            for k in 0..take {
                let m = others[(start + k) % others.len()];
                entries.push((m.peer, m.zone, m.incarnation, m.heartbeat, m.load));
            }
        }
        MembershipSummary { entries }
    }

    /// Mark members not heard from within `timeout` as dead. Returns the
    /// number of members transitioned from alive to dead by this pass.
    pub fn evict_silent(&mut self, now: SimInstant, timeout: SimDuration) -> usize {
        let mut evicted = 0;
        for m in self.members.values_mut() {
            if m.alive && now.since(m.last_heard) >= timeout {
                m.alive = false;
                evicted += 1;
            }
        }
        evicted
    }

    /// Sample up to `fanout` distinct partner peers, biased toward
    /// `self_zone`: each pick escapes to a different zone with probability
    /// `cross_zone_probability` (always, when the own zone has no other
    /// alive member). `include_dead` additionally samples members currently
    /// believed dead — anti-entropy rounds use it as the safety net that
    /// re-establishes contact after partitions heal.
    pub fn sample_partners(
        &self,
        rng: &mut DetRng,
        self_peer: u64,
        self_zone: usize,
        fanout: usize,
        cross_zone_probability: f64,
        include_dead: bool,
    ) -> Vec<u64> {
        let mut same: Vec<u64> = Vec::new();
        let mut cross: Vec<u64> = Vec::new();
        for m in self.members.values() {
            if m.peer == self_peer || !(m.alive || include_dead) {
                continue;
            }
            if m.zone == self_zone {
                same.push(m.peer);
            } else {
                cross.push(m.peer);
            }
        }
        let mut partners = Vec::with_capacity(fanout);
        for _ in 0..fanout {
            let pool: &mut Vec<u64> = if same.is_empty() && cross.is_empty() {
                break;
            } else if same.is_empty() {
                &mut cross
            } else if cross.is_empty() {
                &mut same
            } else if rng.gen_bool(cross_zone_probability) {
                &mut cross
            } else {
                &mut same
            };
            let idx = rng.gen_index(pool.len());
            partners.push(pool.swap_remove(idx));
        }
        partners
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view_of(members: &[(u64, usize)]) -> MembershipView {
        let mut v = MembershipView::new();
        for &(peer, zone) in members {
            v.admit(peer, zone, 0, 0, SimInstant::ZERO);
        }
        v
    }

    #[test]
    fn admit_and_summary_round_trip() {
        let v = view_of(&[(0, 0), (1, 1), (2, 0)]);
        assert_eq!(v.len(), 3);
        assert_eq!(v.alive_count(), 3);
        let s = v.summary();
        assert_eq!(s.entries.len(), 3);
        assert!(s.wire_bytes() > MembershipSummary::default().wire_bytes());

        let mut other = MembershipView::new();
        other.admit(9, 1, 0, 5, SimInstant::ZERO);
        other.merge_summary(&s, 9, SimInstant::ZERO);
        assert_eq!(other.len(), 4);
        assert!(other.get(2).is_some());
        // The authority rule: a summary never updates the receiver's own entry.
        assert_eq!(other.get(9).unwrap().heartbeat, 5);
    }

    #[test]
    fn departure_tombstones_resist_lagging_summaries() {
        let mut v = view_of(&[(1, 0), (2, 0)]);
        // Member 1 gossiped up to heartbeat 7, then left gracefully.
        v.admit(1, 0, 0, 7, SimInstant::ZERO);
        v.mark_departed(1, 0, 7);
        assert_eq!(v.alive_count(), 1);
        // A lagging third party still lists it alive at heartbeat <= 7;
        // that must not resurrect the tombstone.
        let lagging = MembershipSummary {
            entries: vec![(1, 0, 0, 7, 0)],
        };
        assert_eq!(v.merge_summary(&lagging, 9, SimInstant::ZERO), 0);
        assert!(!v.get(1).unwrap().alive);
        // A genuine rejoin bumps the incarnation past the tombstone (the
        // restarted process starts its heartbeat over from zero).
        let rejoined = MembershipSummary {
            entries: vec![(1, 0, 1, 0, 0)],
        };
        assert_eq!(v.merge_summary(&rejoined, 9, SimInstant::ZERO), 1);
        assert!(v.get(1).unwrap().alive);
        // Tombstoning an unknown peer records it dead.
        v.mark_departed(5, 0, 3);
        assert!(!v.get(5).unwrap().alive);
        assert_eq!(v.get(5).unwrap().heartbeat, 3);
    }

    #[test]
    fn delayed_summary_replay_cannot_confuse_a_rejoined_member() {
        // The SWIM-style regression: member 1 ran to heartbeat 999 in
        // incarnation 0, crashed, and rejoined as incarnation 1 with its
        // heartbeat reset to 2. A long-delayed summary replaying the old
        // incarnation's high heartbeat must be recognized as stale.
        let mut v = view_of(&[(1, 0), (2, 0)]);
        v.admit(1, 0, 1, 2, SimInstant::ZERO + SimDuration::from_secs(5));
        let before = *v.get(1).unwrap();
        assert_eq!((before.incarnation, before.heartbeat), (1, 2));

        let delayed = MembershipSummary {
            entries: vec![(1, 0, 0, 999, 0)],
        };
        assert_eq!(
            v.merge_summary(&delayed, 9, SimInstant::ZERO + SimDuration::from_secs(9)),
            0
        );
        let after = *v.get(1).unwrap();
        assert_eq!(
            (after.incarnation, after.heartbeat),
            (1, 2),
            "stale-incarnation evidence must not overwrite the rejoin"
        );
        assert_eq!(
            after.last_heard, before.last_heard,
            "a replay is not liveness evidence"
        );
        // The rejoined member goes silent: the delayed replay must not
        // have postponed its eviction either.
        let evicted = v.evict_silent(
            SimInstant::ZERO + SimDuration::from_secs(8),
            SimDuration::from_secs(3),
        );
        assert!(evicted >= 1);
        assert!(!v.get(1).unwrap().alive);
        // And once dead, the same replay still cannot revive it...
        assert_eq!(
            v.merge_summary(&delayed, 9, SimInstant::ZERO + SimDuration::from_secs(9)),
            0
        );
        assert!(!v.get(1).unwrap().alive);
        // ...while genuinely fresher evidence from the live incarnation can.
        let fresh = MembershipSummary {
            entries: vec![(1, 0, 1, 3, 0)],
        };
        assert_eq!(
            v.merge_summary(&fresh, 9, SimInstant::ZERO + SimDuration::from_secs(9)),
            1
        );
        assert!(v.get(1).unwrap().alive);
    }

    #[test]
    fn windowed_summaries_rotate_through_the_roster() {
        let members: Vec<(u64, usize)> = (0..9).map(|i| (i as u64, 0)).collect();
        let v = view_of(&members);
        // Budget 4 + self: full coverage of the 8 others in two windows.
        let w0 = v.summary_window(0, 4, 0);
        let w1 = v.summary_window(4, 4, 0);
        assert_eq!(w0.entries.len(), 5);
        assert_eq!(w0.entries[0].0, 0, "self leads every summary");
        let mut mentioned: Vec<u64> = w0.entries.iter().chain(&w1.entries).map(|e| e.0).collect();
        mentioned.sort_unstable();
        mentioned.dedup();
        assert_eq!(mentioned.len(), 9, "two windows cover the whole roster");
        // A budget larger than the roster degenerates to the full summary.
        let all = v.summary_window(3, 64, 0);
        assert_eq!(all.entries.len(), 9);
    }

    #[test]
    fn failures_mark_dead_and_heartbeats_revive() {
        let mut v = view_of(&[(1, 0)]);
        assert!(!v.record_failure(1, 3));
        assert!(!v.record_failure(1, 3));
        assert!(
            v.record_failure(1, 3),
            "third failure crosses the threshold"
        );
        assert_eq!(v.alive_count(), 0);
        // A stale heartbeat does not revive; a fresher one does.
        let stale = MembershipSummary {
            entries: vec![(1, 0, 0, 0, 0)],
        };
        assert_eq!(v.merge_summary(&stale, 7, SimInstant::ZERO), 0);
        assert_eq!(v.alive_count(), 0);
        let fresh = MembershipSummary {
            entries: vec![(1, 0, 0, 4, 0)],
        };
        assert_eq!(v.merge_summary(&fresh, 7, SimInstant::ZERO), 1);
        assert_eq!(v.alive_count(), 1);
        assert_eq!(v.get(1).unwrap().failures, 0);
    }

    #[test]
    fn silent_members_are_evicted_after_the_timeout() {
        let mut v = view_of(&[(1, 0), (2, 0)]);
        let t = SimDuration::from_secs(2);
        // A direct exchange refreshes liveness through admit().
        v.admit(1, 0, 0, 0, SimInstant::ZERO + SimDuration::from_secs(1));
        let evicted = v.evict_silent(SimInstant::ZERO + SimDuration::from_secs(2), t);
        assert_eq!(evicted, 1, "only the silent member is evicted");
        assert!(v.get(1).unwrap().alive);
        assert!(!v.get(2).unwrap().alive);
        // Idempotent: a second pass evicts nothing new.
        assert_eq!(
            v.evict_silent(SimInstant::ZERO + SimDuration::from_secs(3), t),
            1,
            "member 1 now crossed the timeout too"
        );
    }

    #[test]
    fn sampling_prefers_the_own_zone() {
        let members: Vec<(u64, usize)> = (0..12).map(|i| (i as u64, (i % 3) as usize)).collect();
        let v = view_of(&members);
        let mut rng = DetRng::new(0x5A);
        let mut same = 0usize;
        let mut total = 0usize;
        for _ in 0..400 {
            for p in v.sample_partners(&mut rng, 0, 0, 2, 0.2, false) {
                total += 1;
                if v.get(p).unwrap().zone == 0 {
                    same += 1;
                }
            }
        }
        let frac = same as f64 / total as f64;
        // 3 same-zone candidates out of 11; uniform sampling would give
        // ~27% same-zone. The bias should push it well past half.
        assert!(frac > 0.6, "same-zone fraction {frac}");
        // Cross-zone escapes still happen (the convergence links).
        assert!(frac < 0.99, "cross-zone escapes must exist, got {frac}");
    }

    #[test]
    fn sampling_excludes_self_and_dead_members() {
        let mut v = view_of(&[(0, 0), (1, 0), (2, 0)]);
        for _ in 0..3 {
            v.record_failure(2, 3);
        }
        let mut rng = DetRng::new(1);
        for _ in 0..50 {
            let picks = v.sample_partners(&mut rng, 0, 0, 3, 0.2, false);
            assert!(!picks.contains(&0), "never samples self");
            assert!(!picks.contains(&2), "never samples dead members");
            assert_eq!(picks.len(), 1);
        }
        // Anti-entropy mode reaches dead members again.
        let mut saw_dead = false;
        for _ in 0..50 {
            if v.sample_partners(&mut rng, 0, 0, 2, 0.2, true).contains(&2) {
                saw_dead = true;
            }
        }
        assert!(saw_dead, "include_dead must be able to sample dead members");
    }
}
