//! The frontend fleet and the epidemic exchange protocol.
//!
//! Every frontend owns a private [`QueryCache`] plus a [`VersionVector`] of
//! the highest shard version it has observed per term. A gossip round walks
//! the fleet; each frontend samples `fanout` partners and runs one
//! *exchange* with each:
//!
//! 1. **Digest swap** — one RPC carrying both sides' hot-set digests
//!    (`(term, shard version)` pairs, hottest first). Anti-entropy rounds
//!    digest the entire shard tier instead, so two frontends reconcile
//!    fully after a partition heals.
//! 2. **Fills, both directions** — each side pushes the shards the other's
//!    digest lacks (bounded by `max_fills_per_exchange`), as one batched
//!    one-way message. A fill carries the *remaining* lifetime of the
//!    sender's copy; the receiver stores it under `min(remaining, own
//!    adapted TTL)`, so relaying a shard around the fleet can only tighten
//!    its staleness bound, never restart the clock.
//! 3. **Version guard** — the receiver admits a fill only if its version is
//!    at least the highest version the receiver has observed for that term,
//!    and strictly newer than its cached copy. A stale shard is *never*
//!    accepted over a fresher one, no matter how gossip routes it.
//!
//! All traffic goes through [`SimNet`] and is charged to its `NetStats`;
//! partitions and offline peers fail exchanges exactly like any other RPC.

use crate::config::GossipConfig;
use crate::digest::{Digest, VersionVector};
use crate::stats::GossipStats;
use qb_cache::{CacheConfig, QueryCache, RemoteAdmit};
use qb_common::{DetRng, SimDuration, SimInstant};
use qb_index::ShardEntry;
use qb_simnet::SimNet;

/// Wire overhead charged per shard in a fill batch (frame, version, TTL).
const FILL_ENTRY_OVERHEAD: usize = 12;

/// Most rounds one `maybe_run` call fires when catching up after a large
/// simulated-time step.
const MAX_CATCHUP_ROUNDS: usize = 8;

/// One query frontend: a peer in the simulated network, its private cache
/// and its per-term version knowledge.
#[derive(Debug)]
pub struct Frontend {
    /// The simulated peer this frontend runs on.
    pub peer: u64,
    /// Highest shard version observed per term (DHT fetches, publish events,
    /// gossip digests and fills).
    pub known: VersionVector,
    /// The private query-serving cache. `None` only while the engine's
    /// search path has it checked out.
    cache: Option<QueryCache>,
}

impl Frontend {
    fn new(peer: u64, cache_config: CacheConfig) -> Frontend {
        Frontend {
            peer,
            known: VersionVector::new(),
            cache: Some(QueryCache::new(cache_config)),
        }
    }

    /// Borrow the cache (panics while checked out by the search path).
    pub fn cache(&self) -> &QueryCache {
        self.cache.as_ref().expect("frontend cache checked out")
    }

    /// Mutably borrow the cache (panics while checked out).
    pub fn cache_mut(&mut self) -> &mut QueryCache {
        self.cache.as_mut().expect("frontend cache checked out")
    }

    fn digest(&self, config: &GossipConfig, full: bool, now: SimInstant) -> Digest {
        let max = if full {
            usize::MAX
        } else {
            config.hot_set_size
        };
        Digest::new(self.cache().shard_digest(max, now))
    }
}

/// The gossip overlay over a fleet of frontends.
#[derive(Debug)]
pub struct GossipFleet {
    config: GossipConfig,
    frontends: Vec<Frontend>,
    rng: DetRng,
    next_round_at: SimInstant,
    next_anti_entropy_at: SimInstant,
    stats: GossipStats,
}

impl GossipFleet {
    /// Build a fleet of `config.num_frontends` frontends on peers
    /// `0..num_frontends`, each with a private cache built from
    /// `cache_config`. `seed` is mixed with the gossip seed so two engines
    /// differing only in their master seed sample different partners.
    pub fn new(config: GossipConfig, cache_config: &CacheConfig, seed: u64) -> GossipFleet {
        let frontends = (0..config.num_frontends)
            .map(|i| Frontend::new(i as u64, cache_config.clone()))
            .collect();
        let rng = DetRng::new(seed ^ config.seed.rotate_left(17));
        GossipFleet {
            next_round_at: SimInstant::ZERO + config.round_interval,
            next_anti_entropy_at: SimInstant::ZERO + config.anti_entropy_interval,
            config,
            frontends,
            rng,
            stats: GossipStats::default(),
        }
    }

    /// Number of frontends.
    pub fn len(&self) -> usize {
        self.frontends.len()
    }

    /// True when the fleet has no frontends.
    pub fn is_empty(&self) -> bool {
        self.frontends.is_empty()
    }

    /// The configuration the fleet runs.
    pub fn config(&self) -> &GossipConfig {
        &self.config
    }

    /// Cumulative gossip counters.
    pub fn stats(&self) -> &GossipStats {
        &self.stats
    }

    /// Borrow one frontend.
    pub fn frontend(&self, i: usize) -> &Frontend {
        &self.frontends[i]
    }

    /// The simulated peer frontend `i` runs on.
    pub fn frontend_peer(&self, i: usize) -> u64 {
        self.frontends[i].peer
    }

    /// Mutably borrow one frontend's cache.
    pub fn cache_mut(&mut self, i: usize) -> &mut QueryCache {
        self.frontends[i].cache_mut()
    }

    /// Check frontend `i`'s cache out of the fleet (the engine's search
    /// path works on it while also borrowing the rest of the engine).
    pub fn take_cache(&mut self, i: usize) -> Option<QueryCache> {
        self.frontends[i].cache.take()
    }

    /// Return a checked-out cache.
    pub fn restore_cache(&mut self, i: usize, cache: Option<QueryCache>) {
        self.frontends[i].cache = cache;
    }

    /// Record that frontend `i` observed `version` of `term` (e.g. through
    /// its own DHT fetch).
    pub fn observe(&mut self, i: usize, term: &str, version: u64) {
        self.frontends[i].known.observe(term, version);
    }

    /// A page version touching `term` was (re)indexed at `version` by a bee
    /// on `writer_peer`. Every frontend that can currently observe the
    /// publish (same partition, online) invalidates its cached entries and
    /// records the new version; partitioned frontends miss the event and
    /// catch up through read-time version checks and anti-entropy after the
    /// partition heals.
    pub fn observe_publish(
        &mut self,
        net: &SimNet,
        writer_peer: u64,
        term: &str,
        version: u64,
        now: SimInstant,
    ) {
        for f in &mut self.frontends {
            if !net.can_reach(writer_peer, f.peer) {
                continue;
            }
            f.known.observe(term, version);
            if let Some(cache) = f.cache.as_mut() {
                cache.invalidate_term(term, now);
            }
        }
    }

    /// Serialize frontend `i`'s hottest `max` shards for warm-start
    /// persistence.
    pub fn export_hot_set(&self, i: usize, max: usize, now: SimInstant) -> Vec<u8> {
        self.frontends[i].cache().export_hot_set(max, now)
    }

    /// Pre-fill frontend `i`'s shard tier from a warm-start snapshot,
    /// recording the imported versions in its version vector. Returns the
    /// number of shards admitted.
    pub fn import_hot_set(
        &mut self,
        i: usize,
        data: &[u8],
        now: SimInstant,
    ) -> qb_common::QbResult<usize> {
        let admitted = self.frontends[i].cache_mut().import_hot_set(data, now)?;
        let digest = self.frontends[i].cache().shard_digest(usize::MAX, now);
        for (term, version) in digest {
            self.frontends[i].known.observe(&term, version);
        }
        Ok(admitted)
    }

    /// Run every gossip round that became due by `now` (a large time step
    /// fires the backlog, keeping the configured pacing relative to
    /// simulated time). Catch-up is capped: epidemic convergence is
    /// logarithmic in rounds, so past [`MAX_CATCHUP_ROUNDS`] back-to-back
    /// rounds at one instant add nothing and the remaining backlog is
    /// dropped. Returns true when at least one round ran.
    pub fn maybe_run(&mut self, net: &mut SimNet, now: SimInstant) -> bool {
        if !self.config.enabled || self.frontends.len() < 2 {
            return false;
        }
        let mut fired = 0usize;
        while now >= self.next_round_at && fired < MAX_CATCHUP_ROUNDS {
            let anti_entropy = now >= self.next_anti_entropy_at;
            self.run_round(net, now, anti_entropy);
            if anti_entropy {
                self.next_anti_entropy_at = now + self.config.anti_entropy_interval;
            }
            self.next_round_at += self.config.round_interval;
            fired += 1;
        }
        if now >= self.next_round_at {
            // Backlog beyond the cap is dropped, not replayed later.
            self.next_round_at = now + self.config.round_interval;
        }
        fired > 0
    }

    /// Run one gossip round unconditionally (tests and experiments).
    /// `anti_entropy` swaps full digests instead of hot sets.
    pub fn run_round(&mut self, net: &mut SimNet, now: SimInstant, anti_entropy: bool) {
        if anti_entropy {
            self.stats.anti_entropy_rounds += 1;
        } else {
            self.stats.rounds += 1;
        }
        let n = self.frontends.len();
        for i in 0..n {
            // Uniform peer sampling without replacement.
            let mut partners: Vec<usize> = (0..n).filter(|&j| j != i).collect();
            self.rng.shuffle(&mut partners);
            partners.truncate(self.config.fanout);
            for j in partners {
                let (a, b) = pair_mut(&mut self.frontends, i, j);
                exchange(&self.config, a, b, net, now, anti_entropy, &mut self.stats);
            }
        }
    }
}

/// Disjoint mutable borrows of two fleet slots.
fn pair_mut(frontends: &mut [Frontend], i: usize, j: usize) -> (&mut Frontend, &mut Frontend) {
    debug_assert_ne!(i, j);
    if i < j {
        let (left, right) = frontends.split_at_mut(j);
        (&mut left[i], &mut right[0])
    } else {
        let (left, right) = frontends.split_at_mut(i);
        (&mut right[0], &mut left[j])
    }
}

/// One digest/fill exchange between two frontends.
fn exchange(
    config: &GossipConfig,
    a: &mut Frontend,
    b: &mut Frontend,
    net: &mut SimNet,
    now: SimInstant,
    full: bool,
    stats: &mut GossipStats,
) {
    // Digests are rebuilt per exchange on purpose: a frontend warmed
    // earlier in this round advertises (and relays) its fresh shards in the
    // same round, giving multi-hop propagation per round instead of one.
    let digest_a = a.digest(config, full, now);
    let digest_b = b.digest(config, full, now);
    // The digest swap is one request/response RPC; a partitioned or offline
    // partner fails it here and no state moves.
    if net
        .rpc(a.peer, b.peer, digest_a.wire_bytes(), digest_b.wire_bytes())
        .is_err()
    {
        stats.failed_exchanges += 1;
        return;
    }
    stats.exchanges += 1;
    stats.digest_bytes += (digest_a.wire_bytes() + digest_b.wire_bytes()) as u64;
    // Both sides learn which versions exist before any fill is admitted.
    for (term, version) in &digest_a.entries {
        b.known.observe(term, *version);
    }
    for (term, version) in &digest_b.entries {
        a.known.observe(term, *version);
    }
    send_fills(config, a, b, &digest_a, &digest_b, net, now, stats);
    send_fills(config, b, a, &digest_b, &digest_a, net, now, stats);
}

/// Push the shards `from`'s digest advertises and `to`'s digest lacks, as
/// one batched one-way message, then admit them under the version guard.
#[allow(clippy::too_many_arguments)]
fn send_fills(
    config: &GossipConfig,
    from: &mut Frontend,
    to: &mut Frontend,
    from_digest: &Digest,
    to_digest: &Digest,
    net: &mut SimNet,
    now: SimInstant,
    stats: &mut GossipStats,
) {
    let mut fills: Vec<(ShardEntry, SimDuration)> = Vec::new();
    let mut batch_bytes = 0usize;
    // Index the partner's advertised versions once: anti-entropy digests
    // cover the whole shard tier, so a per-entry linear scan would make the
    // exchange quadratic in cached terms.
    let advertised: std::collections::HashMap<&str, u64> = to_digest
        .entries
        .iter()
        .map(|(t, v)| (t.as_str(), *v))
        .collect();
    for (term, version) in &from_digest.entries {
        if fills.len() >= config.max_fills_per_exchange {
            break;
        }
        if *version == 0 {
            continue;
        }
        // The sender only knows what the partner's digest advertised; an
        // equal-or-newer advertised copy needs no fill. Terms the partner
        // holds but did not advertise are caught receiver-side as
        // duplicates.
        if advertised
            .get(term.as_str())
            .is_some_and(|v| *v >= *version)
        {
            continue;
        }
        let Some(shard) = from.cache().peek_shard(term) else {
            continue;
        };
        batch_bytes += shard.encoded_len() + FILL_ENTRY_OVERHEAD;
        fills.push((shard.clone(), from.cache().adaptive_shard_ttl(term)));
    }
    if fills.is_empty() {
        return;
    }
    if net.send(from.peer, to.peer, batch_bytes).is_err() {
        // The digest swap already counted as a completed exchange; a
        // dropped fill batch is its own failure class.
        stats.failed_fills += 1;
        return;
    }
    stats.fill_bytes += batch_bytes as u64;
    for (shard, sender_ttl) in fills {
        stats.shards_pushed += 1;
        let known = to.known.get(&shard.term);
        match to
            .cache_mut()
            .store_remote_shard(&shard, known, sender_ttl, now)
        {
            RemoteAdmit::Accepted => {
                stats.shards_accepted += 1;
                to.known.observe(&shard.term, shard.version);
            }
            RemoteAdmit::Stale => stats.stale_rejected += 1,
            RemoteAdmit::Duplicate => stats.duplicates_skipped += 1,
            RemoteAdmit::Refused => stats.admission_refused += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_index::ShardPosting;
    use qb_simnet::NetConfig;

    fn shard(term: &str, version: u64, docs: usize) -> ShardEntry {
        let mut s = ShardEntry::empty(term);
        s.version = version;
        for i in 0..docs as u64 {
            s.upsert(ShardPosting {
                doc_id: i * 7 + 1,
                term_freq: 2,
                doc_len: 50,
                name: format!("page/{term}/{i}"),
                version: 1,
                creator: 1,
            });
        }
        s
    }

    fn fleet(n: usize) -> (GossipFleet, SimNet) {
        let net = SimNet::new(n + 8, NetConfig::lan(), 7);
        let fleet = GossipFleet::new(GossipConfig::enabled(n), &CacheConfig::enabled(), 0xF1EE7);
        (fleet, net)
    }

    #[test]
    fn one_frontends_fetch_warms_the_fleet() {
        let (mut fleet, mut net) = fleet(3);
        let now = SimInstant::ZERO;
        fleet.cache_mut(0).store_shard(&shard("honey", 2, 4), now);
        fleet.observe(0, "honey", 2);
        fleet.run_round(&mut net, now, false);
        for i in 1..3 {
            assert_eq!(
                fleet.frontend(i).cache().cached_shard_version("honey"),
                Some(2),
                "frontend {i} should have been warmed"
            );
            assert_eq!(fleet.frontend(i).known.get("honey"), 2);
        }
        let s = fleet.stats();
        assert!(s.shards_accepted >= 2);
        assert!(s.digest_bytes > 0 && s.fill_bytes > 0);
        assert_eq!(s.stale_rejected, 0);
        // A second round moves nothing new.
        let accepted_before = fleet.stats().shards_accepted;
        fleet.run_round(&mut net, now, false);
        assert_eq!(fleet.stats().shards_accepted, accepted_before);
    }

    #[test]
    fn maybe_run_respects_intervals_and_enablement() {
        let (mut fleet, mut net) = fleet(2);
        let interval = fleet.config().round_interval;
        assert!(!fleet.maybe_run(&mut net, SimInstant::ZERO), "not due yet");
        assert!(fleet.maybe_run(&mut net, SimInstant::ZERO + interval));
        assert!(
            !fleet.maybe_run(&mut net, SimInstant::ZERO + interval),
            "same instant must not double-fire"
        );
        // Disabled overlay never runs.
        let net2 = SimNet::new(8, NetConfig::lan(), 1);
        let mut off = GossipFleet::new(GossipConfig::fleet(2), &CacheConfig::enabled(), 1);
        let mut net2 = net2;
        assert!(!off.maybe_run(&mut net2, SimInstant::ZERO + interval));
        assert_eq!(off.stats().rounds, 0);
    }

    #[test]
    fn partitioned_frontends_fail_exchanges_then_recover() {
        let (mut fleet, mut net) = fleet(2);
        let now = SimInstant::ZERO;
        fleet.cache_mut(0).store_shard(&shard("nectar", 1, 3), now);
        net.set_partition(fleet.frontend_peer(1), 9);
        fleet.run_round(&mut net, now, false);
        assert!(fleet.stats().failed_exchanges > 0);
        assert_eq!(
            fleet.frontend(1).cache().cached_shard_version("nectar"),
            None
        );
        net.heal_all();
        fleet.run_round(&mut net, now, true);
        assert_eq!(
            fleet.frontend(1).cache().cached_shard_version("nectar"),
            Some(1)
        );
        assert_eq!(fleet.stats().anti_entropy_rounds, 1);
    }

    #[test]
    fn stale_copies_are_rejected_by_the_version_guard() {
        let (mut fleet, mut net) = fleet(2);
        let now = SimInstant::ZERO;
        // Frontend 0 still holds v1; frontend 1 observed the v2 republish
        // (e.g. through a publish event) but has nothing cached.
        fleet.cache_mut(0).store_shard(&shard("news", 1, 2), now);
        fleet.observe(1, "news", 2);
        fleet.run_round(&mut net, now, false);
        assert_eq!(
            fleet.frontend(1).cache().cached_shard_version("news"),
            None,
            "a stale shard must never be accepted over fresher knowledge"
        );
        assert!(fleet.stats().stale_rejected > 0);
    }

    #[test]
    fn warm_start_round_trips_through_the_fleet() {
        let (mut fleet, _net) = fleet(2);
        let now = SimInstant::ZERO;
        fleet.cache_mut(0).store_shard(&shard("alpha", 3, 2), now);
        fleet.cache_mut(0).store_shard(&shard("beta", 1, 2), now);
        let snapshot = fleet.export_hot_set(0, 8, now);
        let admitted = fleet.import_hot_set(1, &snapshot, now).unwrap();
        assert_eq!(admitted, 2);
        assert_eq!(
            fleet.frontend(1).cache().cached_shard_version("alpha"),
            Some(3)
        );
        assert_eq!(fleet.frontend(1).known.get("alpha"), 3);
    }
}
